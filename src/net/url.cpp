#include "net/url.hpp"

#include <stdexcept>

#include "util/strings.hpp"

namespace wss::net {

std::string Endpoint::to_string() const {
  return util::format("%s://%s:%u",
                      transport == Transport::kUdp ? "udp" : "tcp",
                      host.c_str(), static_cast<unsigned>(port));
}

Endpoint parse_endpoint(const std::string& url) {
  const auto fail = [&url](const char* why) -> Endpoint {
    throw std::invalid_argument(util::format(
        "'%s' is not a udp://host:port or tcp://host:port endpoint (%s)",
        url.c_str(), why));
  };

  Endpoint ep;
  std::string rest;
  if (url.rfind("udp://", 0) == 0) {
    ep.transport = Transport::kUdp;
    rest = url.substr(6);
  } else if (url.rfind("tcp://", 0) == 0) {
    ep.transport = Transport::kTcp;
    rest = url.substr(6);
  } else {
    return fail("unknown scheme");
  }

  const auto colon = rest.rfind(':');
  if (colon == std::string::npos || colon == 0) return fail("missing port");
  ep.host = rest.substr(0, colon);
  const std::string port_str = rest.substr(colon + 1);
  if (port_str.empty()) return fail("missing port");
  long port = 0;
  for (const char ch : port_str) {
    if (ch < '0' || ch > '9') return fail("port is not a number");
    port = port * 10 + (ch - '0');
    if (port > 65535) return fail("port out of range");
  }
  if (port < 1) return fail("port out of range");
  ep.port = static_cast<std::uint16_t>(port);
  return ep;
}

}  // namespace wss::net
