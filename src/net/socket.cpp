#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "util/strings.hpp"

namespace wss::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(
      util::format("%s: %s", what, std::strerror(errno)));
}

sockaddr_in to_sockaddr(const Ipv4& a) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = a.addr_be;
  sa.sin_port = htons(a.port);
  return sa;
}

}  // namespace

void Fd::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Ipv4 resolve_ipv4(const std::string& host, std::uint16_t port) {
  Ipv4 out;
  out.port = port;
  const std::string h = host.empty() || host == "localhost"
                            ? std::string("127.0.0.1")
                            : host;
  in_addr addr{};
  if (::inet_pton(AF_INET, h.c_str(), &addr) != 1) {
    throw std::runtime_error(util::format(
        "net: '%s' is not an IPv4 address (use a dotted quad or "
        "'localhost')",
        host.c_str()));
  }
  out.addr_be = addr.s_addr;
  return out;
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno("net: fcntl(O_NONBLOCK)");
  }
}

Fd listen_tcp(const Ipv4& at, int backlog, bool reuseport) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("net: socket(tcp)");
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (reuseport) {
    // Listener sharding: every event-loop shard binds its own listener
    // to the same port and the kernel spreads incoming connections
    // across them by 4-tuple hash. Must be set before bind(), on every
    // socket in the group (including the first).
    if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEPORT, &one,
                     sizeof(one)) < 0) {
      throw_errno("net: setsockopt(SO_REUSEPORT)");
    }
  }
  const sockaddr_in sa = to_sockaddr(at);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) <
      0) {
    throw_errno("net: bind(tcp)");
  }
  if (::listen(fd.get(), backlog) < 0) throw_errno("net: listen");
  set_nonblocking(fd.get());
  return fd;
}

Fd bind_udp(const Ipv4& at, int rcvbuf_bytes, bool reuseport) {
  Fd fd(::socket(AF_INET, SOCK_DGRAM, 0));
  if (!fd.valid()) throw_errno("net: socket(udp)");
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (reuseport) {
    // Same sharding as TCP: datagrams from one sender (one 4-tuple)
    // always hash to the same socket, so per-sender order holds.
    if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEPORT, &one,
                     sizeof(one)) < 0) {
      throw_errno("net: setsockopt(SO_REUSEPORT)");
    }
  }
  if (rcvbuf_bytes > 0) {
    // Best effort: the kernel clamps to rmem_max. A bigger buffer only
    // narrows the (accounted) kernel-drop window for bursts.
    ::setsockopt(fd.get(), SOL_SOCKET, SO_RCVBUF, &rcvbuf_bytes,
                 sizeof(rcvbuf_bytes));
  }
  const sockaddr_in sa = to_sockaddr(at);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) <
      0) {
    throw_errno("net: bind(udp)");
  }
  set_nonblocking(fd.get());
  return fd;
}

std::uint16_t bound_port(int fd) {
  sockaddr_in sa{};
  socklen_t len = sizeof(sa);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&sa), &len) < 0) {
    throw_errno("net: getsockname");
  }
  return ntohs(sa.sin_port);
}

Fd connect_tcp(const Ipv4& to) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("net: socket(tcp)");
  const sockaddr_in sa = to_sockaddr(to);
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&sa),
                sizeof(sa)) < 0) {
    throw_errno("net: connect");
  }
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Fd udp_socket() {
  Fd fd(::socket(AF_INET, SOCK_DGRAM, 0));
  if (!fd.valid()) throw_errno("net: socket(udp)");
  return fd;
}

IoStatus read_some(int fd, char* buf, std::size_t cap, std::size_t& got) {
  for (;;) {
    const ssize_t n = ::read(fd, buf, cap);
    if (n > 0) {
      got = static_cast<std::size_t>(n);
      return IoStatus::kOk;
    }
    if (n == 0) return IoStatus::kClosed;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoStatus::kWouldBlock;
    if (errno == ECONNRESET) return IoStatus::kClosed;
    throw_errno("net: read");
  }
}

namespace {

// WSS_NET_WRITE_BYTES=N caps each send() to N bytes. A test/CI knob
// (the alignment-stress job): forcing 1-byte writes makes every
// receiver-side frame boundary straddle a recv, exercising the frame
// decoder's partial-header and ring-wrap paths under real sockets.
std::size_t max_write_chunk() {
  static const std::size_t chunk = [] {
    const char* env = std::getenv("WSS_NET_WRITE_BYTES");
    if (env == nullptr || *env == '\0') return std::size_t{0};
    const long v = std::atol(env);
    return v > 0 ? static_cast<std::size_t>(v) : std::size_t{0};
  }();
  return chunk;
}

}  // namespace

void write_all(int fd, const char* data, std::size_t len) {
  const std::size_t cap = max_write_chunk();
  std::size_t off = 0;
  while (off < len) {
    std::size_t want = len - off;
    if (cap != 0 && want > cap) want = cap;
    const ssize_t n = ::send(fd, data + off, want, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("net: send");
    }
    off += static_cast<std::size_t>(n);
  }
}

std::size_t write_some(int fd, const char* data, std::size_t len) {
  for (;;) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n >= 0) return static_cast<std::size_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return 0;
    if (errno == EPIPE || errno == ECONNRESET) return kPeerGone;
    throw_errno("net: send");
  }
}

bool send_dgram(int fd, const Ipv4& to, const char* data, std::size_t len) {
  const sockaddr_in sa = to_sockaddr(to);
  for (;;) {
    const ssize_t n =
        ::sendto(fd, data, len, 0, reinterpret_cast<const sockaddr*>(&sa),
                 sizeof(sa));
    if (n >= 0) return true;
    if (errno == EINTR) continue;
    // A full local send buffer (or a transient ENOBUFS) is a drop the
    // caller accounts for -- UDP promises nothing more.
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ENOBUFS ||
        errno == ECONNREFUSED) {
      return false;
    }
    throw_errno("net: sendto");
  }
}

IoStatus recv_dgram(int fd, char* buf, std::size_t cap, std::size_t& got) {
  for (;;) {
    const ssize_t n = ::recvfrom(fd, buf, cap, 0, nullptr, nullptr);
    if (n >= 0) {
      got = static_cast<std::size_t>(n);
      return IoStatus::kOk;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoStatus::kWouldBlock;
    throw_errno("net: recvfrom");
  }
}

}  // namespace wss::net
