// The network sink behind `wss generate --sink udp://...|tcp://...`:
// turns the replayer's rendered lines into datagrams or framed stream
// writes, with client-side delivery accounting.
//
// TCP is the reliable path: every offered line is delivered (the
// kernel blocks us until it fits), framed by newline or 4-byte
// length prefix, after a one-line `tenant=` handshake that routes the
// connection server-side.
//
// UDP reuses sim::UdpLossModel -- the paper's syslog-over-UDP
// contention model (Section 3.1) -- *client-side*: each line is offered
// to the model at its simulated event time, and a "dropped" verdict
// means the datagram is never sent. A sendto() the kernel refuses
// (ENOBUFS and friends) also counts as dropped. The resulting
// offered/delivered/dropped stats are exact, which is what lets CI
// assert the server's wss_net_delivered_total equals this client's
// delivered count to the event.
#pragma once

#include <cstdint>
#include <string>

#include "net/framing.hpp"
#include "net/socket.hpp"
#include "net/url.hpp"
#include "sim/transport.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace wss::net {

struct SinkOptions {
  Endpoint endpoint;
  /// Handshake fields (TCP only; tenant empty = no handshake, for
  /// port-keyed listeners).
  std::string tenant;
  std::string system_short;
  int start_year = 0;  ///< 0 = unstated
  Framing framing = Framing::kNewline;

  /// UDP loss model (client-side) + its RNG seed.
  sim::UdpConfig udp;
  std::uint64_t seed = 1;
  /// Disables the loss model: every UDP line is offered to the kernel
  /// (kernel refusals still count as drops).
  bool lossless_udp = false;

  /// TCP only: announce `stamp=us` in the handshake and prefix a
  /// sampled 1-in-16 of payload lines with `@<wall-us> ` at send
  /// time. The server strips the stamp and feeds client-send ->
  /// engine-consume latency into
  /// wss_net_ingest_latency_seconds{tenant=...}.
  bool stamp_latency = false;

  /// TCP only: coalesce framed lines client-side and write once this
  /// many bytes have accumulated (plus a final flush at close()).
  /// 0 = write every line immediately -- the legacy behavior, and the
  /// right one for interactive senders. Real shippers batch: one
  /// write() per line caps a loopback blaster near the syscall rate,
  /// which measures the client, not the server.
  std::size_t send_batch_bytes = 0;
};

class SinkClient {
 public:
  /// Connects (TCP: blocking connect + handshake write) or creates the
  /// datagram socket. Throws std::runtime_error on failure.
  explicit SinkClient(const SinkOptions& opts);

  /// Offers one rendered line (no trailing newline). `t` is the
  /// event's simulated time -- the loss model's clock.
  void send(util::TimeUs t, const std::string& line);

  /// Writes any coalesced-but-unsent bytes now (TCP batching only;
  /// no-op otherwise).
  void flush();

  /// Flushes and closes the socket (TCP: orderly FIN so the server
  /// flushes any unterminated tail). Idempotent; the destructor calls
  /// it.
  void close();

  ~SinkClient();
  SinkClient(const SinkClient&) = delete;
  SinkClient& operator=(const SinkClient&) = delete;

  const sim::TransportStats& stats() const { return stats_; }
  const Endpoint& endpoint() const { return endpoint_; }

 private:
  Endpoint endpoint_;
  Framing framing_;
  Fd fd_;
  Ipv4 to_{};
  sim::UdpLossModel loss_;
  util::Rng rng_;
  bool lossless_udp_;
  bool stamp_latency_ = false;
  std::uint64_t sent_ = 0;  ///< stamp-sampling counter
  std::size_t batch_bytes_ = 0;
  sim::TransportStats stats_;
  std::string scratch_;
};

}  // namespace wss::net
