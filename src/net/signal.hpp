// Shared SIGINT/SIGTERM/SIGHUP handling for the long-running commands.
//
// `wss stream` and `wss serve` both need the same drain contract: the
// first SIGINT/SIGTERM requests a graceful stop (finish in-flight
// work, checkpoint, report), a second one force-exits (the operator
// means it), and SIGHUP asks for a metrics re-export without stopping.
//
// The handler itself does only async-signal-safe work: set a
// sig_atomic_t flag and write one byte to a self-pipe. Event-loop
// consumers add fd() to their poll set; loop-based consumers poll
// stop_requested() between items. install()/uninstall() save and
// restore the previous dispositions so in-process tests (and the
// gtest binary as a whole) are left untouched.
#pragma once

namespace wss::net {

class ShutdownSignal {
 public:
  /// Installs handlers for SIGINT, SIGTERM, SIGHUP (idempotent) and
  /// clears any stale flags. Also ignores SIGPIPE while installed --
  /// a peer hanging up mid-write must surface as EPIPE, not kill the
  /// server.
  static void install();

  /// Restores the dispositions saved by install(). No-op when not
  /// installed.
  static void uninstall();

  /// True once SIGINT or SIGTERM has been received.
  static bool stop_requested();

  /// Returns-and-clears the SIGHUP flag (re-export request).
  static bool take_hup();

  /// Read end of the self-pipe: readable whenever a signal has fired
  /// since the last drain_fd(). Add to epoll/poll sets.
  static int fd();

  /// Consumes pending wake-up bytes (call after the fd polls
  /// readable).
  static void drain_fd();

  /// Clears the stop/hup flags (tests; also used between command
  /// invocations in one process).
  static void reset();
};

}  // namespace wss::net
