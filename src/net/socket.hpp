// Thin POSIX socket layer for the ingest server and its clients.
//
// Everything the `wss serve` event loop and the `wss generate --sink`
// client need, and nothing more: an RAII fd, IPv4 endpoint resolution
// (numeric dotted quads plus "localhost"), bound TCP/UDP listeners,
// blocking client connects, and non-blocking I/O helpers that report
// would-block distinctly from error. All failures throw
// std::runtime_error carrying the errno text -- callers at the CLI
// boundary translate them into one-line diagnostics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

namespace wss::net {

/// Owning file descriptor. Move-only; close() on destruction.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }

  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& o) noexcept : fd_(std::exchange(o.fd_, -1)) {}
  Fd& operator=(Fd&& o) noexcept {
    if (this != &o) {
      reset();
      fd_ = std::exchange(o.fd_, -1);
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  /// Closes the descriptor now (idempotent).
  void reset();
  /// Releases ownership without closing.
  int release() { return std::exchange(fd_, -1); }

 private:
  int fd_ = -1;
};

/// Resolved IPv4 address + port. Host must be a dotted quad or
/// "localhost" (no DNS -- the tool serves loopback and lab networks,
/// and a resolver dependency would drag in blocking lookups).
struct Ipv4 {
  std::uint32_t addr_be = 0;  ///< network byte order
  std::uint16_t port = 0;
};

/// Parses "127.0.0.1" / "localhost" / "0.0.0.0" into an Ipv4 with the
/// given port. Throws std::runtime_error on anything else.
Ipv4 resolve_ipv4(const std::string& host, std::uint16_t port);

/// Marks the descriptor non-blocking (O_NONBLOCK).
void set_nonblocking(int fd);

/// Bound, listening TCP socket (SO_REUSEADDR, non-blocking). Port 0
/// binds an ephemeral port; bound_port() reports the real one. With
/// `reuseport`, SO_REUSEPORT is set before bind so several listeners
/// (one per event-loop shard) can share the port and the kernel
/// spreads accepts across them.
Fd listen_tcp(const Ipv4& at, int backlog = 128, bool reuseport = false);

/// Bound UDP socket (non-blocking). `rcvbuf_bytes` > 0 requests a
/// receive buffer large enough to absorb bursts (best effort).
/// `reuseport` shards the port like listen_tcp (datagrams from one
/// sender always land on the same socket).
Fd bind_udp(const Ipv4& at, int rcvbuf_bytes = 0, bool reuseport = false);

/// The locally bound port of a socket (resolves port-0 binds).
std::uint16_t bound_port(int fd);

/// Blocking TCP client connect.
Fd connect_tcp(const Ipv4& to);

/// Unconnected UDP client socket.
Fd udp_socket();

/// Result of a non-blocking read/accept probe.
enum class IoStatus : std::uint8_t {
  kOk = 0,        ///< bytes/connection delivered
  kWouldBlock,    ///< EAGAIN -- try again after the next readiness event
  kClosed,        ///< orderly EOF (reads) -- peer finished
};

/// Non-blocking read. On kOk, `got` is the byte count (> 0).
IoStatus read_some(int fd, char* buf, std::size_t cap, std::size_t& got);

/// Blocking full write; throws on error (client side).
void write_all(int fd, const char* data, std::size_t len);

/// Non-blocking write; returns bytes written (possibly 0 on
/// would-block). Throws on hard errors other than EPIPE/ECONNRESET,
/// which return npos to signal "peer is gone".
inline constexpr std::size_t kPeerGone = static_cast<std::size_t>(-1);
std::size_t write_some(int fd, const char* data, std::size_t len);

/// sendto() for the UDP sink; returns false when the kernel refused
/// the datagram with a transient error (counted by the caller as a
/// local drop), throws on hard errors.
bool send_dgram(int fd, const Ipv4& to, const char* data, std::size_t len);

/// recvfrom(); kOk fills `got` (a zero-length datagram yields kOk with
/// got == 0).
IoStatus recv_dgram(int fd, char* buf, std::size_t cap, std::size_t& got);

}  // namespace wss::net
