// `udp://host:port` / `tcp://host:port` endpoint notation, shared by
// the `wss generate --sink` client and the serve CLI diagnostics.
#pragma once

#include <cstdint>
#include <string>

namespace wss::net {

enum class Transport : std::uint8_t {
  kUdp = 0,
  kTcp = 1,
};

struct Endpoint {
  Transport transport = Transport::kUdp;
  std::string host;         ///< as written ("localhost" preserved)
  std::uint16_t port = 0;

  std::string to_string() const;
};

/// Parses "udp://host:port" or "tcp://host:port". The host may be a
/// dotted quad or "localhost"; the port must be 1..65535. Throws
/// std::invalid_argument with a one-line reason on anything else
/// (unknown scheme, missing port, junk).
Endpoint parse_endpoint(const std::string& url);

}  // namespace wss::net
