// Per-tenant stream engines for the ingest server.
//
// A tenant is one customer's log stream: its own tag ruleset (via the
// tenant's SystemId), its own stream::StreamPipeline, its own bounded
// stream::IngestRing, and its own consumer thread. Tenants share
// nothing but the process -- two tenants' tables can never cross
// because no object is reachable from both (the isolation test pins
// this end to end).
//
// Threading contract:
//   * The enqueue side (next_index/try_enqueue_batch/
//     enqueue_batch_evicting/enqueue/take_ring_drops) may be called
//     from ANY event-loop shard concurrently: admission happens under
//     the ring's own lock, the index and drop-publication counters are
//     atomics. No shard-to-shard lock is added -- the ring's existing
//     queue lock is the only synchronization point, taken once per
//     batch.
//   * The consumer thread owns the pipeline exclusively until
//     close_and_join() returns.
//   * The live stats (ingested/admitted/watermark) are relaxed atomics
//     maintained by the consumer, readable from any thread -- they
//     feed /status while ingest is running.
//
// Backpressure is the IngestRing's accounted drop-oldest policy: the
// event loop must never block, so a stalled tenant degrades to a
// sampled stream with an exact drop count (and TCP connections are
// paused *before* pushing once the ring is full, so TCP traffic into
// a healthy tenant is lossless -- see server.cpp). TCP batches go
// through the non-evicting try_enqueue_batch, whose room check and
// insert share the ring lock, so two shards racing for the last slots
// can never evict.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "stream/pipeline.hpp"
#include "stream/source.hpp"

namespace wss::net {

struct TenantConfig {
  std::string name;
  parse::SystemId system = parse::SystemId::kLiberty;
  int start_year = 0;            ///< 0 = the system spec's start year
  double threshold_s = 5.0;      ///< filter T
  double window_s = 3600.0;      ///< live-rate window
  std::size_t queue_capacity = 4096;

  /// Chaos/test knob: the consumer sleeps this long per ingested line,
  /// turning the tenant into a deterministic slow consumer for the
  /// backpressure suite (0 in production).
  std::uint64_t ingest_delay_us = 0;

  /// Online failure prediction for this tenant's pipeline (the serve
  /// --predict family maps onto these via tenant_defaults).
  bool predict = false;
  std::size_t predict_train = 4096;
  util::TimeUs predict_horizon_us = 10 * util::kUsPerMin;
};

class Tenant {
 public:
  explicit Tenant(const TenantConfig& cfg);
  ~Tenant();

  Tenant(const Tenant&) = delete;
  Tenant& operator=(const Tenant&) = delete;

  /// Spawns the consumer thread. Call once.
  void start();

  // ---- Event-loop side (any shard) ----

  /// True while the ring has room for one more line. Advisory only
  /// under sharding (another shard may take the slot); the lossless
  /// admission decision is try_enqueue_batch's return value.
  bool has_room() const { return ring_.size() < ring_.capacity(); }

  /// Next per-tenant stream index for a StreamItem under construction.
  std::uint64_t next_index() {
    return item_index_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Lossless bulk hand-off (the TCP path): swaps items[from..to) into
  /// the ring until it is full and returns how many were accepted --
  /// never evicts. A short count is the pause-read signal; the caller
  /// keeps the remainder and retries after the ring drains. Admitted
  /// elements get retired line buffers swapped back (see
  /// IngestRing::try_push_batch), so callers reusing their batch
  /// storage in place allocate nothing per line at steady state.
  std::size_t try_enqueue_batch(std::vector<stream::StreamItem>& items,
                                std::size_t from, std::size_t to);

  /// Lossy bulk hand-off (UDP datagrams, drain-deadline flushes):
  /// every item in [from..to) enters, oldest residents are evicted
  /// with each eviction counted (take_ring_drops publishes them).
  void enqueue_batch_evicting(std::vector<stream::StreamItem>& items,
                              std::size_t from, std::size_t to);

  /// Hands one decoded line to the consumer (evicting path). Batch
  /// callers should prefer the bulk forms above -- one ring lock per
  /// batch instead of per line.
  void enqueue(std::string line);

  /// Ring evictions since the last publication, pushed to the
  /// tenant's dropped counter. Safe from any shard concurrently (the
  /// publication watermark is advanced by CAS, so each eviction is
  /// published exactly once).
  std::uint64_t take_ring_drops();

  // ---- Drain ----

  /// Closes the ring, joins the consumer (which finishes the
  /// pipeline), and publishes final metrics. Idempotent.
  void close_and_join();

  /// Final snapshot (valid after close_and_join); `dropped` carries
  /// the ring's total eviction count.
  stream::StreamSnapshot final_snapshot() const;

  /// The final per-tenant report table -- byte-identical to what
  /// `wss stream --in <same delivered lines>` prints.
  std::string render_final() const;

  /// Serializes the drained pipeline (valid after close_and_join).
  void save_checkpoint(std::ostream& os);

  // ---- Live stats (any thread) ----
  std::uint64_t enqueued() const {
    return enqueued_.load(std::memory_order_relaxed);
  }
  std::uint64_t ingested() const {
    return ingested_.load(std::memory_order_relaxed);
  }
  std::uint64_t admitted() const {
    return admitted_.load(std::memory_order_relaxed);
  }
  std::int64_t watermark_us() const {
    return watermark_.load(std::memory_order_relaxed);
  }
  std::uint64_t ring_dropped() const { return ring_.dropped(); }
  std::size_t ring_size() const { return ring_.size(); }
  std::size_t ring_capacity() const { return ring_.capacity(); }

  // Prediction live stats (zero unless config().predict).
  bool predict_enabled() const { return cfg_.predict; }
  std::uint64_t predict_issued() const {
    return predict_issued_.load(std::memory_order_relaxed);
  }
  std::uint64_t predict_hits() const {
    return predict_hits_.load(std::memory_order_relaxed);
  }
  std::uint64_t predict_misses() const {
    return predict_misses_.load(std::memory_order_relaxed);
  }
  std::uint64_t predict_false_alarms() const {
    return predict_false_alarms_.load(std::memory_order_relaxed);
  }
  std::uint64_t predict_incidents() const {
    return predict_incidents_.load(std::memory_order_relaxed);
  }

  const std::string& name() const { return cfg_.name; }
  parse::SystemId system() const { return cfg_.system; }
  const TenantConfig& config() const { return cfg_; }

 private:
  void consume();
  void publish_predict_stats();

  TenantConfig cfg_;
  stream::IngestRing ring_;
  stream::StreamPipeline pipeline_;
  std::thread consumer_;
  bool joined_ = false;

  std::atomic<std::uint64_t> enqueued_{0};
  std::atomic<std::uint64_t> ingested_{0};
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::int64_t> watermark_{0};

  /// Published-drop watermark; advanced by CAS so concurrent shards
  /// (or an HTTP scrape racing a tick) never double-publish.
  std::atomic<std::uint64_t> published_ring_drops_{0};
  std::atomic<std::uint64_t> item_index_{0};

  // Cached per-tenant metric handles (registration is cold).
  obs::Counter& delivered_ctr_;
  obs::Counter& dropped_ctr_;
  obs::Counter& ingested_ctr_;
  /// Client-stamp -> engine-consume ingest latency, observed by the
  /// consumer for stamped lines (sampled 1-in-16; observe() is a
  /// bucket scan and the consumer is the throughput-critical side).
  obs::Histogram& ingest_latency_;

  // Prediction stats mirrored for /status (consumer writes, any thread
  // reads) and the per-tenant wss_predict_* counters (registered only
  // when prediction is on; delta-published by the consumer against the
  // pub_* baselines, which only the consumer touches).
  std::atomic<std::uint64_t> predict_issued_{0};
  std::atomic<std::uint64_t> predict_hits_{0};
  std::atomic<std::uint64_t> predict_misses_{0};
  std::atomic<std::uint64_t> predict_false_alarms_{0};
  std::atomic<std::uint64_t> predict_incidents_{0};
  obs::Counter* predict_issued_ctr_ = nullptr;
  obs::Counter* predict_hits_ctr_ = nullptr;
  obs::Counter* predict_misses_ctr_ = nullptr;
  obs::Counter* predict_false_alarms_ctr_ = nullptr;
  std::uint64_t pub_predict_issued_ = 0;
  std::uint64_t pub_predict_hits_ = 0;
  std::uint64_t pub_predict_misses_ = 0;
  std::uint64_t pub_predict_false_alarms_ = 0;
};

}  // namespace wss::net
