#include "net/server.hpp"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <optional>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/framing.hpp"
#include "net/http.hpp"
#include "net/signal.hpp"
#include "net/socket.hpp"
#include "obs/export.hpp"
#include "parse/record.hpp"
#include "util/strings.hpp"

namespace wss::net {

namespace {

constexpr std::size_t kReadChunk = 64 * 1024;
constexpr int kMaxDatagramsPerWake = 1024;

/// Decoded lines accumulated per readiness callback before one ring
/// publication -- the batch hand-off that replaces per-line locking.
constexpr std::size_t kBatchLines = 256;

bool valid_tenant_name(const std::string& name) {
  if (name.empty() || name.size() > 64) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '.';
    if (!ok) return false;
  }
  return true;
}

std::optional<parse::SystemId> system_from_short(std::string_view name) {
  for (const auto id : parse::kAllSystems) {
    if (parse::system_short_name(id) == name) return id;
  }
  return std::nullopt;
}

/// Parsed `tenant=NAME [system=SHORT] [framing=nl|len] [year=N]
/// [stamp=us]` handshake line.
struct Handshake {
  std::string tenant;
  std::optional<parse::SystemId> system;
  std::optional<Framing> framing;
  std::optional<int> year;
  bool stamp = false;  ///< payload lines carry a `@<us> ` send stamp
  std::string error;   ///< non-empty = reject the connection

  static Handshake parse(const std::string& line);
};

Handshake Handshake::parse(const std::string& line) {
  Handshake h;
  std::istringstream in(line);
  std::string tok;
  while (in >> tok) {
    const auto eq = tok.find('=');
    if (eq == std::string::npos) {
      h.error = util::format("handshake token without '=': %s", tok.c_str());
      return h;
    }
    const std::string key = tok.substr(0, eq);
    const std::string val = tok.substr(eq + 1);
    if (key == "tenant") {
      h.tenant = val;
    } else if (key == "system") {
      h.system = system_from_short(val);
      if (!h.system) {
        h.error = util::format("handshake names unknown system '%s'",
                               val.c_str());
        return h;
      }
    } else if (key == "framing") {
      if (val == "nl") {
        h.framing = Framing::kNewline;
      } else if (val == "len") {
        h.framing = Framing::kLenPrefix;
      } else {
        h.error = util::format("handshake framing must be nl|len, got '%s'",
                               val.c_str());
        return h;
      }
    } else if (key == "stamp") {
      if (val == "us") {
        h.stamp = true;
      } else {
        h.error = util::format("handshake stamp must be us, got '%s'",
                               val.c_str());
        return h;
      }
    } else if (key == "year") {
      h.year = std::atoi(val.c_str());
    } else {
      h.error = util::format("unknown handshake key '%s'", key.c_str());
      return h;
    }
  }
  if (!valid_tenant_name(h.tenant)) {
    h.error = util::format("handshake tenant name invalid: '%s'",
                           h.tenant.c_str());
  }
  return h;
}

/// Strips a `@<us-since-epoch> ` latency stamp (sent under the
/// handshake's stamp=us) off the front of a payload line. A line that
/// does not match the exact shape passes through untouched -- data is
/// never corrupted by a stamp heuristic.
void strip_stamp(std::string_view& frame, std::int64_t& client_us) {
  if (frame.empty() || frame[0] != '@') return;
  std::size_t i = 1;
  std::int64_t us = 0;
  while (i < frame.size() && frame[i] >= '0' && frame[i] <= '9') {
    us = us * 10 + (frame[i] - '0');
    ++i;
  }
  if (i == 1 || i >= frame.size() || frame[i] != ' ') return;
  client_us = us;
  frame.remove_prefix(i + 1);
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += util::format(
              "\\u%04x", static_cast<unsigned>(static_cast<unsigned char>(c)));
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

struct Server::Impl {
  enum class TagKind : std::uint8_t {
    kTcpListener,
    kUdpListener,
    kHttpListener,
    kConn,
    kWake,
    kSignal,
  };

  struct Conn;

  struct Tag {
    TagKind kind;
    std::size_t index = 0;  ///< listener-spec index for the listener kinds
    Conn* conn = nullptr;
  };

  struct Conn {
    Fd fd;
    Tag tag;
    bool http = false;

    // ---- Ingest connections ----
    FrameDecoder decoder;
    Tenant* tenant = nullptr;    ///< resolved routing target
    Tenant* fallback = nullptr;  ///< the listener's port-keyed tenant
    bool awaiting_first = true;  ///< first line may be a handshake
    bool paused = false;         ///< EPOLLIN withdrawn: tenant ring full
    bool eof = false;            ///< peer finished; tail flush may be pending
    bool stamped = false;        ///< handshake requested stamp=us parsing
    std::uint64_t published_oversized = 0;

    /// Decoded lines awaiting one batched ring publication. Items at
    /// [batch_off, batch_len) are pending; a partial flush (ring full)
    /// leaves the remainder here while the connection is paused.
    /// Elements at [batch_len, size) are retired: their line buffers
    /// came back from the ring's swap-based admission and are reused
    /// in place by append_item, so a warm connection allocates nothing
    /// per line.
    std::vector<stream::StreamItem> batch;
    std::size_t batch_off = 0;
    std::size_t batch_len = 0;

    // ---- HTTP connections ----
    HttpRequestParser parser;
    std::string out;
    std::size_t out_off = 0;
    bool writing = false;
  };

  struct BoundTcp {
    Fd fd;
    Tag tag{TagKind::kTcpListener};
    std::uint16_t port = 0;
    Tenant* tenant = nullptr;  ///< null = handshake-routed
  };
  struct BoundUdp {
    Fd fd;
    Tag tag{TagKind::kUdpListener};
    std::uint16_t port = 0;
    Tenant* tenant = nullptr;
  };

  /// One event-loop shard: its own epoll, its own wake pipe, its own
  /// SO_REUSEPORT listener per configured spec, and exclusive ownership
  /// of every connection it accepts. Shards never touch each other's
  /// state; the tenants' rings are the only shared hand-off point.
  struct Shard {
    std::size_t id = 0;
    Fd epoll;
    Fd wake_r, wake_w;
    Tag wake_tag{TagKind::kWake};
    std::vector<std::unique_ptr<BoundTcp>> tcp;  ///< one per opts.tcp spec
    std::vector<std::unique_ptr<BoundUdp>> udp;  ///< one per opts.udp spec
    std::unordered_map<int, std::unique_ptr<Conn>> conns;
    std::vector<stream::StreamItem> udp_batch;  ///< datagram batch scratch
    std::size_t udp_batch_len = 0;  ///< used prefix; the rest is retired

    // Cumulative per-shard stats: prove the kernel actually spreads the
    // load and let /status show a hot shard at a glance.
    std::atomic<std::uint64_t> connections{0};
    std::atomic<std::uint64_t> delivered{0};
    std::atomic<std::uint64_t> batches{0};
    obs::Counter* connections_ctr = nullptr;
    obs::Counter* delivered_ctr = nullptr;
    obs::Counter* batches_ctr = nullptr;
  };

  explicit Impl(ServeOptions o)
      : opts(std::move(o)),
        connections_ctr(obs::registry().counter("wss_net_connections_total")),
        http_requests_ctr(
            obs::registry().counter("wss_net_http_requests_total")),
        protocol_errors_ctr(
            obs::registry().counter("wss_net_protocol_errors_total")),
        oversized_ctr(obs::registry().counter("wss_net_oversized_total")),
        active_gauge(obs::registry().gauge("wss_net_active_connections")) {}

  ServeOptions opts;

  std::vector<std::unique_ptr<Shard>> shards;

  Fd http_fd;
  Tag http_tag{TagKind::kHttpListener};
  Tag signal_tag{TagKind::kSignal};
  std::uint16_t http_port = 0;

  mutable std::mutex tenants_mu;  ///< guards tenants + by_name
  std::vector<std::unique_ptr<Tenant>> tenants;
  std::unordered_map<std::string, Tenant*> by_name;

  bool bound = false;
  std::atomic<bool> stop{false};
  std::atomic<bool> draining{false};
  std::atomic<std::size_t> active{0};

  std::atomic<std::uint64_t> connections_total{0};
  std::atomic<std::uint64_t> http_requests_total{0};
  std::atomic<std::uint64_t> protocol_errors_total{0};
  std::atomic<std::uint64_t> oversized_total{0};

  obs::Counter& connections_ctr;
  obs::Counter& http_requests_ctr;
  obs::Counter& protocol_errors_ctr;
  obs::Counter& oversized_ctr;
  obs::Gauge& active_gauge;

  // ---- Setup ----

  Tenant* find_tenant(const std::string& name) {
    std::lock_guard<std::mutex> lock(tenants_mu);
    const auto it = by_name.find(name);
    return it == by_name.end() ? nullptr : it->second;
  }

  /// Finds the named tenant, creating it from `cfg` on first use. The
  /// lookup and the insert share one lock: two shards racing the same
  /// handshake name get the same instance, never twins.
  Tenant* find_or_add_tenant(const TenantConfig& cfg) {
    std::lock_guard<std::mutex> lock(tenants_mu);
    const auto it = by_name.find(cfg.name);
    if (it != by_name.end()) return it->second;
    auto t = std::make_unique<Tenant>(cfg);
    Tenant* raw = t.get();
    raw->start();
    tenants.push_back(std::move(t));
    by_name.emplace(cfg.name, raw);
    return raw;
  }

  void epoll_add(Shard& s, int fd, std::uint32_t events, Tag* tag) {
    epoll_event ev{};
    ev.events = events;
    ev.data.ptr = tag;
    if (epoll_ctl(s.epoll.get(), EPOLL_CTL_ADD, fd, &ev) != 0) {
      throw std::runtime_error(
          util::format("epoll_ctl(ADD): %s", std::strerror(errno)));
    }
  }

  void epoll_mod(Shard& s, int fd, std::uint32_t events, Tag* tag) {
    epoll_event ev{};
    ev.events = events;
    ev.data.ptr = tag;
    if (epoll_ctl(s.epoll.get(), EPOLL_CTL_MOD, fd, &ev) != 0) {
      throw std::runtime_error(
          util::format("epoll_ctl(MOD): %s", std::strerror(errno)));
    }
  }

  void epoll_del(Shard& s, int fd) {
    epoll_ctl(s.epoll.get(), EPOLL_CTL_DEL, fd, nullptr);
  }

  static int resolve_shard_count(int requested) {
    if (requested == 0) {
      const unsigned hw = std::thread::hardware_concurrency();
      return static_cast<int>(std::min(hw == 0 ? 1u : hw, 8u));
    }
    return std::min(std::max(requested, 1), 64);
  }

  void bind_all() {
    if (bound) throw std::runtime_error("Server::bind() called twice");

    for (const auto& cfg : opts.tenants) {
      if (!valid_tenant_name(cfg.name)) {
        throw std::runtime_error(
            util::format("invalid tenant name '%s' (use [A-Za-z0-9_.-])",
                         cfg.name.c_str()));
      }
      if (find_tenant(cfg.name) != nullptr) {
        throw std::runtime_error(
            util::format("duplicate tenant '%s'", cfg.name.c_str()));
      }
      find_or_add_tenant(cfg);
    }

    const int nshards = resolve_shard_count(opts.loop_shards);
    const bool reuseport = nshards > 1;
    for (int k = 0; k < nshards; ++k) {
      auto s = std::make_unique<Shard>();
      s->id = static_cast<std::size_t>(k);
      s->epoll = Fd(epoll_create1(EPOLL_CLOEXEC));
      if (!s->epoll.valid()) {
        throw std::runtime_error(
            util::format("epoll_create1: %s", std::strerror(errno)));
      }
      int pipefd[2];
      if (pipe(pipefd) != 0) {
        throw std::runtime_error(
            util::format("pipe: %s", std::strerror(errno)));
      }
      s->wake_r = Fd(pipefd[0]);
      s->wake_w = Fd(pipefd[1]);
      set_nonblocking(s->wake_r.get());
      set_nonblocking(s->wake_w.get());
      epoll_add(*s, s->wake_r.get(), EPOLLIN, &s->wake_tag);
      s->connections_ctr = &obs::registry().counter(util::format(
          "wss_net_shard_connections_total{shard=\"%d\"}", k));
      s->delivered_ctr = &obs::registry().counter(util::format(
          "wss_net_shard_delivered_total{shard=\"%d\"}", k));
      s->batches_ctr = &obs::registry().counter(util::format(
          "wss_net_shard_batches_total{shard=\"%d\"}", k));
      shards.push_back(std::move(s));
    }

    if (opts.watch_shutdown_signal) {
      epoll_add(*shards[0], ShutdownSignal::fd(), EPOLLIN, &signal_tag);
    }

    // Every shard binds its own listener per spec. Shard 0 binds first
    // (resolving a port-0 spec to a concrete ephemeral port), the rest
    // join that port's reuseport group.
    for (std::size_t i = 0; i < opts.tcp.size(); ++i) {
      const auto& spec = opts.tcp[i];
      Tenant* tenant = nullptr;
      if (!spec.tenant.empty()) {
        tenant = find_tenant(spec.tenant);
        if (tenant == nullptr) {
          throw std::runtime_error(util::format(
              "tcp listener %u routes to undeclared tenant '%s'",
              unsigned{spec.port}, spec.tenant.c_str()));
        }
      }
      std::uint16_t port = spec.port;
      for (auto& s : shards) {
        auto l = std::make_unique<BoundTcp>();
        l->tenant = tenant;
        l->fd = listen_tcp(resolve_ipv4(opts.bind_host, port), 128, reuseport);
        l->port = bound_port(l->fd.get());
        port = l->port;
        l->tag.index = i;
        epoll_add(*s, l->fd.get(), EPOLLIN, &l->tag);
        s->tcp.push_back(std::move(l));
      }
    }

    for (std::size_t i = 0; i < opts.udp.size(); ++i) {
      const auto& spec = opts.udp[i];
      Tenant* tenant = find_tenant(spec.tenant);
      if (tenant == nullptr) {
        throw std::runtime_error(util::format(
            "udp listener %u requires a declared tenant (got '%s')",
            unsigned{spec.port}, spec.tenant.c_str()));
      }
      std::uint16_t port = spec.port;
      for (auto& s : shards) {
        auto l = std::make_unique<BoundUdp>();
        l->tenant = tenant;
        l->fd =
            bind_udp(resolve_ipv4(opts.bind_host, port), 1 << 20, reuseport);
        l->port = bound_port(l->fd.get());
        port = l->port;
        l->tag.index = i;
        epoll_add(*s, l->fd.get(), EPOLLIN, &l->tag);
        s->udp.push_back(std::move(l));
      }
    }

    if (opts.http_enabled) {
      http_fd = listen_tcp(resolve_ipv4(opts.bind_host, opts.http_port));
      http_port = bound_port(http_fd.get());
      epoll_add(*shards[0], http_fd.get(), EPOLLIN, &http_tag);
    }

    if (opts.tcp.empty() && opts.udp.empty()) {
      throw std::runtime_error("no ingest listeners configured");
    }
    bound = true;
  }

  // ---- Connection lifecycle ----

  void accept_loop(Shard& s, Fd& listener, bool http, Tenant* fallback) {
    for (;;) {
      const int fd = accept4(listener.get(), nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (errno == EINTR || errno == ECONNABORTED) continue;
        throw std::runtime_error(
            util::format("accept: %s", std::strerror(errno)));
      }
      auto conn = std::make_unique<Conn>();
      conn->fd = Fd(fd);
      conn->http = http;
      conn->fallback = fallback;
      conn->tenant = nullptr;
      conn->decoder = FrameDecoder(Framing::kNewline, opts.max_frame);
      conn->tag = Tag{TagKind::kConn, 0, conn.get()};
      epoll_add(s, fd, EPOLLIN, &conn->tag);
      s.conns.emplace(fd, std::move(conn));
      connections_total.fetch_add(1, std::memory_order_relaxed);
      connections_ctr.inc();
      s.connections.fetch_add(1, std::memory_order_relaxed);
      s.connections_ctr->inc();
      const std::size_t now = active.fetch_add(1, std::memory_order_relaxed) + 1;
      active_gauge.set(static_cast<std::int64_t>(now));
    }
  }

  void publish_oversized(Conn& c) {
    const std::uint64_t total = c.decoder.oversized();
    if (total > c.published_oversized) {
      const std::uint64_t fresh = total - c.published_oversized;
      oversized_total.fetch_add(fresh, std::memory_order_relaxed);
      oversized_ctr.inc(fresh);
      c.published_oversized = total;
    }
  }

  void protocol_error(Shard& s, Conn& c, const std::string& why) {
    protocol_errors_total.fetch_add(1, std::memory_order_relaxed);
    protocol_errors_ctr.inc();
    if (opts.log != nullptr) {
      std::lock_guard<std::mutex> lock(log_mu);
      *opts.log << "wss serve: protocol error: " << why << "\n";
    }
    close_conn(s, c);
  }

  void close_conn(Shard& s, Conn& c) {
    publish_oversized(c);
    const int fd = c.fd.get();
    epoll_del(s, fd);
    s.conns.erase(fd);  // destroys c
    const std::size_t now = active.fetch_sub(1, std::memory_order_relaxed) - 1;
    active_gauge.set(static_cast<std::int64_t>(now));
  }

  // ---- Batched ring hand-off ----

  /// Appends one decoded frame to the connection's pending batch: the
  /// single copy a TCP line pays between the socket and the engine.
  /// Retired elements past batch_len are reused in place -- their
  /// line buffers came back from the ring's swap-based admission, so
  /// assign() below usually fits in existing capacity (no malloc).
  void append_item(Conn& c, std::string_view frame) {
    if (c.batch_len == c.batch.size()) c.batch.emplace_back();
    stream::StreamItem& item = c.batch[c.batch_len++];
    item.client_us = 0;
    if (c.stamped) strip_stamp(frame, item.client_us);
    item.index = c.tenant->next_index();
    item.line.assign(frame.data(), frame.size());
  }

  /// Publishes the pending batch to the tenant's ring in one lock
  /// acquisition (lossless: never evicts). Returns false when the ring
  /// filled first -- the remainder stays queued on the connection and
  /// the caller pauses reading.
  bool flush_batch(Shard& s, Conn& c) {
    if (c.batch_off >= c.batch_len) {
      c.batch_off = 0;
      c.batch_len = 0;
      return true;
    }
    const std::size_t accepted =
        c.tenant->try_enqueue_batch(c.batch, c.batch_off, c.batch_len);
    if (accepted > 0) {
      c.batch_off += accepted;
      s.delivered.fetch_add(accepted, std::memory_order_relaxed);
      s.delivered_ctr->inc(accepted);
      s.batches.fetch_add(1, std::memory_order_relaxed);
      s.batches_ctr->inc();
    }
    if (c.batch_off < c.batch_len) return false;
    c.batch_off = 0;
    c.batch_len = 0;
    return true;
  }

  /// Evicting flush for shutdown paths (matches the old force-close
  /// behavior: buffered frames enter, oldest ring entries go, counted).
  void flush_batch_evicting(Shard& s, Conn& c) {
    const std::size_t n = c.batch_len - c.batch_off;
    if (n == 0 || c.tenant == nullptr) return;
    c.tenant->enqueue_batch_evicting(c.batch, c.batch_off, c.batch_len);
    s.delivered.fetch_add(n, std::memory_order_relaxed);
    s.delivered_ctr->inc(n);
    s.batches.fetch_add(1, std::memory_order_relaxed);
    s.batches_ctr->inc();
    c.batch_off = 0;
    c.batch_len = 0;
  }

  /// First line of an ingest connection: a `tenant=` handshake, or --
  /// on a port-keyed listener -- plain data. Returns false when the
  /// connection was closed (routing failure); `is_payload` tells the
  /// caller the line was data and must be delivered.
  bool route_first(Shard& s, Conn& c, std::string_view frame,
                   bool& is_payload) {
    c.awaiting_first = false;
    is_payload = false;
    if (frame.rfind("tenant=", 0) != 0) {
      if (c.fallback == nullptr) {
        protocol_error(
            s, c,
            "first line is not a tenant= handshake on a shared listener");
        return false;
      }
      c.tenant = c.fallback;
      is_payload = true;
      return true;
    }

    // Copy before any decoder mutation: the view aliases decoder
    // storage and a framing switch below frees it.
    const Handshake h = Handshake::parse(std::string(frame));
    if (!h.error.empty()) {
      protocol_error(s, c, h.error);
      return false;
    }
    Tenant* t = find_tenant(h.tenant);
    if (t == nullptr) {
      if (!opts.allow_handshake_tenants ||
          draining.load(std::memory_order_relaxed)) {
        protocol_error(s, c,
                       util::format("unknown tenant '%s'", h.tenant.c_str()));
        return false;
      }
      TenantConfig cfg = opts.tenant_defaults;
      cfg.name = h.tenant;
      if (h.system) cfg.system = *h.system;
      if (h.year) cfg.start_year = *h.year;
      t = find_or_add_tenant(cfg);
    }
    if (h.system && *h.system != t->system()) {
      protocol_error(
          s, c,
          util::format("handshake system does not match tenant '%s'",
                       h.tenant.c_str()));
      return false;
    }
    c.tenant = t;
    c.stamped = h.stamp;
    if (h.framing && *h.framing != c.decoder.mode()) {
      FrameDecoder next(*h.framing, opts.max_frame);
      next.feed(c.decoder.take_rest());
      c.decoder = std::move(next);
    }
    return true;
  }

  void pause_conn(Shard& s, Conn& c) {
    if (c.paused) return;
    c.paused = true;
    epoll_mod(s, c.fd.get(), 0, &c.tag);
  }

  void resume_conn(Shard& s, Conn& c) {
    if (!c.paused) return;
    c.paused = false;
    epoll_mod(s, c.fd.get(), EPOLLIN, &c.tag);
  }

  /// True when the tenant's ring has emptied enough to resume a paused
  /// connection (hysteresis: resume at half, pause at full, so a
  /// borderline ring doesn't flap every frame).
  static bool resume_ready(const Tenant& t) {
    return t.ring_size() <= t.ring_capacity() / 2;
  }

  /// Flushes the EOF tail (if any) and closes. Returns false when the
  /// batch must wait for ring room (connection stays, paused).
  bool finish_ingest(Shard& s, Conn& c) {
    std::string_view tail;
    if (c.decoder.finish_view(tail)) {
      if (c.awaiting_first) {
        bool is_payload = false;
        if (!route_first(s, c, tail, is_payload)) return true;  // closed
        if (is_payload) append_item(c, tail);
      } else if (c.tenant != nullptr) {
        append_item(c, tail);
      }
    } else if (c.decoder.mode() == Framing::kLenPrefix &&
               c.decoder.buffered() > 0) {
      flush_batch(s, c);
      protocol_error(s, c, "connection closed mid length-prefixed frame");
      return true;
    }
    if (c.tenant != nullptr && !flush_batch(s, c)) {
      // EOF data is still data: hold the remainder and wait for room.
      pause_conn(s, c);
      return false;
    }
    close_conn(s, c);
    return true;
  }

  /// Drives one ingest connection: slice frames out of the recv buffer
  /// into the pending batch, publish in kBatchLines blocks (pausing on
  /// a full tenant ring), then read more until would-block or EOF.
  void pump_ingest(Shard& s, Conn& c) {
    if (!flush_batch(s, c)) {
      // Leftovers from before the pause still don't fit.
      pause_conn(s, c);
      return;
    }
    for (;;) {
      std::string_view frame;
      while (c.decoder.next_view(frame)) {
        if (c.awaiting_first) {
          bool is_payload = false;
          if (!route_first(s, c, frame, is_payload)) return;  // closed
          if (!is_payload) continue;
        }
        append_item(c, frame);
        if (c.batch_len - c.batch_off >= kBatchLines) {
          if (!flush_batch(s, c)) {
            publish_oversized(c);
            pause_conn(s, c);
            return;
          }
        }
      }
      if (c.decoder.error()) {
        flush_batch(s, c);
        protocol_error(s, c, "length-prefixed frame exceeds --max-frame");
        return;
      }
      publish_oversized(c);

      if (c.eof) {
        finish_ingest(s, c);
        return;
      }

      // Zero-copy read: recv lands directly in the decoder's buffer;
      // next_view slices frames out of it without another move.
      char* dst = c.decoder.write_window(kReadChunk);
      std::size_t got = 0;
      const IoStatus st = read_some(c.fd.get(), dst, kReadChunk, got);
      if (st == IoStatus::kWouldBlock) {
        // Publish the partial batch before going idle -- a quiet
        // connection must not sit on undelivered lines.
        if (!flush_batch(s, c)) pause_conn(s, c);
        return;
      }
      if (st == IoStatus::kClosed) {
        c.eof = true;
        continue;  // one more decode pass, then finish_ingest
      }
      c.decoder.commit(got);
    }
  }

  // ---- UDP ----

  void pump_udp(Shard& s, BoundUdp& l) {
    char buf[64 * 1024];
    auto& batch = s.udp_batch;
    s.udp_batch_len = 0;
    const auto flush = [&] {
      const std::size_t n = s.udp_batch_len;
      if (n == 0) return;
      l.tenant->enqueue_batch_evicting(batch, 0, n);
      s.delivered.fetch_add(n, std::memory_order_relaxed);
      s.delivered_ctr->inc(n);
      s.batches.fetch_add(1, std::memory_order_relaxed);
      s.batches_ctr->inc();
      s.udp_batch_len = 0;
    };
    const auto push_line = [&](const char* data, std::size_t len) {
      if (s.udp_batch_len == batch.size()) batch.emplace_back();
      stream::StreamItem& item = batch[s.udp_batch_len++];
      item.client_us = 0;
      item.index = l.tenant->next_index();
      item.line.assign(data, len);
    };
    for (int i = 0; i < kMaxDatagramsPerWake; ++i) {
      std::size_t got = 0;
      const IoStatus st = recv_dgram(l.fd.get(), buf, sizeof buf, got);
      if (st != IoStatus::kOk) break;
      // One datagram carries one or more newline-separated lines (a
      // lone trailing newline does not make an empty final line --
      // same contract as reading a file).
      std::size_t start = 0;
      while (start < got) {
        std::size_t end = start;
        while (end < got && buf[end] != '\n') ++end;
        std::size_t len = end - start;
        if (len > 0 && buf[start + len - 1] == '\r') --len;
        if (len <= opts.max_frame) {
          push_line(buf + start, len);
        } else {
          oversized_total.fetch_add(1, std::memory_order_relaxed);
          oversized_ctr.inc();
        }
        start = end + 1;
      }
      if (got == 0) push_line(buf, 0);
      if (s.udp_batch_len >= kBatchLines) flush();
    }
    flush();
  }

  // ---- HTTP (shard 0 only) ----

  void pump_http_read(Shard& s, Conn& c) {
    for (;;) {
      char buf[4096];
      std::size_t got = 0;
      const IoStatus st = read_some(c.fd.get(), buf, sizeof buf, got);
      if (st == IoStatus::kWouldBlock) return;
      if (st == IoStatus::kClosed) {
        close_conn(s, c);
        return;
      }
      if (c.parser.feed(std::string_view(buf, got))) {
        start_http_response(s, c);
        return;
      }
    }
  }

  void start_http_response(Shard& s, Conn& c) {
    http_requests_total.fetch_add(1, std::memory_order_relaxed);
    http_requests_ctr.inc();
    c.out = build_http_response(c);
    c.out_off = 0;
    c.writing = true;
    epoll_mod(s, c.fd.get(), EPOLLOUT, &c.tag);
    pump_http_write(s, c);
  }

  std::string build_http_response(Conn& c) {
    if (c.parser.error()) {
      return http_response(400, "text/plain", "bad request\n");
    }
    const HttpRequest& req = c.parser.request();
    if (req.method != "GET") {
      return http_response(405, "text/plain", "method not allowed\n");
    }
    if (req.path == "/metrics") {
      publish_all_ring_drops();
      return http_response(200, "text/plain; version=0.0.4",
                           obs::to_prometheus(obs::registry().snapshot()));
    }
    if (req.path == "/metrics.json") {
      publish_all_ring_drops();
      return http_response(200, "application/json",
                           obs::to_json(obs::registry().snapshot()));
    }
    if (req.path == "/status") {
      publish_all_ring_drops();
      return http_response(200, "application/json", status_json());
    }
    return http_response(404, "text/plain", "not found\n");
  }

  void pump_http_write(Shard& s, Conn& c) {
    while (c.out_off < c.out.size()) {
      const std::size_t n = write_some(c.fd.get(), c.out.data() + c.out_off,
                                       c.out.size() - c.out_off);
      if (n == kPeerGone) {
        close_conn(s, c);
        return;
      }
      if (n == 0) return;  // would block; EPOLLOUT re-arms us
      c.out_off += n;
    }
    close_conn(s, c);
  }

  // ---- Periodic work ----

  void publish_all_ring_drops() {
    std::lock_guard<std::mutex> lock(tenants_mu);
    for (const auto& t : tenants) t->take_ring_drops();
  }

  void tick(Shard& s) {
    publish_all_ring_drops();
    // Paused connections resume when their tenant's ring has drained to
    // half; collect first (pump may close and erase conns mid-walk).
    std::vector<Conn*> ready;
    for (const auto& [fd, conn] : s.conns) {
      if (conn->paused && conn->tenant != nullptr &&
          resume_ready(*conn->tenant)) {
        ready.push_back(conn.get());
      }
    }
    for (Conn* c : ready) {
      resume_conn(s, *c);
      pump_ingest(s, *c);
    }
  }

  void handle_signal_fd() {
    ShutdownSignal::drain_fd();
    if (ShutdownSignal::take_hup() && !opts.metrics_path.empty()) {
      try {
        publish_all_ring_drops();
        obs::write_metrics_file(opts.metrics_path);
        if (opts.log != nullptr) {
          std::lock_guard<std::mutex> lock(log_mu);
          *opts.log << "wss serve: metrics re-exported to "
                    << opts.metrics_path << "\n";
        }
      } catch (const std::exception& e) {
        if (opts.log != nullptr) {
          std::lock_guard<std::mutex> lock(log_mu);
          *opts.log << "wss serve: metrics export failed: " << e.what()
                    << "\n";
        }
      }
    }
    if (ShutdownSignal::stop_requested()) request_stop_impl();
  }

  static void drain_wake_pipe(Shard& s) {
    char buf[64];
    while (read(s.wake_r.get(), buf, sizeof buf) > 0) {
    }
  }

  void request_stop_impl() {
    stop.store(true, std::memory_order_relaxed);
    for (const auto& s : shards) {
      if (s->wake_w.valid()) {
        const char b = 1;
        [[maybe_unused]] const auto n = write(s->wake_w.get(), &b, 1);
      }
    }
  }

  /// Closes this shard's listeners (with a final UDP sweep: anything
  /// already queued in the kernel buffer is data the sender believes
  /// delivered). Each shard drains its own listeners on its own thread.
  void begin_drain_shard(Shard& s) {
    draining.store(true, std::memory_order_relaxed);
    for (auto& l : s.tcp) {
      epoll_del(s, l->fd.get());
      l->fd.reset();
    }
    for (auto& l : s.udp) {
      pump_udp(s, *l);
      epoll_del(s, l->fd.get());
      l->fd.reset();
    }
    if (s.id == 0 && http_fd.valid()) {
      epoll_del(s, http_fd.get());
      http_fd.reset();
    }
  }

  /// Past the grace deadline: flush what each connection already
  /// buffered (ring evictions are accounted) and close it.
  void force_close_all(Shard& s) {
    while (!s.conns.empty()) {
      Conn& c = *s.conns.begin()->second;
      if (!c.http && c.tenant != nullptr) {
        std::string_view frame;
        while (c.decoder.next_view(frame)) append_item(c, frame);
        if (c.decoder.finish_view(frame)) append_item(c, frame);
        flush_batch_evicting(s, c);
      }
      close_conn(s, c);
    }
  }

  // ---- The loops ----

  /// One shard's event loop; every shard runs this on its own thread
  /// (shard 0 on the caller's).
  void shard_loop(Shard& s) {
    std::array<epoll_event, 64> events{};
    bool local_draining = false;
    std::chrono::steady_clock::time_point deadline{};
    for (;;) {
      if (stop.load(std::memory_order_relaxed) && !local_draining) {
        local_draining = true;
        deadline = std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(opts.drain_grace_ms);
        begin_drain_shard(s);
      }
      if (local_draining) {
        if (s.conns.empty()) break;
        if (std::chrono::steady_clock::now() >= deadline) {
          force_close_all(s);
          break;
        }
      }

      const int n =
          epoll_wait(s.epoll.get(), events.data(),
                     static_cast<int>(events.size()), opts.poll_ms);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw std::runtime_error(
            util::format("epoll_wait: %s", std::strerror(errno)));
      }
      for (int i = 0; i < n; ++i) {
        auto* tag = static_cast<Tag*>(events[static_cast<std::size_t>(i)]
                                          .data.ptr);
        switch (tag->kind) {
          case TagKind::kTcpListener: {
            auto& l = *s.tcp[tag->index];
            if (l.fd.valid()) accept_loop(s, l.fd, false, l.tenant);
            break;
          }
          case TagKind::kUdpListener:
            if (s.udp[tag->index]->fd.valid()) pump_udp(s, *s.udp[tag->index]);
            break;
          case TagKind::kHttpListener:
            if (http_fd.valid()) accept_loop(s, http_fd, true, nullptr);
            break;
          case TagKind::kConn: {
            Conn& c = *tag->conn;
            if (c.http) {
              if (c.writing) {
                pump_http_write(s, c);
              } else {
                pump_http_read(s, c);
              }
            } else {
              pump_ingest(s, c);
            }
            break;
          }
          case TagKind::kWake:
            drain_wake_pipe(s);
            break;
          case TagKind::kSignal:
            handle_signal_fd();
            break;
        }
      }
      tick(s);
    }
  }

  ServeReport run_loop() {
    if (!bound) throw std::runtime_error("Server::run() before bind()");

    std::mutex err_mu;
    std::exception_ptr first_err;
    const auto guarded = [&](Shard& s) {
      try {
        shard_loop(s);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(err_mu);
          if (!first_err) first_err = std::current_exception();
        }
        // Bring the other shards down so run() can report the failure.
        request_stop_impl();
      }
    };

    std::vector<std::thread> threads;
    threads.reserve(shards.size() - 1);
    for (std::size_t k = 1; k < shards.size(); ++k) {
      threads.emplace_back([&, k] { guarded(*shards[k]); });
    }
    guarded(*shards[0]);
    for (auto& t : threads) t.join();
    if (first_err) std::rethrow_exception(first_err);

    return drain_tenants();
  }

  ServeReport drain_tenants() {
    ServeReport report;
    report.connections = connections_total.load(std::memory_order_relaxed);
    report.http_requests =
        http_requests_total.load(std::memory_order_relaxed);
    report.protocol_errors =
        protocol_errors_total.load(std::memory_order_relaxed);
    report.oversized = oversized_total.load(std::memory_order_relaxed);

    std::vector<Tenant*> order;
    {
      std::lock_guard<std::mutex> lock(tenants_mu);
      for (const auto& t : tenants) order.push_back(t.get());
    }
    std::sort(order.begin(), order.end(), [](const Tenant* a, const Tenant* b) {
      return a->name() < b->name();
    });

    for (Tenant* t : order) {
      t->close_and_join();
      ServeTenantReport tr;
      tr.name = t->name();
      tr.system = std::string(parse::system_short_name(t->system()));
      tr.delivered = t->enqueued();
      tr.dropped = t->ring_dropped();
      tr.ingested = t->ingested();
      tr.admitted = t->admitted();
      tr.table = t->render_final();
      report.tenants.push_back(std::move(tr));

      if (!opts.checkpoint_dir.empty()) {
        std::filesystem::create_directories(opts.checkpoint_dir);
        const std::string path =
            (std::filesystem::path(opts.checkpoint_dir) / (t->name() + ".ckpt"))
                .string();
        std::ofstream out(path, std::ios::binary);
        if (out) {
          t->save_checkpoint(out);
          report.checkpoints.push_back(path);
        } else if (opts.log != nullptr) {
          *opts.log << "wss serve: cannot write checkpoint " << path << "\n";
        }
      }
    }
    return report;
  }

  std::string build_status_json() const {
    std::string out = "{\"schema\":\"wss.serve.v1\",\"tenants\":[";
    {
      std::lock_guard<std::mutex> lock(tenants_mu);
      std::vector<const Tenant*> order;
      for (const auto& t : tenants) order.push_back(t.get());
      std::sort(order.begin(), order.end(),
                [](const Tenant* a, const Tenant* b) {
                  return a->name() < b->name();
                });
      bool first = true;
      for (const Tenant* t : order) {
        if (!first) out += ",";
        first = false;
        out += util::format(
            "{\"name\":\"%s\",\"system\":\"%s\",\"delivered\":%llu,"
            "\"dropped\":%llu,\"ingested\":%llu,\"admitted\":%llu,"
            "\"queue\":%zu,\"queue_capacity\":%zu,\"watermark_us\":%lld",
            json_escape(t->name()).c_str(),
            std::string(parse::system_short_name(t->system())).c_str(),
            static_cast<unsigned long long>(t->enqueued()),
            static_cast<unsigned long long>(t->ring_dropped()),
            static_cast<unsigned long long>(t->ingested()),
            static_cast<unsigned long long>(t->admitted()), t->ring_size(),
            t->ring_capacity(),
            static_cast<long long>(t->watermark_us()));
        if (t->predict_enabled()) {
          out += util::format(
              ",\"predict\":{\"issued\":%llu,\"hits\":%llu,\"misses\":%llu,"
              "\"false_alarms\":%llu,\"incidents\":%llu}",
              static_cast<unsigned long long>(t->predict_issued()),
              static_cast<unsigned long long>(t->predict_hits()),
              static_cast<unsigned long long>(t->predict_misses()),
              static_cast<unsigned long long>(t->predict_false_alarms()),
              static_cast<unsigned long long>(t->predict_incidents()));
        }
        out += "}";
      }
    }
    out += util::format("],\"loop_shards\":%zu,\"shards\":[", shards.size());
    for (std::size_t k = 0; k < shards.size(); ++k) {
      const Shard& s = *shards[k];
      if (k != 0) out += ",";
      out += util::format(
          "{\"shard\":%zu,\"connections\":%llu,\"delivered\":%llu,"
          "\"batches\":%llu}",
          k,
          static_cast<unsigned long long>(
              s.connections.load(std::memory_order_relaxed)),
          static_cast<unsigned long long>(
              s.delivered.load(std::memory_order_relaxed)),
          static_cast<unsigned long long>(
              s.batches.load(std::memory_order_relaxed)));
    }
    out += util::format(
        "],\"connections_total\":%llu,\"active_connections\":%zu,"
        "\"http_requests_total\":%llu,\"protocol_errors_total\":%llu,"
        "\"oversized_total\":%llu,\"draining\":%s}",
        static_cast<unsigned long long>(
            connections_total.load(std::memory_order_relaxed)),
        active.load(std::memory_order_relaxed),
        static_cast<unsigned long long>(
            http_requests_total.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(
            protocol_errors_total.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(
            oversized_total.load(std::memory_order_relaxed)),
        draining.load(std::memory_order_relaxed) ? "true" : "false");
    return out;
  }

  std::string status_json() const { return build_status_json(); }

  /// The diagnostics stream may be written from any shard.
  std::mutex log_mu;
};

Server::Server(ServeOptions opts)
    : impl_(std::make_unique<Impl>(std::move(opts))) {}

Server::~Server() = default;

void Server::bind() { impl_->bind_all(); }

std::uint16_t Server::tcp_port(std::size_t i) const {
  return impl_->shards.at(0)->tcp.at(i)->port;
}

std::uint16_t Server::udp_port(std::size_t i) const {
  return impl_->shards.at(0)->udp.at(i)->port;
}

std::uint16_t Server::http_port() const { return impl_->http_port; }

ServeReport Server::run() { return impl_->run_loop(); }

void Server::request_stop() { impl_->request_stop_impl(); }

std::string Server::status_json() const { return impl_->status_json(); }

}  // namespace wss::net
