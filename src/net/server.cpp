#include "net/server.hpp"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <optional>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/framing.hpp"
#include "net/http.hpp"
#include "net/signal.hpp"
#include "net/socket.hpp"
#include "obs/export.hpp"
#include "parse/record.hpp"
#include "util/strings.hpp"

namespace wss::net {

namespace {

constexpr std::size_t kReadChunk = 64 * 1024;
constexpr int kMaxDatagramsPerWake = 1024;

bool valid_tenant_name(const std::string& name) {
  if (name.empty() || name.size() > 64) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '.';
    if (!ok) return false;
  }
  return true;
}

std::optional<parse::SystemId> system_from_short(std::string_view name) {
  for (const auto id : parse::kAllSystems) {
    if (parse::system_short_name(id) == name) return id;
  }
  return std::nullopt;
}

/// Parsed `tenant=NAME [system=SHORT] [framing=nl|len] [year=N]`
/// handshake line.
struct Handshake {
  std::string tenant;
  std::optional<parse::SystemId> system;
  std::optional<Framing> framing;
  std::optional<int> year;
  std::string error;  ///< non-empty = reject the connection

  static Handshake parse(const std::string& line);
};

Handshake Handshake::parse(const std::string& line) {
  Handshake h;
  std::istringstream in(line);
  std::string tok;
  while (in >> tok) {
    const auto eq = tok.find('=');
    if (eq == std::string::npos) {
      h.error = util::format("handshake token without '=': %s", tok.c_str());
      return h;
    }
    const std::string key = tok.substr(0, eq);
    const std::string val = tok.substr(eq + 1);
    if (key == "tenant") {
      h.tenant = val;
    } else if (key == "system") {
      h.system = system_from_short(val);
      if (!h.system) {
        h.error = util::format("handshake names unknown system '%s'",
                               val.c_str());
        return h;
      }
    } else if (key == "framing") {
      if (val == "nl") {
        h.framing = Framing::kNewline;
      } else if (val == "len") {
        h.framing = Framing::kLenPrefix;
      } else {
        h.error = util::format("handshake framing must be nl|len, got '%s'",
                               val.c_str());
        return h;
      }
    } else if (key == "year") {
      h.year = std::atoi(val.c_str());
    } else {
      h.error = util::format("unknown handshake key '%s'", key.c_str());
      return h;
    }
  }
  if (!valid_tenant_name(h.tenant)) {
    h.error = util::format("handshake tenant name invalid: '%s'",
                           h.tenant.c_str());
  }
  return h;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += util::format(
              "\\u%04x", static_cast<unsigned>(static_cast<unsigned char>(c)));
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

struct Server::Impl {
  enum class TagKind : std::uint8_t {
    kTcpListener,
    kUdpListener,
    kHttpListener,
    kConn,
    kWake,
    kSignal,
  };

  struct Conn;

  struct Tag {
    TagKind kind;
    std::size_t index = 0;  ///< listener index for the listener kinds
    Conn* conn = nullptr;
  };

  struct Conn {
    Fd fd;
    Tag tag;
    bool http = false;

    // ---- Ingest connections ----
    FrameDecoder decoder;
    Tenant* tenant = nullptr;    ///< resolved routing target
    Tenant* fallback = nullptr;  ///< the listener's port-keyed tenant
    bool awaiting_first = true;  ///< first line may be a handshake
    bool paused = false;         ///< EPOLLIN withdrawn: tenant ring full
    bool eof = false;            ///< peer finished; tail flush may be pending
    std::uint64_t published_oversized = 0;

    // ---- HTTP connections ----
    HttpRequestParser parser;
    std::string out;
    std::size_t out_off = 0;
    bool writing = false;
  };

  explicit Impl(ServeOptions o)
      : opts(std::move(o)),
        connections_ctr(obs::registry().counter("wss_net_connections_total")),
        http_requests_ctr(
            obs::registry().counter("wss_net_http_requests_total")),
        protocol_errors_ctr(
            obs::registry().counter("wss_net_protocol_errors_total")),
        oversized_ctr(obs::registry().counter("wss_net_oversized_total")),
        active_gauge(obs::registry().gauge("wss_net_active_connections")) {}

  ServeOptions opts;

  struct BoundTcp {
    Fd fd;
    Tag tag{TagKind::kTcpListener};
    std::uint16_t port = 0;
    Tenant* tenant = nullptr;  ///< null = handshake-routed
  };
  struct BoundUdp {
    Fd fd;
    Tag tag{TagKind::kUdpListener};
    std::uint16_t port = 0;
    Tenant* tenant = nullptr;
  };

  std::vector<std::unique_ptr<BoundTcp>> tcp;
  std::vector<std::unique_ptr<BoundUdp>> udp;
  Fd http_fd;
  Tag http_tag{TagKind::kHttpListener};
  std::uint16_t http_port = 0;

  mutable std::mutex tenants_mu;  ///< guards tenants + by_name
  std::vector<std::unique_ptr<Tenant>> tenants;
  std::unordered_map<std::string, Tenant*> by_name;

  Fd epoll;
  Fd wake_r, wake_w;
  Tag wake_tag{TagKind::kWake};
  Tag signal_tag{TagKind::kSignal};

  std::unordered_map<int, std::unique_ptr<Conn>> conns;

  bool bound = false;
  std::atomic<bool> stop{false};
  std::atomic<bool> draining{false};
  std::chrono::steady_clock::time_point drain_deadline{};
  std::atomic<std::size_t> active{0};

  std::atomic<std::uint64_t> connections_total{0};
  std::atomic<std::uint64_t> http_requests_total{0};
  std::atomic<std::uint64_t> protocol_errors_total{0};
  std::atomic<std::uint64_t> oversized_total{0};

  obs::Counter& connections_ctr;
  obs::Counter& http_requests_ctr;
  obs::Counter& protocol_errors_ctr;
  obs::Counter& oversized_ctr;
  obs::Gauge& active_gauge;

  // ---- Setup ----

  Tenant* find_tenant(const std::string& name) {
    std::lock_guard<std::mutex> lock(tenants_mu);
    const auto it = by_name.find(name);
    return it == by_name.end() ? nullptr : it->second;
  }

  Tenant* add_tenant(const TenantConfig& cfg) {
    auto t = std::make_unique<Tenant>(cfg);
    Tenant* raw = t.get();
    raw->start();
    std::lock_guard<std::mutex> lock(tenants_mu);
    tenants.push_back(std::move(t));
    by_name.emplace(cfg.name, raw);
    return raw;
  }

  void epoll_add(int fd, std::uint32_t events, Tag* tag) {
    epoll_event ev{};
    ev.events = events;
    ev.data.ptr = tag;
    if (epoll_ctl(epoll.get(), EPOLL_CTL_ADD, fd, &ev) != 0) {
      throw std::runtime_error(
          util::format("epoll_ctl(ADD): %s", std::strerror(errno)));
    }
  }

  void epoll_mod(int fd, std::uint32_t events, Tag* tag) {
    epoll_event ev{};
    ev.events = events;
    ev.data.ptr = tag;
    if (epoll_ctl(epoll.get(), EPOLL_CTL_MOD, fd, &ev) != 0) {
      throw std::runtime_error(
          util::format("epoll_ctl(MOD): %s", std::strerror(errno)));
    }
  }

  void epoll_del(int fd) { epoll_ctl(epoll.get(), EPOLL_CTL_DEL, fd, nullptr); }

  void bind_all() {
    if (bound) throw std::runtime_error("Server::bind() called twice");

    for (const auto& cfg : opts.tenants) {
      if (!valid_tenant_name(cfg.name)) {
        throw std::runtime_error(
            util::format("invalid tenant name '%s' (use [A-Za-z0-9_.-])",
                         cfg.name.c_str()));
      }
      if (find_tenant(cfg.name) != nullptr) {
        throw std::runtime_error(
            util::format("duplicate tenant '%s'", cfg.name.c_str()));
      }
      add_tenant(cfg);
    }

    epoll = Fd(epoll_create1(EPOLL_CLOEXEC));
    if (!epoll.valid()) {
      throw std::runtime_error(
          util::format("epoll_create1: %s", std::strerror(errno)));
    }

    int pipefd[2];
    if (pipe(pipefd) != 0) {
      throw std::runtime_error(
          util::format("pipe: %s", std::strerror(errno)));
    }
    wake_r = Fd(pipefd[0]);
    wake_w = Fd(pipefd[1]);
    set_nonblocking(wake_r.get());
    set_nonblocking(wake_w.get());
    epoll_add(wake_r.get(), EPOLLIN, &wake_tag);

    if (opts.watch_shutdown_signal) {
      epoll_add(ShutdownSignal::fd(), EPOLLIN, &signal_tag);
    }

    for (std::size_t i = 0; i < opts.tcp.size(); ++i) {
      const auto& spec = opts.tcp[i];
      auto l = std::make_unique<BoundTcp>();
      if (!spec.tenant.empty()) {
        l->tenant = find_tenant(spec.tenant);
        if (l->tenant == nullptr) {
          throw std::runtime_error(util::format(
              "tcp listener %u routes to undeclared tenant '%s'",
              unsigned{spec.port}, spec.tenant.c_str()));
        }
      }
      l->fd = listen_tcp(resolve_ipv4(opts.bind_host, spec.port));
      l->port = bound_port(l->fd.get());
      l->tag.index = i;
      epoll_add(l->fd.get(), EPOLLIN, &l->tag);
      tcp.push_back(std::move(l));
    }

    for (std::size_t i = 0; i < opts.udp.size(); ++i) {
      const auto& spec = opts.udp[i];
      auto l = std::make_unique<BoundUdp>();
      l->tenant = find_tenant(spec.tenant);
      if (l->tenant == nullptr) {
        throw std::runtime_error(util::format(
            "udp listener %u requires a declared tenant (got '%s')",
            unsigned{spec.port}, spec.tenant.c_str()));
      }
      l->fd = bind_udp(resolve_ipv4(opts.bind_host, spec.port), 1 << 20);
      l->port = bound_port(l->fd.get());
      l->tag.index = i;
      epoll_add(l->fd.get(), EPOLLIN, &l->tag);
      udp.push_back(std::move(l));
    }

    if (opts.http_enabled) {
      http_fd = listen_tcp(resolve_ipv4(opts.bind_host, opts.http_port));
      http_port = bound_port(http_fd.get());
      epoll_add(http_fd.get(), EPOLLIN, &http_tag);
    }

    if (tcp.empty() && udp.empty()) {
      throw std::runtime_error("no ingest listeners configured");
    }
    bound = true;
  }

  // ---- Connection lifecycle ----

  void accept_loop(Fd& listener, bool http, Tenant* fallback) {
    for (;;) {
      const int fd = accept4(listener.get(), nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (errno == EINTR || errno == ECONNABORTED) continue;
        throw std::runtime_error(
            util::format("accept: %s", std::strerror(errno)));
      }
      auto conn = std::make_unique<Conn>();
      conn->fd = Fd(fd);
      conn->http = http;
      conn->fallback = fallback;
      conn->tenant = nullptr;
      conn->decoder = FrameDecoder(Framing::kNewline, opts.max_frame);
      conn->tag = Tag{TagKind::kConn, 0, conn.get()};
      epoll_add(fd, EPOLLIN, &conn->tag);
      conns.emplace(fd, std::move(conn));
      connections_total.fetch_add(1, std::memory_order_relaxed);
      connections_ctr.inc();
      active.store(conns.size(), std::memory_order_relaxed);
      active_gauge.set(static_cast<std::int64_t>(conns.size()));
    }
  }

  void publish_oversized(Conn& c) {
    const std::uint64_t total = c.decoder.oversized();
    if (total > c.published_oversized) {
      const std::uint64_t fresh = total - c.published_oversized;
      oversized_total.fetch_add(fresh, std::memory_order_relaxed);
      oversized_ctr.inc(fresh);
      c.published_oversized = total;
    }
  }

  void protocol_error(Conn& c, const std::string& why) {
    protocol_errors_total.fetch_add(1, std::memory_order_relaxed);
    protocol_errors_ctr.inc();
    if (opts.log != nullptr) {
      *opts.log << "wss serve: protocol error: " << why << "\n";
    }
    close_conn(c);
  }

  void close_conn(Conn& c) {
    publish_oversized(c);
    const int fd = c.fd.get();
    epoll_del(fd);
    conns.erase(fd);  // destroys c
    active.store(conns.size(), std::memory_order_relaxed);
    active_gauge.set(static_cast<std::int64_t>(conns.size()));
  }

  /// First line of an ingest connection: a `tenant=` handshake, or --
  /// on a port-keyed listener -- plain data. Returns false when the
  /// connection was closed (routing failure).
  bool route_first(Conn& c, const std::string& frame) {
    c.awaiting_first = false;
    if (frame.rfind("tenant=", 0) != 0) {
      if (c.fallback == nullptr) {
        protocol_error(
            c, "first line is not a tenant= handshake on a shared listener");
        return false;
      }
      c.tenant = c.fallback;
      c.tenant->enqueue(frame);
      return true;
    }

    const Handshake h = Handshake::parse(frame);
    if (!h.error.empty()) {
      protocol_error(c, h.error);
      return false;
    }
    Tenant* t = find_tenant(h.tenant);
    if (t != nullptr) {
      if (h.system && *h.system != t->system()) {
        protocol_error(
            c, util::format("handshake system does not match tenant '%s'",
                            h.tenant.c_str()));
        return false;
      }
    } else {
      if (!opts.allow_handshake_tenants ||
          draining.load(std::memory_order_relaxed)) {
        protocol_error(c, util::format("unknown tenant '%s'",
                                       h.tenant.c_str()));
        return false;
      }
      TenantConfig cfg = opts.tenant_defaults;
      cfg.name = h.tenant;
      if (h.system) cfg.system = *h.system;
      if (h.year) cfg.start_year = *h.year;
      t = add_tenant(cfg);
    }
    c.tenant = t;
    if (h.framing && *h.framing != c.decoder.mode()) {
      FrameDecoder next(*h.framing, opts.max_frame);
      next.feed(c.decoder.take_rest());
      c.decoder = std::move(next);
    }
    return true;
  }

  void pause_conn(Conn& c) {
    if (c.paused) return;
    c.paused = true;
    epoll_mod(c.fd.get(), 0, &c.tag);
  }

  void resume_conn(Conn& c) {
    if (!c.paused) return;
    c.paused = false;
    epoll_mod(c.fd.get(), EPOLLIN, &c.tag);
  }

  /// True when the tenant's ring has emptied enough to resume a paused
  /// connection (hysteresis: resume at half, pause at full, so a
  /// borderline ring doesn't flap every frame).
  static bool resume_ready(const Tenant& t) {
    return t.ring_size() <= t.ring_capacity() / 2;
  }

  /// Flushes the EOF tail (if any) and closes. Returns false when the
  /// tail must wait for ring room (connection stays, paused).
  bool finish_ingest(Conn& c) {
    std::string tail;
    if (c.decoder.finish(tail)) {
      if (c.awaiting_first) {
        if (!route_first(c, tail)) return true;  // closed
        close_conn(c);
        return true;
      }
      if (c.tenant != nullptr) {
        if (!c.tenant->has_room()) {
          // Put the tail back and wait: EOF data is still data.
          c.decoder.feed(tail);
          c.decoder.feed("\n");
          pause_conn(c);
          return false;
        }
        c.tenant->enqueue(tail);
      }
    } else if (c.decoder.mode() == Framing::kLenPrefix &&
               c.decoder.buffered() > 0) {
      protocol_error(c, "connection closed mid length-prefixed frame");
      return true;
    }
    close_conn(c);
    return true;
  }

  /// Drives one ingest connection: decode buffered frames (pausing on
  /// a full tenant ring), then read more until would-block or EOF.
  void pump_ingest(Conn& c) {
    for (;;) {
      std::string frame;
      for (;;) {
        if (c.tenant != nullptr && !c.tenant->has_room()) {
          publish_oversized(c);
          pause_conn(c);
          return;
        }
        if (!c.decoder.next(frame)) break;
        if (c.awaiting_first) {
          if (!route_first(c, frame)) return;  // closed
        } else {
          c.tenant->enqueue(frame);
        }
      }
      if (c.decoder.error()) {
        protocol_error(c, "length-prefixed frame exceeds --max-frame");
        return;
      }
      publish_oversized(c);

      if (c.eof) {
        finish_ingest(c);
        return;
      }

      char buf[kReadChunk];
      std::size_t got = 0;
      const IoStatus st = read_some(c.fd.get(), buf, sizeof buf, got);
      if (st == IoStatus::kWouldBlock) return;
      if (st == IoStatus::kClosed) {
        c.eof = true;
        continue;  // one more decode pass, then finish_ingest
      }
      c.decoder.feed(std::string_view(buf, got));
    }
  }

  // ---- UDP ----

  void pump_udp(BoundUdp& l) {
    char buf[64 * 1024];
    for (int i = 0; i < kMaxDatagramsPerWake; ++i) {
      std::size_t got = 0;
      const IoStatus st = recv_dgram(l.fd.get(), buf, sizeof buf, got);
      if (st != IoStatus::kOk) return;
      // One datagram carries one or more newline-separated lines (a
      // lone trailing newline does not make an empty final line --
      // same contract as reading a file).
      std::size_t start = 0;
      while (start < got) {
        std::size_t end = start;
        while (end < got && buf[end] != '\n') ++end;
        std::size_t len = end - start;
        if (len > 0 && buf[start + len - 1] == '\r') --len;
        if (len <= opts.max_frame) {
          l.tenant->enqueue(std::string(buf + start, len));
        } else {
          oversized_total.fetch_add(1, std::memory_order_relaxed);
          oversized_ctr.inc();
        }
        start = end + 1;
      }
      if (got == 0) l.tenant->enqueue(std::string());
    }
  }

  // ---- HTTP ----

  void pump_http_read(Conn& c) {
    for (;;) {
      char buf[4096];
      std::size_t got = 0;
      const IoStatus st = read_some(c.fd.get(), buf, sizeof buf, got);
      if (st == IoStatus::kWouldBlock) return;
      if (st == IoStatus::kClosed) {
        close_conn(c);
        return;
      }
      if (c.parser.feed(std::string_view(buf, got))) {
        start_http_response(c);
        return;
      }
    }
  }

  void start_http_response(Conn& c) {
    http_requests_total.fetch_add(1, std::memory_order_relaxed);
    http_requests_ctr.inc();
    c.out = build_http_response(c);
    c.out_off = 0;
    c.writing = true;
    epoll_mod(c.fd.get(), EPOLLOUT, &c.tag);
    pump_http_write(c);
  }

  std::string build_http_response(Conn& c) {
    if (c.parser.error()) {
      return http_response(400, "text/plain", "bad request\n");
    }
    const HttpRequest& req = c.parser.request();
    if (req.method != "GET") {
      return http_response(405, "text/plain", "method not allowed\n");
    }
    if (req.path == "/metrics") {
      publish_all_ring_drops();
      return http_response(200, "text/plain; version=0.0.4",
                           obs::to_prometheus(obs::registry().snapshot()));
    }
    if (req.path == "/metrics.json") {
      publish_all_ring_drops();
      return http_response(200, "application/json",
                           obs::to_json(obs::registry().snapshot()));
    }
    if (req.path == "/status") {
      publish_all_ring_drops();
      return http_response(200, "application/json", status_json());
    }
    return http_response(404, "text/plain", "not found\n");
  }

  void pump_http_write(Conn& c) {
    while (c.out_off < c.out.size()) {
      const std::size_t n = write_some(c.fd.get(), c.out.data() + c.out_off,
                                       c.out.size() - c.out_off);
      if (n == kPeerGone) {
        close_conn(c);
        return;
      }
      if (n == 0) return;  // would block; EPOLLOUT re-arms us
      c.out_off += n;
    }
    close_conn(c);
  }

  // ---- Periodic work ----

  void publish_all_ring_drops() {
    std::lock_guard<std::mutex> lock(tenants_mu);
    for (const auto& t : tenants) t->take_ring_drops();
  }

  void tick() {
    publish_all_ring_drops();
    // Paused connections resume when their tenant's ring has drained to
    // half; collect first (pump may close and erase conns mid-walk).
    std::vector<Conn*> ready;
    for (const auto& [fd, conn] : conns) {
      if (conn->paused && conn->tenant != nullptr &&
          resume_ready(*conn->tenant)) {
        ready.push_back(conn.get());
      }
    }
    for (Conn* c : ready) {
      resume_conn(*c);
      pump_ingest(*c);
    }
  }

  void handle_signal_fd() {
    ShutdownSignal::drain_fd();
    if (ShutdownSignal::take_hup() && !opts.metrics_path.empty()) {
      try {
        publish_all_ring_drops();
        obs::write_metrics_file(opts.metrics_path);
        if (opts.log != nullptr) {
          *opts.log << "wss serve: metrics re-exported to "
                    << opts.metrics_path << "\n";
        }
      } catch (const std::exception& e) {
        if (opts.log != nullptr) {
          *opts.log << "wss serve: metrics export failed: " << e.what()
                    << "\n";
        }
      }
    }
    if (ShutdownSignal::stop_requested()) {
      stop.store(true, std::memory_order_relaxed);
    }
  }

  void drain_wake_pipe() {
    char buf[64];
    while (read(wake_r.get(), buf, sizeof buf) > 0) {
    }
  }

  void begin_drain() {
    draining.store(true, std::memory_order_relaxed);
    drain_deadline = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(opts.drain_grace_ms);
    for (auto& l : tcp) {
      epoll_del(l->fd.get());
      l->fd.reset();
    }
    for (auto& l : udp) {
      // Final sweep: anything already queued in the kernel buffer is
      // data the sender believes delivered.
      pump_udp(*l);
      epoll_del(l->fd.get());
      l->fd.reset();
    }
    if (http_fd.valid()) {
      epoll_del(http_fd.get());
      http_fd.reset();
    }
  }

  /// Past the grace deadline: flush what each connection already
  /// buffered (ring evictions are accounted) and close it.
  void force_close_all() {
    while (!conns.empty()) {
      Conn& c = *conns.begin()->second;
      if (!c.http && c.tenant != nullptr) {
        std::string frame;
        while (c.decoder.next(frame)) c.tenant->enqueue(frame);
        if (c.decoder.finish(frame)) c.tenant->enqueue(frame);
      }
      close_conn(c);
    }
  }

  // ---- The loop ----

  ServeReport run_loop() {
    if (!bound) throw std::runtime_error("Server::run() before bind()");

    std::array<epoll_event, 64> events{};
    for (;;) {
      if (stop.load(std::memory_order_relaxed) &&
          !draining.load(std::memory_order_relaxed)) {
        begin_drain();
      }
      if (draining.load(std::memory_order_relaxed)) {
        if (conns.empty()) break;
        if (std::chrono::steady_clock::now() >= drain_deadline) {
          force_close_all();
          break;
        }
      }

      const int n =
          epoll_wait(epoll.get(), events.data(),
                     static_cast<int>(events.size()), opts.poll_ms);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw std::runtime_error(
            util::format("epoll_wait: %s", std::strerror(errno)));
      }
      for (int i = 0; i < n; ++i) {
        auto* tag = static_cast<Tag*>(events[static_cast<std::size_t>(i)]
                                          .data.ptr);
        switch (tag->kind) {
          case TagKind::kTcpListener: {
            auto& l = *tcp[tag->index];
            if (l.fd.valid()) accept_loop(l.fd, false, l.tenant);
            break;
          }
          case TagKind::kUdpListener:
            if (udp[tag->index]->fd.valid()) pump_udp(*udp[tag->index]);
            break;
          case TagKind::kHttpListener:
            if (http_fd.valid()) accept_loop(http_fd, true, nullptr);
            break;
          case TagKind::kConn: {
            Conn& c = *tag->conn;
            if (c.http) {
              if (c.writing) {
                pump_http_write(c);
              } else {
                pump_http_read(c);
              }
            } else {
              pump_ingest(c);
            }
            break;
          }
          case TagKind::kWake:
            drain_wake_pipe();
            break;
          case TagKind::kSignal:
            handle_signal_fd();
            break;
        }
      }
      tick();
    }

    return drain_tenants();
  }

  ServeReport drain_tenants() {
    ServeReport report;
    report.connections = connections_total.load(std::memory_order_relaxed);
    report.http_requests =
        http_requests_total.load(std::memory_order_relaxed);
    report.protocol_errors =
        protocol_errors_total.load(std::memory_order_relaxed);
    report.oversized = oversized_total.load(std::memory_order_relaxed);

    std::vector<Tenant*> order;
    {
      std::lock_guard<std::mutex> lock(tenants_mu);
      for (const auto& t : tenants) order.push_back(t.get());
    }
    std::sort(order.begin(), order.end(), [](const Tenant* a, const Tenant* b) {
      return a->name() < b->name();
    });

    for (Tenant* t : order) {
      t->close_and_join();
      ServeTenantReport tr;
      tr.name = t->name();
      tr.system = std::string(parse::system_short_name(t->system()));
      tr.delivered = t->enqueued();
      tr.dropped = t->ring_dropped();
      tr.ingested = t->ingested();
      tr.admitted = t->admitted();
      tr.table = t->render_final();
      report.tenants.push_back(std::move(tr));

      if (!opts.checkpoint_dir.empty()) {
        std::filesystem::create_directories(opts.checkpoint_dir);
        const std::string path =
            (std::filesystem::path(opts.checkpoint_dir) / (t->name() + ".ckpt"))
                .string();
        std::ofstream out(path, std::ios::binary);
        if (out) {
          t->save_checkpoint(out);
          report.checkpoints.push_back(path);
        } else if (opts.log != nullptr) {
          *opts.log << "wss serve: cannot write checkpoint " << path << "\n";
        }
      }
    }
    return report;
  }

  std::string build_status_json() const {
    std::string out = "{\"schema\":\"wss.serve.v1\",\"tenants\":[";
    {
      std::lock_guard<std::mutex> lock(tenants_mu);
      std::vector<const Tenant*> order;
      for (const auto& t : tenants) order.push_back(t.get());
      std::sort(order.begin(), order.end(),
                [](const Tenant* a, const Tenant* b) {
                  return a->name() < b->name();
                });
      bool first = true;
      for (const Tenant* t : order) {
        if (!first) out += ",";
        first = false;
        out += util::format(
            "{\"name\":\"%s\",\"system\":\"%s\",\"delivered\":%llu,"
            "\"dropped\":%llu,\"ingested\":%llu,\"admitted\":%llu,"
            "\"queue\":%zu,\"queue_capacity\":%zu,\"watermark_us\":%lld}",
            json_escape(t->name()).c_str(),
            std::string(parse::system_short_name(t->system())).c_str(),
            static_cast<unsigned long long>(t->enqueued()),
            static_cast<unsigned long long>(t->ring_dropped()),
            static_cast<unsigned long long>(t->ingested()),
            static_cast<unsigned long long>(t->admitted()), t->ring_size(),
            t->ring_capacity(),
            static_cast<long long>(t->watermark_us()));
      }
    }
    out += util::format(
        "],\"connections_total\":%llu,\"active_connections\":%zu,"
        "\"http_requests_total\":%llu,\"protocol_errors_total\":%llu,"
        "\"oversized_total\":%llu,\"draining\":%s}",
        static_cast<unsigned long long>(
            connections_total.load(std::memory_order_relaxed)),
        active.load(std::memory_order_relaxed),
        static_cast<unsigned long long>(
            http_requests_total.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(
            protocol_errors_total.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(
            oversized_total.load(std::memory_order_relaxed)),
        draining.load(std::memory_order_relaxed) ? "true" : "false");
    return out;
  }

  std::string status_json() const { return build_status_json(); }
};

Server::Server(ServeOptions opts)
    : impl_(std::make_unique<Impl>(std::move(opts))) {}

Server::~Server() = default;

void Server::bind() { impl_->bind_all(); }

std::uint16_t Server::tcp_port(std::size_t i) const {
  return impl_->tcp.at(i)->port;
}

std::uint16_t Server::udp_port(std::size_t i) const {
  return impl_->udp.at(i)->port;
}

std::uint16_t Server::http_port() const { return impl_->http_port; }

ServeReport Server::run() { return impl_->run_loop(); }

void Server::request_stop() {
  impl_->stop.store(true, std::memory_order_relaxed);
  if (impl_->wake_w.valid()) {
    const char b = 1;
    [[maybe_unused]] const auto n = write(impl_->wake_w.get(), &b, 1);
  }
}

std::string Server::status_json() const { return impl_->status_json(); }

}  // namespace wss::net
