#include "tag/severity_tagger.hpp"

// SeverityTagger is header-only; this translation unit anchors it in
// the wss_tag library.
