#include "tag/metrics.hpp"

namespace wss::tag {

TagMetricsFlusher::TagMetricsFlusher()
    : lines_(&obs::registry().counter("wss_tag_lines_total")),
      hits_(&obs::registry().counter("wss_tag_hits_total")),
      prefilter_rejects_(
          &obs::registry().counter("wss_tag_prefilter_rejects_total")),
      dfa_scans_(&obs::registry().counter("wss_tag_dfa_scans_total")),
      pike_fallbacks_(
          &obs::registry().counter("wss_tag_pike_fallbacks_total")),
      dfa_flushes_(&obs::registry().counter("wss_tag_dfa_flushes_total")) {}

void TagMetricsFlusher::flush(const match::MatchScratch& s) {
  lines_->inc(s.tag_lines - last_lines_);
  hits_->inc(s.tag_hits - last_hits_);
  prefilter_rejects_->inc(s.prefilter_rejects - last_prefilter_rejects_);
  dfa_scans_->inc(s.dfa_scans - last_dfa_scans_);
  pike_fallbacks_->inc(s.pike_fallback_scans - last_pike_fallbacks_);
  dfa_flushes_->inc(s.dfa_flushes - last_dfa_flushes_);
  rebase(s);
}

void TagMetricsFlusher::rebase(const match::MatchScratch& s) {
  last_lines_ = s.tag_lines;
  last_hits_ = s.tag_hits;
  last_prefilter_rejects_ = s.prefilter_rejects;
  last_dfa_scans_ = s.dfa_scans;
  last_pike_fallbacks_ = s.pike_fallback_scans;
  last_dfa_flushes_ = s.dfa_flushes;
}

}  // namespace wss::tag
