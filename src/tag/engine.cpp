#include "tag/engine.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <map>

#include "util/strings.hpp"

namespace wss::tag {

namespace {

match::MatchScratch& thread_local_scratch() {
  thread_local match::MatchScratch scratch;
  return scratch;
}

std::uint64_t next_engine_instance_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

TagEngineMode TagEngine::mode_from_env() {
  const char* env = std::getenv("WSS_TAG_ENGINE");
  if (env == nullptr) return TagEngineMode::kMulti;
  if (std::strcmp(env, "naive") == 0) return TagEngineMode::kNaive;
  if (std::strcmp(env, "prefilter") == 0) return TagEngineMode::kPrefilter;
  return TagEngineMode::kMulti;
}

TagEngine::TagEngine(RuleSet rules, TagEngineMode mode)
    : rules_(std::move(rules)),
      mode_(mode),
      instance_id_(next_engine_instance_id()) {
  // Compile the rule plans: every whole-line term becomes a pattern of
  // the combined set matcher; every non-negated term with a provable
  // required literal contributes to the Aho–Corasick prefilter. (A
  // negated term cannot gate candidacy: its conjunct is SATISFIED when
  // the pattern -- and hence its literal -- is absent.)
  std::vector<std::string> literals;
  std::map<std::string, std::uint16_t> literal_ids;
  std::vector<const match::Regex*> patterns;
  const auto& rule_list = rules_.rules();
  plans_.reserve(rule_list.size());
  for (const Rule& rule : rule_list) {
    RulePlan plan;
    plan.type = rule.type;
    plan.never = rule.predicate.empty();
    for (const match::Term& t : rule.predicate.terms()) {
      TermPlan tp;
      tp.field = t.field;
      tp.negated = t.negated;
      tp.re = t.re.get();
      if (t.field == 0) {
        tp.pid = static_cast<std::uint32_t>(patterns.size());
        patterns.push_back(t.re.get());
      }
      if (!t.negated && !t.re->prefilter_literal().empty()) {
        const std::string& lit = t.re->prefilter_literal();
        const auto [it, inserted] = literal_ids.emplace(
            lit, static_cast<std::uint16_t>(literals.size()));
        if (inserted) literals.push_back(lit);
        plan.lits.push_back(it->second);
      }
      plan.terms.push_back(tp);
    }
    plans_.push_back(std::move(plan));
  }
  literals_ = std::make_unique<match::LiteralScanner>(std::move(literals));
  multi_ = std::make_unique<match::MultiRegex>(std::move(patterns));
  for (const RulePlan& plan : plans_) {
    if (!plan.never && plan.lits.empty()) has_ungated_rule_ = true;
  }
  // Flatten each rule's required-literal set into one contiguous mask
  // row: the candidate test becomes sequential word ANDs over a flat
  // array instead of chasing per-rule id vectors.
  lit_words_ = literals_->bitset_words();
  lit_masks_.assign(plans_.size() * lit_words_, 0);
  for (std::size_t i = 0; i < plans_.size(); ++i) {
    for (const std::uint16_t lit : plans_[i].lits) {
      match::bitset_set(lit_masks_.data() + i * lit_words_, lit);
    }
  }

  const std::size_t pid_words = multi_->bitset_words();
  rule_pids_.resize(plans_.size());
  for (std::size_t i = 0; i < plans_.size(); ++i) {
    rule_pids_[i].assign(pid_words, 0);
    for (const TermPlan& t : plans_[i].terms) {
      if (t.field == 0) {
        match::bitset_set(rule_pids_[i].data(), t.pid);
      }
    }
  }
}

std::optional<TagResult> TagEngine::tag_line_scan(
    std::string_view line, match::MatchScratch& scratch,
    const std::uint64_t* candidates) const {
  const auto& rule_list = rules_.rules();
  for (std::size_t i = 0; i < rule_list.size(); ++i) {
    if (candidates != nullptr && !match::bitset_test(candidates, i)) continue;
    if (rule_list[i].predicate.matches(line, scratch)) {
      return TagResult{static_cast<std::uint16_t>(i), rule_list[i].type};
    }
  }
  return std::nullopt;
}

const std::uint64_t* TagEngine::candidate_set(match::MatchScratch& scratch,
                                              bool& any_candidate) const {
  match::CandidateCache& cache = scratch.candidate_cache;
  if (cache.owner != instance_id_) {
    cache.owner = instance_id_;
    cache.entries.clear();
    cache.next_evict = 0;
  }
  // Linear probe: the cache is a handful of entries and the keys are a
  // few words, so this is cheaper than any hashing on the hit path.
  for (const match::CandidateCache::Entry& e : cache.entries) {
    if (e.key == scratch.found) {
      any_candidate = e.any;
      return e.candidates.data();
    }
  }

  const std::size_t rule_words = (plans_.size() + 63) / 64;
  match::bitset_clear(scratch.candidates, rule_words);
  any_candidate = false;
  for (std::size_t i = 0; i < plans_.size(); ++i) {
    if (plans_[i].never) continue;
    const std::uint64_t* mask = lit_masks_.data() + i * lit_words_;
    bool candidate = true;
    for (std::size_t w = 0; w < lit_words_; ++w) {
      candidate &= (scratch.found[w] & mask[w]) == mask[w];
    }
    if (candidate) {
      match::bitset_set(scratch.candidates.data(), i);
      any_candidate = true;
    }
  }

  if (cache.entries.size() < match::CandidateCache::kSlots) {
    cache.entries.push_back(
        {scratch.found, scratch.candidates, any_candidate});
    return cache.entries.back().candidates.data();
  }
  // Round-robin overwrite into same-sized vectors: no allocation once
  // the cache is warm, whatever the working set of combinations.
  match::CandidateCache::Entry& e = cache.entries[cache.next_evict];
  cache.next_evict =
      (cache.next_evict + 1) % match::CandidateCache::kSlots;
  e.key = scratch.found;
  e.candidates = scratch.candidates;
  e.any = any_candidate;
  return e.candidates.data();
}

std::optional<TagResult> TagEngine::tag_line(
    std::string_view line, match::MatchScratch& scratch) const {
  ++scratch.tag_lines;
  if (mode_ == TagEngineMode::kNaive) {
    const auto r = tag_line_scan(line, scratch, nullptr);
    if (r) ++scratch.tag_hits;
    return r;
  }

  // 1. One Aho–Corasick pass over the line: which required literals
  //    occur? From that, which rules are still candidates? The scan
  //    sizes/zeroes the bitset and reports "found any" itself, so the
  //    chatter rejection costs no extra pass over the words.
  const std::uint64_t found_any =
      literals_->scan_fresh(line, scratch.found);
  // Typical chatter contains no required literal at all; unless some
  // rule is ungated (no provable literal), such a line is decided by
  // the scan alone.
  if (found_any == 0 && !has_ungated_rule_) {
    ++scratch.prefilter_rejects;
    return std::nullopt;
  }
  bool any_candidate = false;
  const std::uint64_t* candidates = candidate_set(scratch, any_candidate);
  if (!any_candidate) {
    ++scratch.prefilter_rejects;
    return std::nullopt;  // the chatter fast path
  }

  if (mode_ == TagEngineMode::kPrefilter) {
    const auto r = tag_line_scan(line, scratch, candidates);
    if (r) ++scratch.tag_hits;
    return r;
  }

  // 2. One set-matching pass decides every whole-line term of every
  //    candidate rule at once.
  match::bitset_clear(scratch.interesting, multi_->bitset_words());
  for (std::size_t i = 0; i < plans_.size(); ++i) {
    if (!match::bitset_test(candidates, i)) continue;
    const auto& mask = rule_pids_[i];
    for (std::size_t w = 0; w < mask.size(); ++w) {
      scratch.interesting[w] |= mask[w];
    }
  }
  multi_->match_all(line, scratch, scratch.interesting.data());

  // 3. First match wins, by rule index -- identical to the naive loop.
  bool fields_ready = false;
  for (std::size_t i = 0; i < plans_.size(); ++i) {
    if (!match::bitset_test(candidates, i)) continue;
    const RulePlan& plan = plans_[i];
    bool ok = true;
    for (const TermPlan& t : plan.terms) {
      bool hit;
      if (t.field == 0) {
        hit = match::bitset_test(scratch.matched.data(), t.pid);
      } else {
        if (!fields_ready) {
          util::split_fields(line, scratch.fields);
          fields_ready = true;
        }
        const auto idx = static_cast<std::size_t>(t.field - 1);
        // awk: a reference to a field beyond NF is the empty string.
        const std::string_view f = idx < scratch.fields.size()
                                       ? scratch.fields[idx]
                                       : std::string_view{};
        hit = t.re->search(f, scratch.pike);
      }
      if (t.negated) hit = !hit;
      if (!hit) {
        ok = false;
        break;
      }
    }
    if (ok) {
      ++scratch.tag_hits;
      return TagResult{static_cast<std::uint16_t>(i), plan.type};
    }
  }
  return std::nullopt;
}

std::optional<TagResult> TagEngine::tag_line(std::string_view line) const {
  return tag_line(line, thread_local_scratch());
}

std::optional<TagResult> TagEngine::tag(const parse::LogRecord& rec,
                                        match::MatchScratch& scratch) const {
  return tag_line(rec.raw, scratch);
}

std::optional<TagResult> TagEngine::tag(const parse::LogRecord& rec) const {
  return tag_line(rec.raw, thread_local_scratch());
}

}  // namespace wss::tag
