#include "tag/engine.hpp"

namespace wss::tag {

std::optional<TagResult> TagEngine::tag_line(std::string_view raw_line) const {
  const auto& rules = rules_.rules();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    if (rules[i].predicate.matches(raw_line)) {
      return TagResult{static_cast<std::uint16_t>(i), rules[i].type};
    }
  }
  return std::nullopt;
}

std::optional<TagResult> TagEngine::tag(const parse::LogRecord& rec) const {
  return tag_line(rec.raw);
}

}  // namespace wss::tag
