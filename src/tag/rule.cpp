#include "tag/rule.hpp"

#include <stdexcept>

namespace wss::tag {

RuleSet::RuleSet(parse::SystemId system, std::vector<Rule> rules)
    : system_(system), rules_(std::move(rules)) {
  if (rules_.size() > kMaxRules) {
    throw std::invalid_argument(
        "RuleSet: " + std::to_string(rules_.size()) +
        " rules exceed the tag engine's candidate-bitset capacity of " +
        std::to_string(kMaxRules) + " (kCandidateBitsetWords = " +
        std::to_string(kCandidateBitsetWords) +
        " x 64-bit words); raise tag::kCandidateBitsetWords in "
        "tag/rule.hpp to grow it");
  }
}

const std::string& RuleSet::category_name(std::uint16_t index) const {
  return rules_.at(index).category;
}

std::size_t RuleSet::index_of(std::string_view category) const {
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    if (rules_[i].category == category) return i;
  }
  return npos;
}

}  // namespace wss::tag
