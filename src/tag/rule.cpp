#include "tag/rule.hpp"

#include <stdexcept>

namespace wss::tag {

RuleSet::RuleSet(parse::SystemId system, std::vector<Rule> rules)
    : system_(system), rules_(std::move(rules)) {
  if (rules_.size() > 0xffff) {
    throw std::invalid_argument("RuleSet: too many rules for uint16 category");
  }
}

const std::string& RuleSet::category_name(std::uint16_t index) const {
  return rules_.at(index).category;
}

std::size_t RuleSet::index_of(std::string_view category) const {
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    if (rules_[i].category == category) return i;
  }
  return npos;
}

}  // namespace wss::tag
