#include "tag/rulesets.hpp"

#include <algorithm>
#include <stdexcept>

#include "match/pattern.hpp"

namespace wss::tag {

namespace {

using filter::AlertType;
using parse::Severity;
using parse::SystemId;

constexpr AlertType H = AlertType::kHardware;
constexpr AlertType S = AlertType::kSoftware;
constexpr AlertType I = AlertType::kIndeterminate;

/// The 31 minor BG/L alert categories the paper aggregates as
/// "I/31 Others" (41 categories total). Bodies are modelled on the
/// public BG/L RAS corpus; the paper's example for the aggregate row
/// is "machine check interrupt".
struct MinorBgl {
  const char* name;
  const char* facility;
  const char* body;
};

constexpr MinorBgl kBglMinors[31] = {
    {"MCHK", "KERNEL", "machine check interrupt"},
    {"ICPAR", "KERNEL", "instruction cache parity error corrected"},
    {"L3MAJ", "KERNEL", "L3 major internal error"},
    {"DDRSF", "MMCS", "ddr: excessive soft failures, consider replacing the card"},
    {"TORRZ", "KERNEL", "torus receiver z+ input pipe error"},
    {"FANSN", "MONITOR", "fan module serial number is not readable"},
    {"PWRFLT", "MONITOR", "power module status fault detected"},
    {"LNKPWR", "LINKCARD", "link card power module is not accessible"},
    {"BITSPR", "DISCOVERY", "MidplaneSwitchController performing bit sparing on wire"},
    {"IDOAST", "MMCS", "idoproxydb hit ASSERT condition"},
    {"FPDATA", "KERNEL", "program interrupt: fp data interrupt"},
    {"ICPREF", "KERNEL", "icache prefetch depth has invalid value"},
    {"DDRCOR", "KERNEL", "total of 1 ddr error(s) detected and corrected"},
    {"CAPADR", "KERNEL", "capture first error address"},
    {"MEMADR", "KERNEL", "memory manager address error"},
    {"TREERX", "KERNEL", "tree receiver 0 in resynch mode"},
    {"L3UNC", "KERNEL", "excessive uncorrectable L3 errors"},
    {"NCTEMP", "MONITOR", "NodeCard temperature sensor over threshold"},
    {"CLKOUT", "MONITOR", "clock card output failure"},
    {"SVCFAN", "MONITOR", "service card fan speed low"},
    {"CIODBX", "MASTER", "BGLMASTER FAILURE ciodb exited abnormally"},
    {"MMCSDB", "MMCS", "mmcs_db_server terminated unexpectedly"},
    {"ASMINF", "DISCOVERY", "cannot get assembly information for node card"},
    {"TORUNC", "KERNEL", "uncorrectable torus error count exceeded"},
    {"PARRDQ", "KERNEL", "parity error in read queue"},
    {"NAMRES", "MMCS", "Temporary failure in name resolution"},
    {"AUXPWR", "MONITOR", "auxiliary power supply voltage out of range"},
    {"WIRETF", "DISCOVERY", "wire test failure on link"},
    {"EXTTOR", "KERNEL", "external input interrupt: uncorrectable torus error"},
    {"KPANIC", "KERNEL", "kernel panic"},
    {"RTSINT", "KERNEL", "rts internal error"},
};

std::vector<CategoryInfo> build_table() {
  std::vector<CategoryInfo> t;

  // ----------------------------------------------------------------
  // Blue Gene/L (Table 4: 348,460 raw / 1202 filtered, 41 categories).
  // All alerts on BG/L are FATAL except 62 FAILURE ones (Table 5); we
  // attribute the FAILURE minority to APPSEV.
  // ----------------------------------------------------------------
  const SystemId B = SystemId::kBlueGeneL;
  const LogPath BP = LogPath::kBglRas;
  const Severity FTL = Severity::kFatal;
  t.push_back({B, "KERNDTLB", H, "data TLB error interrupt", 0, "", "KERNEL",
               "data TLB error interrupt", BP, FTL, 152734, 37,
               Severity::kNone, 0});
  t.push_back({B, "KERNSTOR", H, "data storage interrupt", 0, "", "KERNEL",
               "data storage interrupt", BP, FTL, 63491, 8, Severity::kNone,
               0});
  t.push_back({B, "APPSEV", S,
               "Error reading message prefix after LOGIN_MESSAGE", 0, "",
               "APP",
               "ciod: Error reading message prefix after LOGIN_MESSAGE on "
               "CioStream socket to {ip}:{n}",
               BP, FTL, 49651, 138, Severity::kFailure, 62});
  t.push_back({B, "KERNMNTF", S, "Lustre mount FAILED", 0, "", "KERNEL",
               "Lustre mount FAILED : bglio{n} : block_id : location", BP,
               FTL, 31531, 105, Severity::kNone, 0});
  t.push_back({B, "KERNTERM", S, "rts: kernel terminated for reason", 0, "",
               "KERNEL",
               "rts: kernel terminated for reason 1004rts: bad message "
               "header: invalid type {n}",
               BP, FTL, 23338, 99, Severity::kNone, 0});
  t.push_back({B, "KERNREC", S, "Error receiving packet on tree network", 0,
               "", "KERNEL",
               "Error receiving packet on tree network, expecting type 57 "
               "instead of type {n}",
               BP, FTL, 6145, 9, Severity::kNone, 0});
  t.push_back({B, "APPREAD", S,
               "failed to read message prefix on control stream", 0, "",
               "APP",
               "ciod: failed to read message prefix on control stream "
               "CioStream socket to {ip}:{n}",
               BP, FTL, 5983, 11, Severity::kNone, 0});
  t.push_back({B, "KERNRTSP", S, "rts panic! - stopping execution", 0, "",
               "KERNEL", "rts panic! - stopping execution", BP, FTL, 3983,
               260, Severity::kNone, 0});
  t.push_back({B, "APPRES", S,
               "Error reading message prefix after LOAD_MESSAGE", 0, "",
               "APP",
               "ciod: Error reading message prefix after LOAD_MESSAGE on "
               "CioStream socket to {ip}:{n}",
               BP, FTL, 2370, 13, Severity::kNone, 0});
  t.push_back({B, "APPUNAV", I, "Error creating node map from file", 0, "",
               "APP",
               "ciod: Error creating node map from file {path}: No child "
               "processes",
               BP, FTL, 2048, 3, Severity::kNone, 0});
  {
    // The paper aggregates the remaining 31 categories: 7186 raw / 519
    // filtered in total. Apportion both deterministically.
    const auto raws = apportion(7186, 31);
    const auto filts = apportion(519, 31);
    for (std::size_t i = 0; i < 31; ++i) {
      const MinorBgl& m = kBglMinors[i];
      // Bodies double as patterns for the minors; escape metacharacters
      // ("error(s)", "z+") so the pattern matches the body literally.
      CategoryInfo c{B,  m.name, I,  match::escape_literal(m.body),
                     0,  "",     m.facility, m.body,
                     BP, FTL,    raws[i],    std::min(filts[i], raws[i]),
                     Severity::kNone, 0};
      if (std::string_view(m.name) == "KPANIC") {
        // The paper's example awk rule: ($5 ~ /KERNEL/ && /kernel panic/).
        // In our rendered field layout the facility is field 7.
        c.field = 7;
        c.field_pattern = "KERNEL";
      }
      t.push_back(c);
    }
  }

  // ----------------------------------------------------------------
  // Thunderbird (3,248,239 raw / 2088 filtered, 10 categories).
  // Thunderbird syslog does not record severity (Section 3.2).
  // ----------------------------------------------------------------
  const SystemId T = SystemId::kThunderbird;
  const LogPath SY = LogPath::kSyslog;
  const Severity NO = Severity::kNone;
  t.push_back({T, "VAPI", I, "Local Catastrophic Error", 0, "", "kernel",
               "[KERNEL_IB][ib_sm_sweep.c:{n}]Fatal error (Local "
               "Catastrophic Error)",
               SY, NO, 3229194, 276, NO, 0});
  t.push_back({T, "PBS_CON", S,
               "Connection refused \\(111\\) in open_demux", 0, "", "pbs_mom",
               "Connection refused (111) in open_demux, open_demux: cannot "
               "connect to {ip}:{n}",
               SY, NO, 5318, 16, NO, 0});
  t.push_back({T, "MPT", I, "mptscsih: ioc0: attempting task abort", 0, "",
               "kernel", "mptscsih: ioc0: attempting task abort! (sc={hex})",
               SY, NO, 4583, 157, NO, 0});
  t.push_back({T, "EXT_FS", H, "EXT3-fs error", 0, "", "kernel",
               "EXT3-fs error (device sda5): ext3_journal_start_sb: "
               "Detected aborted journal",
               SY, NO, 4022, 778, NO, 0});
  t.push_back({T, "CPU", S, "Losing some ticks", 0, "", "kernel",
               "Losing some ticks checking if CPU frequency changed.", SY,
               NO, 2741, 367, NO, 0});
  t.push_back({T, "SCSI", H, "rejecting I/O to offline device", 0, "",
               "kernel", "scsi0 (0:0): rejecting I/O to offline device", SY,
               NO, 2186, 317, NO, 0});
  t.push_back({T, "ECC", H, "EventID: 1404", 0, "", "",
               "Server Administrator: Instrumentation Service EventID: 1404 "
               "Memory device status is critical. Memory device location: "
               "DIMM{n}_A",
               SY, NO, 146, 143, NO, 0});
  t.push_back({T, "PBS_BFD", S,
               "Bad file descriptor \\(9\\) in tm_request", 0, "", "pbs_mom",
               "Bad file descriptor (9) in tm_request, job {n}.tbird-sm1 "
               "not running",
               SY, NO, 28, 28, NO, 0});
  t.push_back({T, "CHK_DSK", H, "Fault Status assert", 0, "", "check-disks",
               "[{node}:{time}], Fault Status assert asserted", SY, NO, 13,
               2, NO, 0});
  t.push_back({T, "NMI", I, "NMI received\\. Dazed and confused", 0, "",
               "kernel",
               "Uhhuh. NMI received. Dazed and confused, but trying to "
               "continue",
               SY, NO, 8, 4, NO, 0});

  // ----------------------------------------------------------------
  // Red Storm (1,665,744 raw / 1430 filtered, 12 categories).
  // The CMD_ABORT raw count is blank in Table 4; the residual against
  // the Table 2 system total is 1686, which also makes the Table 3
  // hardware raw total (174,586,516) match exactly.
  // Severity assignments reconstruct Table 6: BUS_PAR=CRIT;
  // PTL_EXP+PTL_ERR+RBB+OST=11,784=ERR; EW+WT=270=WARNING;
  // ADDR_ERR+CMD_ABORT~INFO; DSK_FAIL~ALERT; ec_* events have none.
  // ----------------------------------------------------------------
  const SystemId R = SystemId::kRedStorm;
  t.push_back({R, "BUS_PAR", H, "bus parity error", 0, "", "",
               "DMT_HINT Warning: Verify Host {n} bus parity error: 0200 "
               "Tier:{n} LUN:{n}",
               LogPath::kRsDdn, Severity::kCrit, 1550217, 5, NO, 0});
  t.push_back({R, "HBEAT", I, "heartbeat_fault", 0, "", "ec_heartbeat_stop",
               "warn node heartbeat_fault {n}", LogPath::kRsEventRouter, NO,
               94784, 266, NO, 0});
  t.push_back({R, "PTL_EXP", I, "timeout \\(sent at", 0, "", "kernel",
               "LustreError: {n}:{n}:(events.c:{n}:client_bulk_callback()) "
               "@@@ timeout (sent at {time}, 300s ago) req@{hex}",
               LogPath::kRsSyslog, Severity::kError, 11047, 421, NO, 0});
  t.push_back({R, "ADDR_ERR", H, "DMT_102 Address error", 0, "", "",
               "DMT_102 Address error LUN:0 command:28 address:f000000 "
               "length:1 Anonymous host",
               LogPath::kRsDdn, Severity::kInfo, 6763, 1, NO, 0});
  t.push_back({R, "CMD_ABORT", H, "DMT_310 Command Aborted", 0, "", "",
               "DMT_310 Command Aborted: SCSI cmd:2A LUN 2 DMT_310 Lane:{n} "
               "T:{n} a:{hex}",
               LogPath::kRsDdn, Severity::kInfo, 1686, 497, NO, 0});
  t.push_back({R, "PTL_ERR", I, "type == PTL_RPC_MSG_ERR", 0, "", "kernel",
               "LustreError: {n}:{n}:(client.c:{n}:ptlrpc_check_status()) "
               "@@@ type == PTL_RPC_MSG_ERR, err == -{n}",
               LogPath::kRsSyslog, Severity::kError, 631, 54, NO, 0});
  t.push_back({R, "TOAST", I, "PANIC_SP WE ARE TOASTED", 0, "",
               "ec_console_log", "PANIC_SP WE ARE TOASTED!",
               LogPath::kRsEventRouter, NO, 186, 9, NO, 0});
  t.push_back({R, "EW", I, "Expired watchdog for pid", 0, "", "kernel",
               "Lustre: {n}:{n}:(watchdog.c:{n}:lcw_update_time()) Expired "
               "watchdog for pid {n} disabled after {n}s",
               LogPath::kRsSyslog, Severity::kWarning, 163, 58, NO, 0});
  t.push_back({R, "WT", I, "Watchdog triggered for pid", 0, "", "kernel",
               "Lustre: {n}:{n}:(watchdog.c:{n}:lcw_cb()) Watchdog triggered "
               "for pid {n}: it was inactive for {n}ms",
               LogPath::kRsSyslog, Severity::kWarning, 107, 45, NO, 0});
  t.push_back({R, "RBB", I, "request buffers busy", 0, "", "kernel",
               "LustreError: {n}:{n}:(niobuf.c:{n}:ptlrpc_register_bulk()) "
               "All mds cray_kern_nal request buffers busy (0us idle)",
               LogPath::kRsSyslog, Severity::kError, 105, 19, NO, 0});
  t.push_back({R, "DSK_FAIL", H, "DMT_DINT Failing Disk", 0, "", "",
               "DMT_DINT Failing Disk {n}A", LogPath::kRsDdn,
               Severity::kAlert, 54, 54, NO, 0});
  t.push_back({R, "OST", I, "Failure to commit OST transaction", 0, "",
               "kernel",
               "LustreError: {n}:{n}:(filter.c:{n}:filter_commitrw_write()) "
               "Failure to commit OST transaction (-5)?",
               LogPath::kRsSyslog, Severity::kError, 1, 1, NO, 0});

  // ----------------------------------------------------------------
  // Spirit (172,816,563 raw / 4875 filtered, 8 categories).
  // Per-category counts are as printed in Table 4; they sum to one
  // less than the paper's stated system total 172,816,564 (see
  // EXPERIMENTS.md). Spirit syslog records no severity.
  // ----------------------------------------------------------------
  const SystemId P = SystemId::kSpirit;
  t.push_back({P, "EXT_CCISS", H, "has CHECK CONDITION", 0, "", "kernel",
               "cciss: cmd {hex} has CHECK CONDITION, sense key = 0x3", SY,
               NO, 103818910, 29, NO, 0});
  t.push_back({P, "EXT_FS", H, "EXT3-fs error", 0, "", "kernel",
               "EXT3-fs error (device cciss/c0d0p{n}) in "
               "ext3_reserve_inode_write: IO failure",
               SY, NO, 68986084, 14, NO, 0});
  t.push_back({P, "PBS_CHK", S, "task_check, cannot tm_reply", 0, "",
               "pbs_mom", "task_check, cannot tm_reply to {n}.sadmin1 task 1",
               SY, NO, 8388, 4119, NO, 0});
  t.push_back({P, "GM_LANAI", S, "LANai is not running", 0, "", "kernel",
               "GM: LANai is not running. Allowing port=0 open for "
               "debugging",
               SY, NO, 1256, 117, NO, 0});
  t.push_back({P, "PBS_CON", S,
               "Connection refused \\(111\\) in open_demux", 0, "", "pbs_mom",
               "Connection refused (111) in open_demux, open_demux: connect "
               "{ip}:{n}",
               SY, NO, 817, 25, NO, 0});
  t.push_back({P, "GM_MAP", S, "assertion failed\\. .*lx_mapper\\.c", 0, "",
               "gm_mapper",
               "assertion failed. /usr/src/gm/libgm/lx_mapper.c:2112 "
               "(m->root)",
               SY, NO, 596, 180, NO, 0});
  t.push_back({P, "PBS_BFD", S,
               "Bad file descriptor \\(9\\) in tm_request", 0, "", "pbs_mom",
               "Bad file descriptor (9) in tm_request, job {n}.sadmin1 not "
               "running",
               SY, NO, 346, 296, NO, 0});
  t.push_back({P, "GM_PAR", H, "SRAM parity error", 0, "", "kernel",
               "GM: The NIC ISR is reporting an SRAM parity error.", SY, NO,
               166, 95, NO, 0});

  // ----------------------------------------------------------------
  // Liberty (2452 raw / 1050 filtered, 6 categories). No severity.
  // ----------------------------------------------------------------
  const SystemId L = SystemId::kLiberty;
  t.push_back({L, "PBS_CHK", S, "task_check, cannot tm_reply", 0, "",
               "pbs_mom", "task_check, cannot tm_reply to {n}.ladmin1 task 1",
               SY, NO, 2231, 920, NO, 0});
  t.push_back({L, "PBS_BFD", S,
               "Bad file descriptor \\(9\\) in tm_request", 0, "", "pbs_mom",
               "Bad file descriptor (9) in tm_request, job {n}.ladmin1 not "
               "running",
               SY, NO, 115, 94, NO, 0});
  t.push_back({L, "PBS_CON", S,
               "Connection refused \\(111\\) in open_demux", 0, "", "pbs_mom",
               "Connection refused (111) in open_demux, open_demux: connect "
               "{ip}:{n}",
               SY, NO, 47, 5, NO, 0});
  t.push_back({L, "GM_PAR", H, "gm_parity\\.c:.*parity_int", 0, "", "kernel",
               "GM: LANAI[0]: PANIC: /usr/src/gm/firmware/gm_parity.c:115:"
               "parity_int():firmware",
               SY, NO, 44, 19, NO, 0});
  t.push_back({L, "GM_LANAI", S, "LANai is not running", 0, "", "kernel",
               "GM: LANai is not running. Allowing port=0 open for "
               "debugging",
               SY, NO, 13, 10, NO, 0});
  t.push_back({L, "GM_MAP", S, "assertion failed\\. .*mi\\.c", 0, "",
               "gm_mapper",
               "assertion failed. /usr/src/gm/mapper/mi.c:541 (r == "
               "GM_SUCCESS)",
               SY, NO, 2, 2, NO, 0});

  return t;
}

}  // namespace

std::vector<std::uint64_t> apportion(std::uint64_t total, std::size_t n) {
  if (n == 0) return {};
  // Weights 1/(i+2): decreasing, long-tailed, deterministic.
  std::vector<double> w(n);
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = 1.0 / static_cast<double>(i + 2);
    sum += w[i];
  }
  std::vector<std::uint64_t> out(n, 0);
  std::vector<std::pair<double, std::size_t>> rema(n);
  std::uint64_t assigned = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double exact = static_cast<double>(total) * w[i] / sum;
    out[i] = static_cast<std::uint64_t>(exact);
    rema[i] = {exact - static_cast<double>(out[i]), i};
    assigned += out[i];
  }
  std::sort(rema.begin(), rema.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (std::size_t k = 0; assigned < total && k < n; ++k) {
    ++out[rema[k].second];
    ++assigned;
  }
  // Guarantee every share >= 1 when feasible, stealing from the head.
  if (total >= n) {
    for (std::size_t i = 0; i < n; ++i) {
      if (out[i] == 0) {
        std::size_t donor = 0;
        for (std::size_t j = 0; j < n; ++j) {
          if (out[j] > out[donor]) donor = j;
        }
        --out[donor];
        ++out[i];
      }
    }
  }
  return out;
}

const std::vector<CategoryInfo>& category_table() {
  static const std::vector<CategoryInfo> table = build_table();
  return table;
}

std::vector<const CategoryInfo*> categories_of(parse::SystemId system) {
  std::vector<const CategoryInfo*> out;
  for (const CategoryInfo& c : category_table()) {
    if (c.system == system) out.push_back(&c);
  }
  return out;
}

const CategoryInfo* find_category(parse::SystemId system,
                                  std::string_view name) {
  for (const CategoryInfo& c : category_table()) {
    if (c.system == system && name == c.name) return &c;
  }
  return nullptr;
}

RuleSet build_ruleset(parse::SystemId system) {
  std::vector<Rule> rules;
  for (const CategoryInfo* c : categories_of(system)) {
    Rule r;
    r.category = c->name;
    r.type = c->type;
    r.predicate.add_term(0, c->pattern);
    if (c->field != 0) {
      r.predicate.add_term(c->field, c->field_pattern);
    }
    rules.push_back(std::move(r));
  }
  return RuleSet(system, std::move(rules));
}

}  // namespace wss::tag
