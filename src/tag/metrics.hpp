// Delta-flusher from MatchScratch tag tallies to the obs registry.
//
// The tag miss path runs at tens of millions of lines per second; a
// striped-atomic counter add per line would cost a measurable slice of
// that (the obs overhead budget is <2% on the perf_tagging miss path).
// So TagEngine::tag_line maintains plain per-scratch tallies, and the
// owner of each scratch (serial pipeline, parallel worker, stream
// engine, cmd_analyze) pairs it with one TagMetricsFlusher, calling
// flush() at chunk boundaries and at end of pass. flush() publishes
// only the delta since the previous flush, so it is idempotent and
// safe to call at any cadence -- totals depend only on the lines
// tagged, never on when or how often flushes happened.
#pragma once

#include <cstdint>

#include "match/scratch.hpp"
#include "obs/metrics.hpp"

namespace wss::tag {

class TagMetricsFlusher {
 public:
  TagMetricsFlusher();

  /// Publishes scratch-tally growth since the last flush to the
  /// wss_tag_* counters. O(6 counter adds); call per chunk, not per
  /// line. Allocation-free (handles are bound at construction).
  void flush(const match::MatchScratch& s);

  /// Re-bases the flusher on a scratch's current tallies WITHOUT
  /// publishing them -- used after checkpoint restore, where the
  /// restored registry already contains everything the scratch saw.
  void rebase(const match::MatchScratch& s);

 private:
  obs::Counter* lines_;
  obs::Counter* hits_;
  obs::Counter* prefilter_rejects_;
  obs::Counter* dfa_scans_;
  obs::Counter* pike_fallbacks_;
  obs::Counter* dfa_flushes_;

  std::uint64_t last_lines_ = 0;
  std::uint64_t last_hits_ = 0;
  std::uint64_t last_prefilter_rejects_ = 0;
  std::uint64_t last_dfa_scans_ = 0;
  std::uint64_t last_pike_fallbacks_ = 0;
  std::uint64_t last_dfa_flushes_ = 0;
};

}  // namespace wss::tag
