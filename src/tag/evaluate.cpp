#include "tag/evaluate.hpp"

#include "util/strings.hpp"

namespace wss::tag {

void TaggerEvaluation::add(bool predicted_alert, bool actual_alert,
                           std::uint64_t n) {
  if (predicted_alert && actual_alert) {
    true_positives += n;
  } else if (predicted_alert && !actual_alert) {
    false_positives += n;
  } else if (!predicted_alert && actual_alert) {
    false_negatives += n;
  } else {
    true_negatives += n;
  }
}

double TaggerEvaluation::false_positive_rate() const {
  const std::uint64_t denom = true_positives + false_positives;
  return denom == 0 ? 0.0
                    : static_cast<double>(false_positives) /
                          static_cast<double>(denom);
}

double TaggerEvaluation::false_negative_rate() const {
  const std::uint64_t denom = true_positives + false_negatives;
  return denom == 0 ? 0.0
                    : static_cast<double>(false_negatives) /
                          static_cast<double>(denom);
}

double TaggerEvaluation::precision() const {
  return 1.0 - false_positive_rate();
}

double TaggerEvaluation::recall() const {
  return 1.0 - false_negative_rate();
}

std::string TaggerEvaluation::describe() const {
  return util::format(
      "TP=%llu FP=%llu TN=%llu FN=%llu (FP rate %.2f%%, FN rate %.2f%%)",
      static_cast<unsigned long long>(true_positives),
      static_cast<unsigned long long>(false_positives),
      static_cast<unsigned long long>(true_negatives),
      static_cast<unsigned long long>(false_negatives),
      100.0 * false_positive_rate(), 100.0 * false_negative_rate());
}

}  // namespace wss::tag
