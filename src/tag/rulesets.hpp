// The expert-rule catalog for all five systems -- Table 4 of the paper
// turned into data.
//
// Every alert category the paper reports is described here once:
// its tagging rule (regex / awk field predicate), its H/S/I type, the
// message body shape (used by the simulator's renderers), the log path
// it arrives on, the severity that path records for it, and the
// paper's raw and filtered counts (the calibration targets).
//
// Rule <-> renderer consistency is by construction: the simulator
// renders bodies from `body_template`, and `pattern` matches every
// expansion of that template (placeholders only stand for text the
// pattern does not constrain). tests/test_tag_roundtrip.cpp verifies
// this property for every category.
#pragma once

#include <cstdint>
#include <vector>

#include "parse/record.hpp"
#include "tag/rule.hpp"

namespace wss::tag {

/// Which collection path (Section 3.1) carries a message.
enum class LogPath : std::uint8_t {
  kSyslog,          ///< syslog-ng UDP path (Thunderbird, Spirit, Liberty)
  kBglRas,          ///< BG/L MMCS -> DB2 RAS database
  kRsSyslog,        ///< Red Storm Linux-node syslog (stores severity)
  kRsDdn,           ///< Red Storm DDN disk subsystem (via syslog-ng)
  kRsEventRouter,   ///< Red Storm RAS network -> SMW over TCP (no severity)
};

/// One alert category: tagging rule + rendering shape + paper counts.
struct CategoryInfo {
  parse::SystemId system;
  std::string name;                ///< Table 4 category, e.g. "KERNDTLB"
  filter::AlertType type;          ///< H / S / I
  std::string pattern;             ///< regex on the raw line
  int field = 0;                   ///< if nonzero: awk-style extra term
  std::string field_pattern;       ///< pattern for that field
  std::string program;             ///< syslog tag / BG/L facility / event class
  std::string body_template;       ///< renderer template ({n},{ip},{hex},...)
  LogPath path = LogPath::kSyslog;
  parse::Severity severity = parse::Severity::kNone;
  std::uint64_t raw_count = 0;     ///< Table 4 "Raw"
  std::uint64_t filtered_count = 0;///< Table 4 "Filtered"
  /// Minority severity: `alt_count` of the raw events carry
  /// `alt_severity` instead (BG/L's 62 FAILURE alerts, Table 5).
  parse::Severity alt_severity = parse::Severity::kNone;
  std::uint64_t alt_count = 0;
};

/// The full catalog, all systems, in Table 4 order. Built once.
const std::vector<CategoryInfo>& category_table();

/// The categories of one system, in rule order (= alert category ids).
std::vector<const CategoryInfo*> categories_of(parse::SystemId system);

/// Finds a category by name within a system; nullptr if absent.
const CategoryInfo* find_category(parse::SystemId system,
                                  std::string_view name);

/// Builds the RuleSet for a system from the catalog. Rule index i
/// corresponds to categories_of(system)[i].
RuleSet build_ruleset(parse::SystemId system);

/// Splits `total` across weights 1/(i+2) by largest remainder; sums
/// exactly to `total`, every share >= 1 where total >= weights.size().
/// Used to apportion the paper's "31 Others" BG/L aggregate.
std::vector<std::uint64_t> apportion(std::uint64_t total, std::size_t n);

}  // namespace wss::tag
