// Alert-identification rules (the paper's expert heuristics).
//
// "The heuristics provided by the administrators were often in the
// form of regular expressions amenable for consumption by the
// logsurfer utility. We performed the tagging through a combination of
// regular expression matching and manual intervention." (Section 3.2)
// A Rule couples one such heuristic with the category name and the
// H/S/I type the administrators assigned.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "filter/alert.hpp"
#include "match/field.hpp"
#include "parse/record.hpp"

namespace wss::tag {

/// One expert tagging rule. Two alerts are in the same category iff
/// they were tagged by the same rule (Section 3.3).
struct Rule {
  std::string category;             ///< e.g. "KERNDTLB", "VAPI"
  filter::AlertType type = filter::AlertType::kIndeterminate;
  match::LinePredicate predicate;   ///< evaluated on the raw line
};

/// Candidate-rule bitsets in the tag engine are sized in
/// std::uint64_t words; this is the word count, and 64x it is the
/// hard cap on rules per set (enforced by the RuleSet constructor).
/// The largest real catalog (BG/L) has 41 rules, so 16 words = 1024
/// rules leaves an order of magnitude of headroom.
inline constexpr std::size_t kCandidateBitsetWords = 16;
inline constexpr std::size_t kMaxRules = kCandidateBitsetWords * 64;

/// The ordered rule list for one system; first match wins.
class RuleSet {
 public:
  RuleSet(parse::SystemId system, std::vector<Rule> rules);

  parse::SystemId system() const { return system_; }
  const std::vector<Rule>& rules() const { return rules_; }
  std::size_t size() const { return rules_.size(); }

  /// Category name for a rule index (the index doubles as the numeric
  /// alert category used by the filters).
  const std::string& category_name(std::uint16_t index) const;

  /// Index of the rule with the given category name, or npos.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t index_of(std::string_view category) const;

 private:
  parse::SystemId system_;
  std::vector<Rule> rules_;
};

}  // namespace wss::tag
