// The severity-field baseline tagger that the paper refutes.
//
// Earlier BG/L studies [Liang et al.] "identified alerts according to
// the severity field of messages". Table 5 shows why that is unsound:
// tagging FATAL/FAILURE messages as alerts on BG/L yields a 59.34%
// false positive rate (0% false negatives); Table 6 shows syslog
// severity on Red Storm is no better. This tagger implements the
// baseline so benches/tests can reproduce those exact numbers.
#pragma once

#include <vector>

#include "parse/record.hpp"

namespace wss::tag {

/// Tags a record as an alert iff its severity is in the given set.
class SeverityTagger {
 public:
  explicit SeverityTagger(std::vector<parse::Severity> alert_severities)
      : severities_(std::move(alert_severities)) {}

  /// The BG/L baseline from Section 3.2: FATAL or FAILURE.
  static SeverityTagger bgl_fatal_failure() {
    return SeverityTagger({parse::Severity::kFatal, parse::Severity::kFailure});
  }

  bool is_alert(const parse::LogRecord& rec) const {
    for (const auto s : severities_) {
      if (rec.severity == s) return true;
    }
    return false;
  }

 private:
  std::vector<parse::Severity> severities_;
};

}  // namespace wss::tag
