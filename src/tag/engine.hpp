// The tagging engine: runs a RuleSet over log records.
//
// This is the automated stand-in for the paper's "combination of
// regular expression matching and manual intervention". Each rule's
// compiled regex carries a required-literal pre-filter (see
// match::Regex::prefilter_literal), so the common case -- a chatter
// line matching no rule -- costs a handful of substring probes rather
// than full NFA runs. bench/perf_tagging.cpp measures that choice.
#pragma once

#include <optional>
#include <utility>
#include <string_view>

#include "parse/record.hpp"
#include "tag/rule.hpp"

namespace wss::tag {

/// Result of tagging one record.
struct TagResult {
  std::uint16_t category = 0;  ///< rule index within the RuleSet
  filter::AlertType type = filter::AlertType::kIndeterminate;
};

/// Immutable matcher over one system's RuleSet. Owns its rules (so a
/// temporary RuleSet may be passed safely); thread-compatible: tag()
/// is const and carries no mutable state.
class TagEngine {
 public:
  explicit TagEngine(RuleSet rules) : rules_(std::move(rules)) {}

  /// Tags a raw line; nullopt when no rule matches (a non-alert).
  /// First matching rule wins, matching the paper's "two alerts are in
  /// the same category if they were tagged by the same expert rule".
  std::optional<TagResult> tag_line(std::string_view raw_line) const;

  /// Convenience overload on a parsed record (matches on record.raw).
  std::optional<TagResult> tag(const parse::LogRecord& rec) const;

  const RuleSet& rules() const { return rules_; }

 private:
  RuleSet rules_;
};

}  // namespace wss::tag
