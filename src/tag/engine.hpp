// The tagging engine: runs a RuleSet over log records.
//
// This is the automated stand-in for the paper's "combination of
// regular expression matching and manual intervention" -- and the
// throughput wall of the whole study: the expert rules are applied to
// ~0.97 billion messages, so the engine matches *all* rules in one
// pass over the line instead of probing them one by one:
//
//   1. An Aho–Corasick scan over every rule's required literals
//      (match::LiteralScanner) yields the candidate-rule set; a rule
//      whose required literal is absent cannot match, and a chatter
//      line typically empties the whole set right here.
//   2. Surviving lines run ONE lazy-DFA pass of the combined automaton
//      of all whole-line rule predicates (match::MultiRegex), which
//      decides every candidate term at once.
//   3. Rules are resolved lowest-index-first (first match wins), with
//      awk-style field terms evaluated directly on the rare candidate.
//
// Decisions are bit-identical to the naive per-rule loop at every
// step -- the prefilter is a necessary-condition filter and the DFA is
// exactly equivalent to the Pike VM -- which the golden suite and
// tests/test_match_multiregex_fuzz.cpp enforce. The naive and
// prefilter-only engines are kept behind TagEngineMode (env
// WSS_TAG_ENGINE=naive|prefilter|multi) for the ablation bench,
// bench/perf_tagging.cpp.
#pragma once

#include <memory>
#include <optional>
#include <string_view>
#include <utility>
#include <vector>

#include "match/literal_scanner.hpp"
#include "match/multiregex.hpp"
#include "match/scratch.hpp"
#include "parse/record.hpp"
#include "tag/rule.hpp"

namespace wss::tag {

/// Result of tagging one record.
struct TagResult {
  std::uint16_t category = 0;  ///< rule index within the RuleSet
  filter::AlertType type = filter::AlertType::kIndeterminate;
};

/// Which matching strategy the engine uses. All three make identical
/// decisions; they exist so the ablation bench can price each layer.
enum class TagEngineMode : std::uint8_t {
  kNaive,      ///< per-rule Pike-VM probes (the pre-set-matching path)
  kPrefilter,  ///< Aho–Corasick candidates, then per-rule Pike probes
  kMulti,      ///< candidates + one lazy-DFA set-matching pass (default)
};

/// Immutable matcher over one system's RuleSet. Owns its rules (so a
/// temporary RuleSet may be passed safely); thread-compatible: tag()
/// is const and all per-line mutable state lives in the caller's
/// match::MatchScratch (the scratch-less overloads use a thread_local
/// one).
class TagEngine {
 public:
  explicit TagEngine(RuleSet rules)
      : TagEngine(std::move(rules), mode_from_env()) {}
  TagEngine(RuleSet rules, TagEngineMode mode);

  /// Tags a raw line; nullopt when no rule matches (a non-alert).
  /// First matching rule wins, matching the paper's "two alerts are in
  /// the same category if they were tagged by the same expert rule".
  std::optional<TagResult> tag_line(std::string_view raw_line,
                                    match::MatchScratch& scratch) const;
  std::optional<TagResult> tag_line(std::string_view raw_line) const;

  /// Convenience overloads on a parsed record (match on record.raw).
  std::optional<TagResult> tag(const parse::LogRecord& rec,
                               match::MatchScratch& scratch) const;
  std::optional<TagResult> tag(const parse::LogRecord& rec) const;

  const RuleSet& rules() const { return rules_; }
  TagEngineMode mode() const { return mode_; }

  /// Resolves WSS_TAG_ENGINE (naive | prefilter | multi); unset or
  /// unrecognized values mean kMulti. The escape hatch exists for the
  /// ablation bench and for bisecting perf regressions in production.
  static TagEngineMode mode_from_env();

  // ---- Diagnostics (tests and the bench) ----
  const match::LiteralScanner& literal_scanner() const { return *literals_; }
  const match::MultiRegex& multi() const { return *multi_; }

 private:
  /// One rule term, pre-resolved for the hot path.
  struct TermPlan {
    std::uint32_t pid = 0;  ///< pattern id in multi_ (field == 0 terms)
    std::int32_t field = 0;
    bool negated = false;
    const match::Regex* re = nullptr;
  };
  struct RulePlan {
    std::vector<std::uint16_t> lits;  ///< literal ids that must all occur
    std::vector<TermPlan> terms;
    filter::AlertType type = filter::AlertType::kIndeterminate;
    bool never = false;  ///< empty predicate: matches nothing
  };

  /// Per-rule Pike-VM loop, optionally restricted to a candidate
  /// bitset (the naive and prefilter modes).
  std::optional<TagResult> tag_line_scan(std::string_view line,
                                         match::MatchScratch& scratch,
                                         const std::uint64_t* candidates) const;

  /// Computes (or fetches from the scratch's CandidateCache) the
  /// candidate-rule bitset for the current literal-found bitset.
  /// Returns a pointer valid until the scratch's next tag_line call;
  /// `any_candidate` reports whether the set is non-empty.
  const std::uint64_t* candidate_set(match::MatchScratch& scratch,
                                     bool& any_candidate) const;

  RuleSet rules_;
  TagEngineMode mode_;
  /// Unique per-engine id guarding scratch-resident caches (the
  /// dfa_owner pattern; an address could be reused after destruction).
  std::uint64_t instance_id_ = 0;
  std::vector<RulePlan> plans_;
  /// True if some rule has no provable literal (it is always a
  /// candidate, so a literal-free line cannot be rejected early).
  bool has_ungated_rule_ = false;
  /// Rule i's required-literal bitset, flattened at
  /// lit_masks_[i * lit_words_ ..): candidate iff found ⊇ mask.
  std::vector<std::uint64_t> lit_masks_;
  std::size_t lit_words_ = 0;
  /// Per-rule mask over multi_ pattern ids (the "interesting" set fed
  /// to the DFA for early exit).
  std::vector<std::vector<std::uint64_t>> rule_pids_;
  std::unique_ptr<match::LiteralScanner> literals_;
  std::unique_ptr<match::MultiRegex> multi_;
};

}  // namespace wss::tag
