// Tagger evaluation against ground truth.
//
// "If we had used the severity field instead of the expert rules to
// tag alerts on BG/L ... we would have a false negative rate of 0% but
// a false positive rate of 59.34%." (Section 3.2) This header computes
// those rates for any predicted/actual alert labeling.
#pragma once

#include <cstdint>
#include <string>

namespace wss::tag {

/// Confusion counts for a binary alert/non-alert labeling.
struct TaggerEvaluation {
  std::uint64_t true_positives = 0;   ///< predicted alert, is alert
  std::uint64_t false_positives = 0;  ///< predicted alert, not alert
  std::uint64_t true_negatives = 0;
  std::uint64_t false_negatives = 0;  ///< missed alert

  void add(bool predicted_alert, bool actual_alert, std::uint64_t n = 1);

  /// FP / (TP + FP): fraction of predicted alerts that are wrong.
  /// This is the convention behind the paper's "59% false positive
  /// rate" for FATAL/FAILURE tagging on BG/L.
  double false_positive_rate() const;

  /// FN / (TP + FN): fraction of actual alerts missed.
  double false_negative_rate() const;

  double precision() const;
  double recall() const;

  std::string describe() const;
};

}  // namespace wss::tag
