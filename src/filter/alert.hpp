// The alert stream model consumed by the filtering algorithms.
//
// An *alert* (paper Section 1) is a tagged log message meriting
// administrator attention; a *failure* may produce many alerts across
// nodes and time. Filtering (Section 3.3) tries to reduce the stream
// to ~one alert per failure. The simulator stamps each alert with its
// ground-truth failure id so filters can be scored (score.hpp) -- the
// real logs had no such ground truth, which is exactly why the paper
// had to argue its accuracy trade-off from sampled cases.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace wss::filter {

/// Alert type by ostensible subsystem of origin (Table 3).
enum class AlertType : std::uint8_t {
  kHardware = 0,
  kSoftware = 1,
  kIndeterminate = 2,
};

/// Display name: "Hardware", "Software", "Indeterminate".
std::string_view alert_type_name(AlertType t);

/// Single-letter tag used in Table 4: H, S, I.
char alert_type_letter(AlertType t);

/// One alert in a time-ordered stream.
struct Alert {
  util::TimeUs time = 0;
  std::uint32_t source = 0;       ///< numeric node id within the system
  std::uint16_t category = 0;     ///< tag-rule index (same rule = same cat.)
  AlertType type = AlertType::kIndeterminate;
  std::uint64_t failure_id = 0;   ///< ground-truth failure (0 = unknown)
  double weight = 1.0;            ///< scale-up weight for raw counts
};

/// Streaming filter interface. Alerts MUST be presented in
/// non-decreasing time order (the paper's algorithm assumes a sorted
/// sequence); admit() returns true to keep the alert. Filters are
/// stateful; reset() restores the initial state.
class StreamFilter {
 public:
  virtual ~StreamFilter() = default;
  virtual bool admit(const Alert& a) = 0;
  virtual void reset() = 0;
};

/// Applies a filter to a (time-sorted) stream, returning the survivors.
/// Throws std::invalid_argument if the input is not sorted by time.
std::vector<Alert> apply_filter(StreamFilter& f, const std::vector<Alert>& in);

/// Sorts alerts by (time, source, category) -- the canonical stream
/// order used throughout.
void sort_alerts(std::vector<Alert>& alerts);

}  // namespace wss::filter
