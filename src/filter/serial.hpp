// The serial (temporal-then-spatial) baseline of Liang et al.
// [DSN'05, DSN'06], which the paper's simultaneous algorithm replaces.
//
// "Previous work applied these filters serially." The spatial stage
// only observes alerts that survive the temporal stage -- which is the
// root of the failure mode the paper describes: "the temporal filter
// removes messages that the spatial filter would have used as cues
// that the failure had already been reported by another source."
#pragma once

#include "filter/spatial.hpp"
#include "filter/temporal.hpp"

namespace wss::filter {

/// Temporal stage feeding a spatial stage.
class SerialFilter final : public StreamFilter {
 public:
  explicit SerialFilter(util::TimeUs threshold_us)
      : temporal_(threshold_us), spatial_(threshold_us) {}

  bool admit(const Alert& a) override {
    if (!temporal_.admit(a)) return false;
    return spatial_.admit(a);
  }

  void reset() override {
    temporal_.reset();
    spatial_.reset();
  }

 private:
  TemporalFilter temporal_;
  SpatialFilter spatial_;
};

}  // namespace wss::filter
