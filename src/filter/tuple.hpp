// Event tupling (Tsao's tuple concept).
//
// The paper's related work traces redundancy handling to Tsao's
// "tuple concept for data organization and to deal with multiple
// reports of single events" [26], and cites Buckley & Siewiorek's
// comparative analysis of tupling schemes [4] as the source of the
// T=5s threshold. A tuple groups *all* alerts within a gap threshold
// of each other -- across categories and sources -- into one object,
// rather than keeping one representative per category the way the
// paper's filter does. This module implements the tupler so the two
// philosophies can be compared (bench/ablation_tupling.cpp): tuples
// under-count concurrent distinct failures (they merge unrelated
// alerts that coincide), while per-category filtering over-counts
// multi-category failures (PBS_CHK + PBS_BFD).
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "filter/alert.hpp"

namespace wss::filter {

/// One tuple: a maximal run of alerts in which consecutive alerts are
/// separated by less than the gap threshold.
struct Tuple {
  util::TimeUs begin = 0;
  util::TimeUs end = 0;
  std::size_t alert_count = 0;
  std::set<std::uint16_t> categories;
  std::set<std::uint32_t> sources;
  std::set<std::uint64_t> failures;  ///< ground-truth ids (0 excluded)

  util::TimeUs duration() const { return end - begin; }
};

/// Groups a time-sorted alert stream into tuples with the given gap
/// threshold. Throws std::invalid_argument on an unsorted stream or a
/// non-positive gap.
std::vector<Tuple> build_tuples(const std::vector<Alert>& alerts,
                                util::TimeUs gap_us);

/// Tupling quality versus ground truth, mirroring FilterScore: a tuple
/// "collides" when it contains more than one distinct failure (those
/// failures become indistinguishable); a failure is "split" when its
/// alerts spread over several tuples.
struct TupleScore {
  std::size_t tuples = 0;
  std::size_t failures_total = 0;
  std::size_t collided_tuples = 0;  ///< tuples holding >= 2 failures
  std::size_t split_failures = 0;   ///< failures spanning >= 2 tuples
};

TupleScore score_tuples(const std::vector<Tuple>& tuples);

}  // namespace wss::filter
