#include "filter/alert.hpp"

#include <algorithm>
#include <stdexcept>
#include <tuple>

namespace wss::filter {

std::string_view alert_type_name(AlertType t) {
  switch (t) {
    case AlertType::kHardware:
      return "Hardware";
    case AlertType::kSoftware:
      return "Software";
    case AlertType::kIndeterminate:
      return "Indeterminate";
  }
  return "?";
}

char alert_type_letter(AlertType t) {
  switch (t) {
    case AlertType::kHardware:
      return 'H';
    case AlertType::kSoftware:
      return 'S';
    case AlertType::kIndeterminate:
      return 'I';
  }
  return '?';
}

std::vector<Alert> apply_filter(StreamFilter& f, const std::vector<Alert>& in) {
  std::vector<Alert> out;
  util::TimeUs prev = in.empty() ? 0 : in.front().time;
  for (const Alert& a : in) {
    if (a.time < prev) {
      throw std::invalid_argument("apply_filter: stream not time-sorted");
    }
    prev = a.time;
    if (f.admit(a)) out.push_back(a);
  }
  return out;
}

void sort_alerts(std::vector<Alert>& alerts) {
  std::sort(alerts.begin(), alerts.end(), [](const Alert& a, const Alert& b) {
    return std::tie(a.time, a.source, a.category) <
           std::tie(b.time, b.source, b.category);
  });
}

}  // namespace wss::filter
