// Ground-truth scoring of filters.
//
// Section 3.3.2 argues the simultaneous filter's accuracy trade-off:
// "At most one true positive was removed on any single machine,
// whereas sometimes dozens of false positives were removed by using
// our filter instead of the serial algorithm." With the simulator's
// ground-truth failure ids we can compute those quantities exactly.
#pragma once

#include <string>
#include <vector>

#include "filter/alert.hpp"

namespace wss::filter {

/// Filter quality with respect to ground-truth failures.
struct FilterScore {
  std::size_t input_alerts = 0;
  std::size_t kept_alerts = 0;
  std::size_t failures_total = 0;        ///< distinct failure ids in input
  std::size_t failures_represented = 0;  ///< distinct failure ids in output
  std::size_t true_positives_lost = 0;   ///< failures with no surviving alert
  std::size_t false_positives_kept = 0;  ///< surviving alerts beyond the
                                         ///< first per failure
  double compression = 0.0;              ///< input / kept (0 if kept == 0)
};

/// Runs `f` (after reset) over the sorted stream and scores the output.
/// Alerts with failure_id == 0 are treated as noise: they never count
/// as failures, and any kept ones count as false positives.
FilterScore score_filter(StreamFilter& f, const std::vector<Alert>& input);

/// Renders a one-line summary ("kept 1430/1665744, failures 1430/1431,
/// TP lost 1, FP kept 12, compression 1164.9x").
std::string describe(const FilterScore& s);

}  // namespace wss::filter
