#include "filter/simultaneous.hpp"

#include <stdexcept>

namespace wss::filter {

SimultaneousFilter::SimultaneousFilter(util::TimeUs threshold_us,
                                       bool use_clear_optimization)
    : threshold_(threshold_us), use_clear_(use_clear_optimization) {
  if (threshold_us <= 0) {
    throw std::invalid_argument("SimultaneousFilter: threshold must be > 0");
  }
}

bool SimultaneousFilter::admit(const Alert& a) {
  if (use_clear_ && any_seen_ && a.time - last_event_time_ > threshold_) {
    // clear(X): every entry is older than last_event_time_ <=
    // a.time - T, so none can satisfy the redundancy test. The epoch
    // bump invalidates them all in O(1).
    ++epoch_;
  }
  last_event_time_ = a.time;
  any_seen_ = true;

  if (a.category >= table_.size()) {
    table_.resize(static_cast<std::size_t>(a.category) + 1);
  }
  Entry& e = table_[a.category];
  const bool redundant =
      e.epoch == epoch_ && a.time - e.time < threshold_;
  e.epoch = epoch_;
  e.time = a.time;
  return !redundant;
}

void SimultaneousFilter::reset() {
  table_.clear();
  last_event_time_ = 0;
  any_seen_ = false;
  epoch_ = 1;
}

std::size_t SimultaneousFilter::table_size() const {
  std::size_t live = 0;
  for (const Entry& e : table_) live += e.epoch == epoch_ ? 1 : 0;
  return live;
}

}  // namespace wss::filter
