#include "filter/simultaneous.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>

#include "obs/metrics.hpp"

namespace wss::filter {

SimultaneousFilter::SimultaneousFilter(util::TimeUs threshold_us,
                                       bool use_clear_optimization)
    : threshold_(threshold_us), use_clear_(use_clear_optimization) {
  if (threshold_us <= 0) {
    throw std::invalid_argument("SimultaneousFilter: threshold must be > 0");
  }
}

bool SimultaneousFilter::admit(const Alert& a) {
  if (use_clear_ && any_seen_ && a.time - last_event_time_ > threshold_) {
    // clear(X): every entry is older than last_event_time_ <=
    // a.time - T, so none can satisfy the redundancy test. The epoch
    // bump invalidates them all in O(1).
    ++epoch_;
  }
  last_event_time_ = a.time;
  any_seen_ = true;

  if (a.category >= table_.size()) {
    table_.resize(static_cast<std::size_t>(a.category) + 1);
  }
  if (a.category >= offered_by_cat_.size()) {
    offered_by_cat_.resize(static_cast<std::size_t>(a.category) + 1, 0);
    admitted_by_cat_.resize(static_cast<std::size_t>(a.category) + 1, 0);
  }
  Entry& e = table_[a.category];
  const bool redundant =
      e.epoch == epoch_ && a.time - e.time < threshold_;
  e.epoch = epoch_;
  e.time = a.time;
  ++offered_;
  ++offered_by_cat_[a.category];
  if (!redundant) {
    ++admitted_;
    ++admitted_by_cat_[a.category];
  }
  return !redundant;
}

void SimultaneousFilter::publish_metrics() {
  auto& reg = obs::registry();
  const std::uint64_t d_offered = offered_ - published_offered_;
  const std::uint64_t d_admitted = admitted_ - published_admitted_;
  reg.counter("wss_filter_offered_total").inc(d_offered);
  reg.counter("wss_filter_admitted_total").inc(d_admitted);
  reg.counter("wss_filter_suppressed_total").inc(d_offered - d_admitted);
  published_offered_ = offered_;
  published_admitted_ = admitted_;
  published_offered_by_cat_.resize(offered_by_cat_.size(), 0);
  published_admitted_by_cat_.resize(admitted_by_cat_.size(), 0);
  for (std::size_t c = 0; c < offered_by_cat_.size(); ++c) {
    if (const auto d = offered_by_cat_[c] - published_offered_by_cat_[c]) {
      obs::labeled_counter("wss_filter_offered_by_category_total", "category",
                           c)
          .inc(d);
    }
    if (const auto d = admitted_by_cat_[c] - published_admitted_by_cat_[c]) {
      obs::labeled_counter("wss_filter_admitted_by_category_total", "category",
                           c)
          .inc(d);
    }
    published_offered_by_cat_[c] = offered_by_cat_[c];
    published_admitted_by_cat_[c] = admitted_by_cat_[c];
  }
  reg.gauge("wss_filter_table_live_entries")
      .set(static_cast<std::int64_t>(table_size()));
}

void SimultaneousFilter::reset() {
  table_.clear();
  last_event_time_ = 0;
  any_seen_ = false;
  epoch_ = 1;
}

std::size_t SimultaneousFilter::table_size() const {
  std::size_t live = 0;
  for (const Entry& e : table_) live += e.epoch == epoch_ ? 1 : 0;
  return live;
}

std::vector<std::size_t> quiet_gap_segments(const std::vector<Alert>& in,
                                            util::TimeUs threshold_us) {
  std::vector<std::size_t> starts;
  if (in.empty()) return starts;
  starts.push_back(0);
  for (std::size_t i = 1; i < in.size(); ++i) {
    if (in[i].time < in[i - 1].time) {
      throw std::invalid_argument(
          "quiet_gap_segments: stream not time-sorted");
    }
    if (in[i].time - in[i - 1].time > threshold_us) starts.push_back(i);
  }
  return starts;
}

std::vector<Alert> apply_simultaneous_parallel(const std::vector<Alert>& in,
                                               util::TimeUs threshold_us,
                                               int num_threads,
                                               bool use_clear_optimization) {
  // Validates sortedness (and the threshold) even on the serial path.
  const auto starts = quiet_gap_segments(in, threshold_us);
  if (num_threads <= 1 || starts.size() <= 1) {
    SimultaneousFilter f(threshold_us, use_clear_optimization);
    auto out = apply_filter(f, in);
    f.publish_metrics();
    return out;
  }

  // One output slot per segment; workers claim segments with an atomic
  // counter (segments are many and cheap -- no queue needed here).
  std::vector<std::vector<Alert>> kept(starts.size());
  std::atomic<std::size_t> next{0};
  const auto worker = [&] {
    SimultaneousFilter f(threshold_us, use_clear_optimization);
    for (std::size_t s = next.fetch_add(1); s < starts.size();
         s = next.fetch_add(1)) {
      const std::size_t begin = starts[s];
      const std::size_t end = s + 1 < starts.size() ? starts[s + 1] : in.size();
      f.reset();
      for (std::size_t i = begin; i < end; ++i) {
        if (f.admit(in[i])) kept[s].push_back(in[i]);
      }
    }
    f.publish_metrics();  // once per worker, after its last segment
  };

  const int workers = std::min<int>(num_threads,
                                    static_cast<int>(starts.size()));
  {
    std::vector<std::jthread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) pool.emplace_back(worker);
  }

  std::vector<Alert> out;
  std::size_t total = 0;
  for (const auto& k : kept) total += k.size();
  out.reserve(total);
  for (const auto& k : kept) out.insert(out.end(), k.begin(), k.end());
  return out;
}

}  // namespace wss::filter
