#include "filter/spatial.hpp"

#include <stdexcept>

namespace wss::filter {

SpatialFilter::SpatialFilter(util::TimeUs threshold_us)
    : threshold_(threshold_us) {
  if (threshold_us <= 0) {
    throw std::invalid_argument("SpatialFilter: threshold must be > 0");
  }
}

bool SpatialFilter::admit(const Alert& a) {
  State& st = state_[a.category];

  bool redundant = false;
  if (st.recent.valid && st.recent.source != a.source &&
      a.time - st.recent.time < threshold_) {
    redundant = true;
  } else if (st.recent_other.valid && st.recent_other.source != a.source &&
             a.time - st.recent_other.time < threshold_) {
    redundant = true;
  }

  // Update the two-slot history (every alert refreshes it, kept or
  // removed -- same sliding semantics as the temporal filter).
  if (st.recent.valid && st.recent.source == a.source) {
    st.recent.time = a.time;
  } else {
    st.recent_other = st.recent;
    st.recent = Slot{a.source, a.time, true};
  }
  return !redundant;
}

void SpatialFilter::reset() { state_.clear(); }

}  // namespace wss::filter
