#include "filter/temporal.hpp"

#include <stdexcept>

namespace wss::filter {

TemporalFilter::TemporalFilter(util::TimeUs threshold_us)
    : threshold_(threshold_us) {
  if (threshold_us <= 0) {
    throw std::invalid_argument("TemporalFilter: threshold must be > 0");
  }
}

bool TemporalFilter::admit(const Alert& a) {
  const auto k = key(a);
  const auto it = last_.find(k);
  const bool redundant =
      it != last_.end() && a.time - it->second < threshold_;
  last_[k] = a.time;  // refresh even when removing (sliding window)
  return !redundant;
}

void TemporalFilter::reset() { last_.clear(); }

}  // namespace wss::filter
