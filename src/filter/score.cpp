#include "filter/score.hpp"

#include <unordered_set>

#include "util/strings.hpp"

namespace wss::filter {

FilterScore score_filter(StreamFilter& f, const std::vector<Alert>& input) {
  f.reset();
  FilterScore s;
  s.input_alerts = input.size();

  std::unordered_set<std::uint64_t> failures_in;
  for (const Alert& a : input) {
    if (a.failure_id != 0) failures_in.insert(a.failure_id);
  }
  s.failures_total = failures_in.size();

  std::unordered_set<std::uint64_t> failures_out;
  for (const Alert& a : input) {
    if (!f.admit(a)) continue;
    ++s.kept_alerts;
    if (a.failure_id == 0 || !failures_out.insert(a.failure_id).second) {
      ++s.false_positives_kept;
    }
  }
  s.failures_represented = failures_out.size();
  s.true_positives_lost = s.failures_total - s.failures_represented;
  s.compression = s.kept_alerts == 0
                      ? 0.0
                      : static_cast<double>(s.input_alerts) /
                            static_cast<double>(s.kept_alerts);
  return s;
}

std::string describe(const FilterScore& s) {
  return util::format(
      "kept %zu/%zu, failures represented %zu/%zu, TP lost %zu, FP kept %zu, "
      "compression %.1fx",
      s.kept_alerts, s.input_alerts, s.failures_represented, s.failures_total,
      s.true_positives_lost, s.false_positives_kept, s.compression);
}

}  // namespace wss::filter
