// Spatial filtering (the second stage of the serial baseline).
//
// "A spatial filter removes an alert if some other source had
// previously reported that alert within T seconds. For example, if k
// nodes report the same alert in a round-robin fashion, each message
// within T seconds of the last, then only the first is kept."
// (Section 3.3.2)
//
// Implementation note: to answer "did any *other* source report
// category c within T" exactly, it suffices to remember, per category,
// the two most recent reports from distinct sources -- the most recent
// report overall and the most recent from a different source than it.
#pragma once

#include <unordered_map>

#include "filter/alert.hpp"

namespace wss::filter {

/// Per-category cross-source spatial filter.
class SpatialFilter final : public StreamFilter {
 public:
  explicit SpatialFilter(util::TimeUs threshold_us);

  bool admit(const Alert& a) override;
  void reset() override;

 private:
  struct Slot {
    std::uint32_t source = 0;
    util::TimeUs time = 0;
    bool valid = false;
  };
  struct State {
    Slot recent;        ///< most recent report of the category
    Slot recent_other;  ///< most recent report from a different source
  };

  util::TimeUs threshold_;
  std::unordered_map<std::uint16_t, State> state_;
};

}  // namespace wss::filter
