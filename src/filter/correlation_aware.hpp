// Correlation-aware filtering (the paper's other future-work filter).
//
// Section 3.3.1 / Figure 4: PBS_CHK and PBS_BFD on Liberty are "a
// particularly outstanding example of correlated alerts relegated to
// different categories" -- per-category filtering keeps both even when
// they report the same failure. Section 5 recommends "filters that are
// aware of correlations among messages". This filter groups correlated
// categories and applies the simultaneous algorithm per *group*, so
// one failure surfacing through several correlated tags yields one
// surviving alert.
#pragma once

#include <map>
#include <unordered_map>
#include <vector>

#include "filter/alert.hpp"

namespace wss::filter {

/// Simultaneous filter keyed by correlation group instead of category.
class CorrelationAwareFilter final : public StreamFilter {
 public:
  /// `groups` maps category -> group id; ungrouped categories filter
  /// independently (their group is their own category, namespaced
  /// apart from explicit group ids).
  CorrelationAwareFilter(std::map<std::uint16_t, std::uint32_t> groups,
                         util::TimeUs threshold_us);

  bool admit(const Alert& a) override;
  void reset() override;

 private:
  std::uint32_t group_of(std::uint16_t category) const;

  std::map<std::uint16_t, std::uint32_t> groups_;
  util::TimeUs threshold_;
  std::unordered_map<std::uint32_t, util::TimeUs> last_by_group_;
};

/// Learns correlation groups from a (sorted or unsorted) alert sample:
/// categories whose events co-occur within `window_us` more than
/// `min_fraction` of the time (in both directions) are merged with
/// union-find. This is deliberately simple -- the paper asks for
/// correlation awareness, not a particular learner.
std::map<std::uint16_t, std::uint32_t> learn_correlation_groups(
    const std::vector<Alert>& alerts, util::TimeUs window_us,
    double min_fraction = 0.5);

}  // namespace wss::filter
