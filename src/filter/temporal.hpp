// Temporal filtering (the first stage of the serial baseline).
//
// "A temporal filter coalesces alerts within T seconds of each other
// on a given source into a single alert. For example, if a node
// reports a particular alert every T seconds for a week, the temporal
// filter keeps only the first." (Section 3.3.2)
//
// Note the *sliding* window implied by the example: the state for a
// (source, category) pair is refreshed by every alert, kept or
// removed, so a chain of closely spaced alerts collapses to one even
// when the chain is much longer than T overall.
#pragma once

#include <unordered_map>

#include "filter/alert.hpp"

namespace wss::filter {

/// Per-(source, category) sliding-window temporal filter.
class TemporalFilter final : public StreamFilter {
 public:
  /// `threshold_us`: the paper's T (it uses T = 5 s).
  explicit TemporalFilter(util::TimeUs threshold_us);

  bool admit(const Alert& a) override;
  void reset() override;

 private:
  static std::uint64_t key(const Alert& a) {
    return (static_cast<std::uint64_t>(a.source) << 16) | a.category;
  }

  util::TimeUs threshold_;
  std::unordered_map<std::uint64_t, util::TimeUs> last_;
};

}  // namespace wss::filter
