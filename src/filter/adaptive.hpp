// Per-category adaptive thresholds (the paper's future-work filter).
//
// Section 4: "a filtering threshold must be selected in advance and is
// then applied across all kinds of alerts. In reality, each alert
// category may require a different threshold." AdaptiveFilter runs the
// simultaneous algorithm with a per-category T; suggest_thresholds()
// derives those T values from the data by splitting each category's
// interarrival-gap distribution at its widest logarithmic valley
// (burst-internal gaps vs. between-incident gaps).
#pragma once

#include <map>
#include <unordered_map>
#include <vector>

#include "filter/alert.hpp"

namespace wss::filter {

/// Simultaneous-style filter with a per-category threshold.
class AdaptiveFilter final : public StreamFilter {
 public:
  /// `thresholds` maps category -> T; categories not present use
  /// `default_threshold_us`.
  AdaptiveFilter(std::map<std::uint16_t, util::TimeUs> thresholds,
                 util::TimeUs default_threshold_us);

  bool admit(const Alert& a) override;
  void reset() override;

  util::TimeUs threshold_for(std::uint16_t category) const;

 private:
  std::map<std::uint16_t, util::TimeUs> thresholds_;
  util::TimeUs default_threshold_;
  std::unordered_map<std::uint16_t, util::TimeUs> last_by_category_;
};

/// Options for threshold suggestion.
struct ThresholdSuggestOptions {
  util::TimeUs default_threshold_us = 5 * util::kUsPerSec;
  util::TimeUs min_threshold_us = util::kUsPerSec / 10;       // 0.1 s
  util::TimeUs max_threshold_us = 3600 * util::kUsPerSec;     // 1 h
  std::size_t min_gaps = 8;  ///< categories with fewer gaps keep default
  /// Redundant-chain gaps are at most this long. Chains are repeated
  /// reports of one failure, spaced near the reporting period (a few
  /// seconds); anything much longer is a distinct failure. Keep this
  /// a small multiple of the default threshold.
  util::TimeUs chain_ceiling_us = 15 * util::kUsPerSec;
  /// Two-scale evidence: at least this fraction of the category's gaps
  /// must sit in the chain regime.
  double min_chain_fraction = 0.3;
  /// ...and the first gap above the chain regime must exceed the
  /// largest chain gap by this factor (a real gap in the spectrum).
  double min_scale_ratio = 1.3;
};

/// Derives a per-category threshold from a (time-sorted or unsorted)
/// alert sample. Model: a category with redundant reporting has
/// two-scale interarrivals -- dense chain gaps below chain_ceiling and
/// much larger between-failure gaps. If the chain regime holds at
/// least min_chain_fraction of the gaps and is separated from the rest
/// by min_scale_ratio, the suggested T is the geometric mean of the
/// boundary pair, clamped to [min, max]. Categories without that
/// structure (independent, sparse, or continuous-spectrum) abstain and
/// keep the default.
std::map<std::uint16_t, util::TimeUs> suggest_thresholds(
    const std::vector<Alert>& alerts, const ThresholdSuggestOptions& opts = {});

}  // namespace wss::filter
