#include "filter/correlation_aware.hpp"

#include <algorithm>
#include <stdexcept>

namespace wss::filter {

CorrelationAwareFilter::CorrelationAwareFilter(
    std::map<std::uint16_t, std::uint32_t> groups, util::TimeUs threshold_us)
    : groups_(std::move(groups)), threshold_(threshold_us) {
  if (threshold_us <= 0) {
    throw std::invalid_argument(
        "CorrelationAwareFilter: threshold must be > 0");
  }
}

std::uint32_t CorrelationAwareFilter::group_of(std::uint16_t category) const {
  const auto it = groups_.find(category);
  if (it != groups_.end()) return it->second;
  // Ungrouped categories live in a namespace above all explicit ids.
  return 0x10000u + category;
}

bool CorrelationAwareFilter::admit(const Alert& a) {
  const std::uint32_t g = group_of(a.category);
  const auto it = last_by_group_.find(g);
  const bool redundant =
      it != last_by_group_.end() && a.time - it->second < threshold_;
  last_by_group_[g] = a.time;
  return !redundant;
}

void CorrelationAwareFilter::reset() { last_by_group_.clear(); }

namespace {

/// Minimal union-find over category ids.
class UnionFind {
 public:
  std::uint16_t find(std::uint16_t x) {
    auto it = parent_.find(x);
    if (it == parent_.end()) {
      parent_[x] = x;
      return x;
    }
    if (it->second == x) return x;
    const std::uint16_t root = find(it->second);
    parent_[x] = root;
    return root;
  }

  void unite(std::uint16_t a, std::uint16_t b) {
    const std::uint16_t ra = find(a);
    const std::uint16_t rb = find(b);
    if (ra != rb) parent_[ra] = rb;
  }

 private:
  std::map<std::uint16_t, std::uint16_t> parent_;
};

double directed_cooccurrence(const std::vector<util::TimeUs>& a,
                             const std::vector<util::TimeUs>& b,
                             util::TimeUs window) {
  if (a.empty() || b.empty()) return 0.0;
  std::size_t hits = 0;
  for (const auto t : a) {
    const auto it = std::lower_bound(b.begin(), b.end(), t - window);
    if (it != b.end() && *it <= t + window) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(a.size());
}

}  // namespace

std::map<std::uint16_t, std::uint32_t> learn_correlation_groups(
    const std::vector<Alert>& alerts, util::TimeUs window_us,
    double min_fraction) {
  std::map<std::uint16_t, std::vector<util::TimeUs>> times;
  for (const Alert& a : alerts) times[a.category].push_back(a.time);
  for (auto& [cat, ts] : times) std::sort(ts.begin(), ts.end());

  UnionFind uf;
  std::vector<std::uint16_t> cats;
  cats.reserve(times.size());
  for (const auto& [cat, ts] : times) cats.push_back(cat);

  for (std::size_t i = 0; i < cats.size(); ++i) {
    for (std::size_t j = i + 1; j < cats.size(); ++j) {
      const auto& ta = times[cats[i]];
      const auto& tb = times[cats[j]];
      if (directed_cooccurrence(ta, tb, window_us) >= min_fraction &&
          directed_cooccurrence(tb, ta, window_us) >= min_fraction) {
        uf.unite(cats[i], cats[j]);
      }
    }
  }

  std::map<std::uint16_t, std::uint32_t> out;
  for (const std::uint16_t c : cats) {
    const std::uint16_t root = uf.find(c);
    // Only emit explicit groups for categories actually merged with
    // another; singletons filter per-category as usual.
    if (root != c || std::any_of(cats.begin(), cats.end(),
                                 [&](std::uint16_t other) {
                                   return other != c && uf.find(other) == root;
                                 })) {
      out[c] = root;
    }
  }
  return out;
}

}  // namespace wss::filter
