#include "filter/tuple.hpp"

#include <map>
#include <stdexcept>

namespace wss::filter {

std::vector<Tuple> build_tuples(const std::vector<Alert>& alerts,
                                util::TimeUs gap_us) {
  if (gap_us <= 0) {
    throw std::invalid_argument("build_tuples: gap must be > 0");
  }
  std::vector<Tuple> out;
  util::TimeUs prev = 0;
  for (const Alert& a : alerts) {
    if (!out.empty() && a.time < prev) {
      throw std::invalid_argument("build_tuples: stream not time-sorted");
    }
    if (out.empty() || a.time - prev >= gap_us) {
      out.emplace_back();
      out.back().begin = a.time;
    }
    Tuple& t = out.back();
    t.end = a.time;
    ++t.alert_count;
    t.categories.insert(a.category);
    t.sources.insert(a.source);
    if (a.failure_id != 0) t.failures.insert(a.failure_id);
    prev = a.time;
  }
  return out;
}

TupleScore score_tuples(const std::vector<Tuple>& tuples) {
  TupleScore s;
  s.tuples = tuples.size();
  std::map<std::uint64_t, std::size_t> tuples_per_failure;
  for (const Tuple& t : tuples) {
    if (t.failures.size() >= 2) ++s.collided_tuples;
    for (const auto f : t.failures) ++tuples_per_failure[f];
  }
  s.failures_total = tuples_per_failure.size();
  for (const auto& [f, n] : tuples_per_failure) {
    if (n >= 2) ++s.split_failures;
  }
  return s;
}

}  // namespace wss::filter
