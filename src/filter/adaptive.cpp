#include "filter/adaptive.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wss::filter {

AdaptiveFilter::AdaptiveFilter(std::map<std::uint16_t, util::TimeUs> thresholds,
                               util::TimeUs default_threshold_us)
    : thresholds_(std::move(thresholds)),
      default_threshold_(default_threshold_us) {
  if (default_threshold_us <= 0) {
    throw std::invalid_argument("AdaptiveFilter: default threshold must be > 0");
  }
  for (const auto& [cat, t] : thresholds_) {
    if (t <= 0) {
      throw std::invalid_argument("AdaptiveFilter: thresholds must be > 0");
    }
  }
}

util::TimeUs AdaptiveFilter::threshold_for(std::uint16_t category) const {
  const auto it = thresholds_.find(category);
  return it == thresholds_.end() ? default_threshold_ : it->second;
}

bool AdaptiveFilter::admit(const Alert& a) {
  const util::TimeUs threshold = threshold_for(a.category);
  const auto it = last_by_category_.find(a.category);
  const bool redundant =
      it != last_by_category_.end() && a.time - it->second < threshold;
  last_by_category_[a.category] = a.time;
  return !redundant;
}

void AdaptiveFilter::reset() { last_by_category_.clear(); }

std::map<std::uint16_t, util::TimeUs> suggest_thresholds(
    const std::vector<Alert>& alerts, const ThresholdSuggestOptions& opts) {
  // Collect per-category event times.
  std::map<std::uint16_t, std::vector<util::TimeUs>> times;
  for (const Alert& a : alerts) times[a.category].push_back(a.time);

  std::map<std::uint16_t, util::TimeUs> out;
  for (auto& [cat, ts] : times) {
    if (ts.size() < opts.min_gaps + 1) continue;
    std::sort(ts.begin(), ts.end());
    std::vector<double> gaps;
    gaps.reserve(ts.size() - 1);
    for (std::size_t i = 1; i < ts.size(); ++i) {
      const auto g = static_cast<double>(ts[i] - ts[i - 1]);
      if (g > 0.0) gaps.push_back(g);
    }
    if (gaps.size() < opts.min_gaps) continue;
    std::sort(gaps.begin(), gaps.end());

    // Chain regime: gaps at or below the ceiling.
    const auto ceiling = static_cast<double>(opts.chain_ceiling_us);
    std::size_t n_chain = 0;
    while (n_chain < gaps.size() && gaps[n_chain] <= ceiling) ++n_chain;
    if (n_chain == 0 || n_chain == gaps.size()) continue;
    if (static_cast<double>(n_chain) <
        opts.min_chain_fraction * static_cast<double>(gaps.size())) {
      continue;  // too little redundancy to justify a custom threshold
    }
    const double chain_max = gaps[n_chain - 1];
    const double next = gaps[n_chain];
    if (next < opts.min_scale_ratio * chain_max) {
      continue;  // continuous spectrum: no safe place to cut
    }
    const auto t = static_cast<util::TimeUs>(std::sqrt(chain_max * next));
    out[cat] = std::clamp(t, opts.min_threshold_us, opts.max_threshold_us);
  }
  return out;
}

}  // namespace wss::filter
