#include "filter/serial.hpp"

// SerialFilter is header-only; this translation unit anchors it in the
// wss_filter library so the linker has a home for future out-of-line
// members.
