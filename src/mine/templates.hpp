// Unsupervised message-template mining.
//
// The paper's related work covers "a breadth-first algorithm for
// mining frequent patterns from event logs" (Vaarandi [27], the SLCT
// lineage) and Stearley's "informatic analysis of syslogs" [23]; the
// alert-identification discussion notes that understanding entries
// "may require parsing the unstructured message bodies". This module
// implements the classic frequent-token template miner: tokens that
// are frequent *at their position* become template constants, the rest
// become wildcards. Mined templates approximate the message catalog
// without any expert rules -- the unsupervised starting point an
// administrator of a new machine actually has.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace wss::mine {

/// One mined template, e.g.
///   "* * * * kernel: GM: LANai is not running. * * * * *"
struct LogTemplate {
  std::string pattern;        ///< tokens joined by spaces; '*' = wildcard
  std::size_t count = 0;      ///< lines matching the template
  std::size_t n_tokens = 0;
  std::size_t n_wildcards = 0;

  /// Fraction of positions that are constants (template specificity).
  double specificity() const {
    return n_tokens == 0 ? 0.0
                         : 1.0 - static_cast<double>(n_wildcards) /
                                     static_cast<double>(n_tokens);
  }
};

/// Miner configuration.
struct MinerOptions {
  /// A (position, token) pair must occur at least this often to become
  /// a template constant.
  std::size_t min_support = 20;
  /// Templates below this count are dropped from the result.
  std::size_t min_template_count = 20;
  /// Lines longer than this many tokens are truncated (defensive).
  std::size_t max_tokens = 40;
  /// Leading token positions to treat as always-variable. Log headers
  /// (timestamp, host) are structured fields the parsers already
  /// handle; mining is for the unstructured tail. 4 skips a syslog
  /// "Mon dd HH:MM:SS host" prefix.
  std::size_t skip_positions = 0;
};

/// Two-pass frequent-token miner. Usage:
///   TemplateMiner m(opts);
///   for (line : log) m.learn(line);    // pass 1: vocabulary
///   m.freeze();
///   for (line : log) m.digest(line);   // pass 2: template counts
///   auto result = m.templates();
class TemplateMiner {
 public:
  explicit TemplateMiner(MinerOptions opts = {});

  /// Pass 1: accumulate (position, token) frequencies.
  void learn(std::string_view line);

  /// Freezes the vocabulary (drops sub-support pairs). learn() after
  /// freeze() throws.
  void freeze();

  /// Pass 2: map the line to its template and count it. Throws if the
  /// miner is not frozen.
  void digest(std::string_view line);

  /// Mined templates, most frequent first.
  std::vector<LogTemplate> templates() const;

  /// The template string a line maps to (usable before/after digest;
  /// requires freeze()).
  std::string template_of(std::string_view line) const;

  bool frozen() const { return frozen_; }
  std::size_t vocabulary_size() const { return frequent_.size(); }

  /// One-shot convenience over an in-memory corpus.
  static std::vector<LogTemplate> mine(const std::vector<std::string>& lines,
                                       MinerOptions opts = {});

 private:
  using PosToken = std::pair<std::uint32_t, std::string>;

  MinerOptions opts_;
  bool frozen_ = false;
  std::map<PosToken, std::size_t> counts_;    // pass-1 accumulator
  std::map<PosToken, bool> frequent_;         // frozen vocabulary
  std::map<std::string, std::size_t> template_counts_;
};

}  // namespace wss::mine
