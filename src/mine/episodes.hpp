// Online episode mining: timed event-correlation rules under bounded
// state.
//
// The paper's Figure 3 (GM_PAR -> GM_LANAI) and Figure 4
// (PBS_CHK -> PBS_BFD) are exactly the "A predicts B shortly after"
// relationships that LogMaster-style systems mine as frequent episodes
// with timing. The batch PrecursorPredictor already estimates
// P(B | A) on a materialized training vector; this miner keeps the
// same quantity -- support, confidence, and the inter-event delay
// distribution of predecessor->successor incident pairs -- live over
// an unbounded stream, with two hard memory bounds:
//
//   1. *The candidate table never exceeds max_candidates entries.*
//      When a never-seen pair arrives at a full table, either the
//      lowest-support (support == 1) candidate is evicted to make
//      room, or -- if every resident has support >= 2 -- the incoming
//      pair is refused. Ties break on key order, so eviction is fully
//      deterministic.
//   2. *Evicted or refused pairs are permanently banned* in a
//      fixed-size bitset (kMaxEpisodeCategories^2 bits = 128 KiB,
//      allocated lazily on the first ban). A banned pair is never
//      re-admitted and never emitted.
//
// Together these give the correctness property the differential-fuzz
// suite pins: every rule the bounded miner emits has been tracked
// since the pair's first occurrence, so its support and confidence are
// bit-identical to an unbounded reference over the same stream. The
// bound trades *recall* (banned pairs are lost), never *correctness*.
//
// Incident detection matches predict::PrecursorPredictor: an alert
// begins a new incident of its category when the previous alert of
// that category is at least incident_gap_us old. On a B-incident start
// at time t, every category A whose most recent incident start t_A
// satisfies 0 < t - t_A <= window_us is credited once per A-start
// (a second B-start inside the same window does not double-count),
// and the first-B-after-A delay t - t_A feeds the pair's streaming
// delay moments (Welford) and min/max.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <vector>

#include "filter/alert.hpp"
#include "util/time.hpp"

namespace wss::mine {

/// Category-id ceiling for episode pairs, matching the tag layer's
/// kMaxRules guard (tag/rule.hpp): pair keys are a*1024+b, and the ban
/// bitset is sized for the full 1024^2 universe -- 128 KiB, the
/// miner's worst-case footprint beyond the candidate table itself.
inline constexpr std::size_t kMaxEpisodeCategories = 1024;

/// Knobs for EpisodeMiner.
struct EpisodeOptions {
  /// A successor incident counts when it starts within this window
  /// after the predecessor's incident start.
  util::TimeUs window_us = 10 * util::kUsPerMin;
  /// Incident detection gap (same default as the batch predictors).
  util::TimeUs incident_gap_us = 30 * util::kUsPerSec;
  /// Hard cap on tracked candidate pairs (bound 1 above).
  std::size_t max_candidates = 4096;
  /// rules() floors: drop pairs below this support / confidence.
  std::uint64_t min_support = 4;
  double min_confidence = 0.4;
};

/// One mined rule: "an incident of `predecessor` is followed by an
/// incident of `successor` within the window, with this frequency and
/// delay distribution".
struct EpisodeRule {
  std::uint16_t predecessor = 0;
  std::uint16_t successor = 0;
  std::uint64_t support = 0;    ///< predecessor starts followed by successor
  std::uint64_t incidents = 0;  ///< total predecessor incident starts
  double confidence = 0.0;      ///< support / incidents
  double delay_mean_s = 0.0;    ///< first-successor delay, seconds
  double delay_stddev_s = 0.0;  ///< sample stddev (0 when support < 2)
  double delay_min_s = 0.0;
  double delay_max_s = 0.0;
};

/// Bounded-state online miner of timed predecessor->successor rules.
class EpisodeMiner {
 public:
  explicit EpisodeMiner(EpisodeOptions opts = {});

  /// Consumes one alert (time-ordered stream). Returns true iff the
  /// alert began a new incident of its category.
  bool observe(const filter::Alert& a);

  /// Rules passing the min_support/min_confidence floors, in
  /// (predecessor, successor) key order.
  std::vector<EpisodeRule> rules() const;

  /// Rules with `predecessor` as the predecessor, floors applied --
  /// the per-incident lookup the episode predictor uses (one map range
  /// scan, not a full-table walk).
  std::vector<EpisodeRule> rules_from(std::uint16_t predecessor) const;

  /// Forgets the per-category last-alert / last-start times (the
  /// streaming position) while keeping every mined count -- the
  /// predict::Predictor::reset() contract.
  void clear_streaming_state();

  const EpisodeOptions& options() const { return opts_; }
  std::size_t candidate_count() const { return candidates_.size(); }
  std::uint64_t incident_count() const { return incidents_total_; }
  std::uint64_t evictions() const { return evictions_; }
  std::uint64_t bans() const { return bans_; }

  /// Checkpoint serialization (templated: the mine layer does not link
  /// the stream layer; stream::CheckpointWriter/Reader satisfy the
  /// shape). Field order is the format -- keep save/load mirrored.
  template <class Writer>
  void save(Writer& w) const {
    w.u64(static_cast<std::uint64_t>(last_alert_.size()));
    for (std::size_t c = 0; c < last_alert_.size(); ++c) {
      w.u8(alert_seen_[c]);
      w.i64(last_alert_[c]);
      w.u8(start_seen_[c]);
      w.i64(last_start_[c]);
      w.u64(incident_count_[c]);
    }
    w.u64(incidents_total_);
    w.u64(evictions_);
    w.u64(bans_);
    w.u64(static_cast<std::uint64_t>(candidates_.size()));
    for (const auto& [key, c] : candidates_) {
      w.u32(key);
      w.u64(c.support);
      w.i64(c.last_credited_start);
      w.f64(c.delay_mean_us);
      w.f64(c.delay_m2_us);
      w.i64(c.delay_min_us);
      w.i64(c.delay_max_us);
    }
    w.boolean(!banned_.empty());
    if (!banned_.empty()) {
      for (const std::uint64_t word : banned_) w.u64(word);
    }
  }

  template <class Reader>
  void load(Reader& r) {
    const std::uint64_t cats = r.u64();
    if (cats > kMaxEpisodeCategories) {
      throw std::runtime_error("episode miner: implausible category count");
    }
    grow(cats == 0 ? 0 : static_cast<std::size_t>(cats) - 1);
    for (std::size_t c = 0; c < cats; ++c) {
      alert_seen_[c] = r.u8();
      last_alert_[c] = r.i64();
      start_seen_[c] = r.u8();
      last_start_[c] = r.i64();
      incident_count_[c] = r.u64();
    }
    incidents_total_ = r.u64();
    evictions_ = r.u64();
    bans_ = r.u64();
    const std::uint64_t n = r.u64();
    if (n > opts_.max_candidates) {
      throw std::runtime_error("episode miner: candidate table over cap");
    }
    candidates_.clear();
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::uint32_t key = r.u32();
      Candidate c;
      c.support = r.u64();
      c.last_credited_start = r.i64();
      c.delay_mean_us = r.f64();
      c.delay_m2_us = r.f64();
      c.delay_min_us = r.i64();
      c.delay_max_us = r.i64();
      candidates_.emplace(key, c);
    }
    banned_.clear();
    if (r.boolean()) {
      banned_.resize(kBanWords);
      for (std::size_t i = 0; i < kBanWords; ++i) banned_[i] = r.u64();
    }
  }

 private:
  struct Candidate {
    std::uint64_t support = 0;
    /// Predecessor start already credited (dedupes multiple successor
    /// starts inside one window; start times strictly increase per
    /// category, so equality identifies the start).
    util::TimeUs last_credited_start = 0;
    // Streaming Welford moments + extrema of the first-successor
    // delay, in microseconds.
    double delay_mean_us = 0.0;
    double delay_m2_us = 0.0;
    util::TimeUs delay_min_us = 0;
    util::TimeUs delay_max_us = 0;
  };

  static constexpr std::size_t kBanWords =
      kMaxEpisodeCategories * kMaxEpisodeCategories / 64;

  static std::uint32_t pair_key(std::size_t a, std::size_t b) {
    return static_cast<std::uint32_t>(a * kMaxEpisodeCategories + b);
  }

  void grow(std::size_t category);
  bool is_banned(std::uint32_t key) const;
  void ban(std::uint32_t key);
  void credit(std::uint32_t key, util::TimeUs a_start, util::TimeUs delay);
  EpisodeRule to_rule(std::uint32_t key, const Candidate& c) const;

  EpisodeOptions opts_;

  // Per-category state, indexed by category id; vectors grow to the
  // largest category seen (<= kMaxEpisodeCategories).
  std::vector<std::uint8_t> alert_seen_;
  std::vector<util::TimeUs> last_alert_;   ///< last alert time (gap test)
  std::vector<std::uint8_t> start_seen_;
  std::vector<util::TimeUs> last_start_;   ///< last incident start
  std::vector<std::uint64_t> incident_count_;

  std::uint64_t incidents_total_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t bans_ = 0;

  /// key = predecessor * 1024 + successor; std::map so iteration,
  /// eviction tie-breaks, and serialization are all in key order.
  std::map<std::uint32_t, Candidate> candidates_;

  /// Permanent pair bans (bound 2 above); empty until the first ban.
  std::vector<std::uint64_t> banned_;
};

}  // namespace wss::mine
