#include "mine/templates.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/strings.hpp"

namespace wss::mine {

TemplateMiner::TemplateMiner(MinerOptions opts) : opts_(opts) {}

void TemplateMiner::learn(std::string_view line) {
  if (frozen_) throw std::logic_error("TemplateMiner: learn after freeze");
  const auto tokens = util::split_fields(line);
  const std::size_t n = std::min(tokens.size(), opts_.max_tokens);
  for (std::size_t p = opts_.skip_positions; p < n; ++p) {
    ++counts_[{static_cast<std::uint32_t>(p), std::string(tokens[p])}];
  }
}

void TemplateMiner::freeze() {
  for (const auto& [key, count] : counts_) {
    if (count >= opts_.min_support) frequent_[key] = true;
  }
  counts_.clear();
  frozen_ = true;
}

std::string TemplateMiner::template_of(std::string_view line) const {
  if (!frozen_) throw std::logic_error("TemplateMiner: not frozen");
  const auto tokens = util::split_fields(line);
  const std::size_t n = std::min(tokens.size(), opts_.max_tokens);
  std::string out;
  for (std::size_t p = 0; p < n; ++p) {
    if (p > 0) out.push_back(' ');
    if (p >= opts_.skip_positions &&
        frequent_.count({static_cast<std::uint32_t>(p),
                         std::string(tokens[p])})) {
      out.append(tokens[p]);
    } else {
      out.push_back('*');
    }
  }
  return out;
}

void TemplateMiner::digest(std::string_view line) {
  ++template_counts_[template_of(line)];
}

std::vector<LogTemplate> TemplateMiner::templates() const {
  std::vector<LogTemplate> out;
  for (const auto& [pattern, count] : template_counts_) {
    if (count < opts_.min_template_count) continue;
    LogTemplate t;
    t.pattern = pattern;
    t.count = count;
    for (const auto tok : util::split_fields(pattern)) {
      ++t.n_tokens;
      if (tok == "*") ++t.n_wildcards;
    }
    out.push_back(std::move(t));
  }
  std::sort(out.begin(), out.end(),
            [](const LogTemplate& a, const LogTemplate& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.pattern < b.pattern;
            });
  return out;
}

std::vector<LogTemplate> TemplateMiner::mine(
    const std::vector<std::string>& lines, MinerOptions opts) {
  TemplateMiner m(opts);
  for (const auto& line : lines) m.learn(line);
  m.freeze();
  for (const auto& line : lines) m.digest(line);
  return m.templates();
}

}  // namespace wss::mine
