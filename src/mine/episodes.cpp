#include "mine/episodes.hpp"

#include <algorithm>
#include <cmath>

namespace wss::mine {

EpisodeMiner::EpisodeMiner(EpisodeOptions opts) : opts_(opts) {
  if (opts_.window_us <= 0) {
    throw std::invalid_argument("episode miner: window must be positive");
  }
  if (opts_.incident_gap_us <= 0) {
    throw std::invalid_argument("episode miner: incident gap must be positive");
  }
  if (opts_.max_candidates == 0) {
    throw std::invalid_argument("episode miner: max_candidates must be >= 1");
  }
}

void EpisodeMiner::grow(std::size_t category) {
  if (category >= kMaxEpisodeCategories) {
    throw std::invalid_argument("episode miner: category id out of range");
  }
  if (category < last_alert_.size()) return;
  const std::size_t n = category + 1;
  alert_seen_.resize(n, 0);
  last_alert_.resize(n, 0);
  start_seen_.resize(n, 0);
  last_start_.resize(n, 0);
  incident_count_.resize(n, 0);
}

bool EpisodeMiner::is_banned(std::uint32_t key) const {
  if (banned_.empty()) return false;
  return (banned_[key >> 6] >> (key & 63)) & 1;
}

void EpisodeMiner::ban(std::uint32_t key) {
  if (banned_.empty()) banned_.resize(kBanWords, 0);
  banned_[key >> 6] |= std::uint64_t{1} << (key & 63);
  ++bans_;
}

void EpisodeMiner::credit(std::uint32_t key, util::TimeUs a_start,
                          util::TimeUs delay) {
  auto it = candidates_.find(key);
  if (it == candidates_.end()) {
    if (is_banned(key)) return;
    if (candidates_.size() >= opts_.max_candidates) {
      // Full table: evict the lowest-support resident iff its support
      // is 1 (first key in order breaks ties); a resident with
      // support >= 2 has more evidence than the newcomer's single
      // occurrence, so the newcomer is refused instead. Either way the
      // loser is banned permanently, preserving the invariant that
      // every *tracked* pair has been counted since its first
      // occurrence (exactness vs the unbounded reference).
      auto victim = candidates_.begin();
      for (auto cand = candidates_.begin(); cand != candidates_.end();
           ++cand) {
        if (cand->second.support < victim->second.support) victim = cand;
      }
      if (victim->second.support <= 1) {
        ban(victim->first);
        candidates_.erase(victim);
        ++evictions_;
      } else {
        ban(key);
        return;
      }
    }
    it = candidates_.emplace(key, Candidate{}).first;
    it->second.delay_min_us = delay;
    it->second.delay_max_us = delay;
  }
  Candidate& c = it->second;
  if (c.support > 0 && c.last_credited_start == a_start) return;
  c.last_credited_start = a_start;
  ++c.support;
  // Welford update on the first-successor delay.
  const double x = static_cast<double>(delay);
  const double d = x - c.delay_mean_us;
  c.delay_mean_us += d / static_cast<double>(c.support);
  c.delay_m2_us += d * (x - c.delay_mean_us);
  if (delay < c.delay_min_us) c.delay_min_us = delay;
  if (delay > c.delay_max_us) c.delay_max_us = delay;
}

bool EpisodeMiner::observe(const filter::Alert& a) {
  const std::size_t b = a.category;
  grow(b);
  const bool fresh =
      !alert_seen_[b] || a.time - last_alert_[b] >= opts_.incident_gap_us;
  alert_seen_[b] = 1;
  last_alert_[b] = a.time;
  if (!fresh) return false;

  ++incident_count_[b];
  ++incidents_total_;
  // Credit every category whose most recent incident start falls
  // inside (t - window, t). Ascending category order keeps table
  // mutation deterministic.
  for (std::size_t cat = 0; cat < last_start_.size(); ++cat) {
    if (cat == b || !start_seen_[cat]) continue;
    const util::TimeUs delay = a.time - last_start_[cat];
    if (delay <= 0 || delay > opts_.window_us) continue;
    credit(pair_key(cat, b), last_start_[cat], delay);
  }
  start_seen_[b] = 1;
  last_start_[b] = a.time;
  return true;
}

EpisodeRule EpisodeMiner::to_rule(std::uint32_t key,
                                  const Candidate& c) const {
  EpisodeRule r;
  r.predecessor = static_cast<std::uint16_t>(key / kMaxEpisodeCategories);
  r.successor = static_cast<std::uint16_t>(key % kMaxEpisodeCategories);
  r.support = c.support;
  r.incidents = incident_count_[r.predecessor];
  r.confidence = r.incidents == 0
                     ? 0.0
                     : static_cast<double>(r.support) /
                           static_cast<double>(r.incidents);
  r.delay_mean_s = c.delay_mean_us / 1e6;
  r.delay_stddev_s =
      c.support < 2 ? 0.0
                    : std::sqrt(c.delay_m2_us /
                                static_cast<double>(c.support - 1)) /
                          1e6;
  r.delay_min_s = static_cast<double>(c.delay_min_us) / 1e6;
  r.delay_max_s = static_cast<double>(c.delay_max_us) / 1e6;
  return r;
}

std::vector<EpisodeRule> EpisodeMiner::rules() const {
  std::vector<EpisodeRule> out;
  for (const auto& [key, c] : candidates_) {
    const EpisodeRule r = to_rule(key, c);
    if (r.support < opts_.min_support) continue;
    if (r.confidence < opts_.min_confidence) continue;
    out.push_back(r);
  }
  return out;
}

std::vector<EpisodeRule> EpisodeMiner::rules_from(
    std::uint16_t predecessor) const {
  std::vector<EpisodeRule> out;
  const std::uint32_t lo = pair_key(predecessor, 0);
  const std::uint32_t hi = pair_key(predecessor + 1, 0);
  for (auto it = candidates_.lower_bound(lo);
       it != candidates_.end() && it->first < hi; ++it) {
    const EpisodeRule r = to_rule(it->first, it->second);
    if (r.support < opts_.min_support) continue;
    if (r.confidence < opts_.min_confidence) continue;
    out.push_back(r);
  }
  return out;
}

void EpisodeMiner::clear_streaming_state() {
  std::fill(alert_seen_.begin(), alert_seen_.end(), 0);
  std::fill(last_alert_.begin(), last_alert_.end(), 0);
  std::fill(start_seen_.begin(), start_seen_.end(), 0);
  std::fill(last_start_.begin(), last_start_.end(), 0);
}

}  // namespace wss::mine
