#include "dist/partial.hpp"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/strings.hpp"

namespace wss::dist {

namespace {

/// Little-endian u64/u32 for the trailer (written outside the
/// checksummed payload, so not through CheckpointWriter).
void append_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out += static_cast<char>((v >> (8 * i)) & 0xff);
}

void append_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out += static_cast<char>((v >> (8 * i)) & 0xff);
}

std::uint64_t parse_u64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

std::uint32_t parse_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

constexpr std::size_t kTrailerSize = 8 + 8 + 4;

std::string render_payload(const PartialFile& partial) {
  std::ostringstream os(std::ios::binary);
  stream::CheckpointWriter w(os);
  w.u32(kPartialMagic);
  w.u32(kPartialVersion);
  w.u32(partial.assignment);
  w.u32(partial.worker);
  w.str(partial.instance);
  w.u64(partial.systems.size());
  for (const SystemPartial& sys : partial.systems) {
    w.u8(static_cast<std::uint8_t>(sys.system));
    w.u64(sys.chunks.size());
    for (const ChunkPartial& chunk : sys.chunks) {
      w.u64(chunk.chunk);
      save_result(w, chunk.result);
    }
  }
  stream::write_counter_table(w, partial.counter_deltas);
  if (!w.ok()) throw std::runtime_error("partial: serialization failed");
  return std::move(os).str();
}

PartialFile parse_payload(const std::string& payload) {
  std::istringstream is(payload, std::ios::binary);
  stream::CheckpointReader r(is);
  if (r.u32() != kPartialMagic) {
    throw std::runtime_error("partial: bad magic");
  }
  const std::uint32_t version = r.u32();
  if (version != kPartialVersion) {
    throw std::runtime_error(
        util::format("partial: unsupported version %u (expected %u)", version,
                     kPartialVersion));
  }
  PartialFile p;
  p.assignment = r.u32();
  p.worker = r.u32();
  p.instance = r.str();
  const std::uint64_t num_systems = r.u64();
  if (num_systems > parse::kNumSystems) {
    throw std::runtime_error("partial: implausible system count");
  }
  p.systems.reserve(num_systems);
  for (std::uint64_t s = 0; s < num_systems; ++s) {
    SystemPartial sys;
    const std::uint8_t id = r.u8();
    if (id >= parse::kNumSystems) {
      throw std::runtime_error("partial: bad system id");
    }
    sys.system = static_cast<parse::SystemId>(id);
    const std::uint64_t num_chunks = r.u64();
    if (num_chunks > (1ull << 32)) {
      throw std::runtime_error("partial: implausible chunk count");
    }
    sys.chunks.reserve(num_chunks);
    for (std::uint64_t c = 0; c < num_chunks; ++c) {
      ChunkPartial chunk;
      chunk.chunk = r.u64();
      chunk.result = load_result(r);
      sys.chunks.push_back(std::move(chunk));
    }
    p.systems.push_back(std::move(sys));
  }
  p.counter_deltas = stream::read_counter_table(r);
  return p;
}

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("partial: cannot open " + path);
  std::ostringstream ss;
  ss << is.rdbuf();
  if (is.bad()) throw std::runtime_error("partial: read failed: " + path);
  return std::move(ss).str();
}

}  // namespace

void save_result(stream::CheckpointWriter& w, const core::PipelineResult& r) {
  w.u8(static_cast<std::uint8_t>(r.system));
  w.u64(r.physical_messages);
  w.f64(r.weighted_messages);
  w.u64(r.physical_bytes);
  w.f64(r.weighted_bytes);
  w.u64(r.corrupted_source_lines);
  w.u64(r.invalid_timestamp_lines);
  w.u64(r.tagged_alerts.size());
  for (const filter::Alert& a : r.tagged_alerts) {
    w.i64(a.time);
    w.u32(a.source);
    w.u32(a.category);
    w.u8(static_cast<std::uint8_t>(a.type));
    w.u64(a.failure_id);
    w.f64(a.weight);
  }
  w.u64(r.weighted_alert_counts.size());
  for (const double v : r.weighted_alert_counts) w.f64(v);
  w.u64(r.physical_alert_counts.size());
  for (const std::uint64_t v : r.physical_alert_counts) w.u64(v);
  w.u64(r.tagging.true_positives);
  w.u64(r.tagging.false_positives);
  w.u64(r.tagging.true_negatives);
  w.u64(r.tagging.false_negatives);
  w.i64(r.categories_observed);
  w.u64(r.messages_by_source.size());
  for (const auto& [name, weight] : r.messages_by_source) {
    w.str(name);
    w.f64(weight);
  }
  w.f64(r.corrupted_source_weight);
}

core::PipelineResult load_result(stream::CheckpointReader& r) {
  core::PipelineResult out;
  const std::uint8_t id = r.u8();
  if (id >= parse::kNumSystems) {
    throw std::runtime_error("partial: bad system id in result");
  }
  out.system = static_cast<parse::SystemId>(id);
  out.physical_messages = r.u64();
  out.weighted_messages = r.f64();
  out.physical_bytes = r.u64();
  out.weighted_bytes = r.f64();
  out.corrupted_source_lines = r.u64();
  out.invalid_timestamp_lines = r.u64();
  const std::uint64_t num_alerts = r.u64();
  if (num_alerts > (1ull << 40)) {
    throw std::runtime_error("partial: implausible alert count");
  }
  out.tagged_alerts.reserve(num_alerts);
  for (std::uint64_t i = 0; i < num_alerts; ++i) {
    filter::Alert a;
    a.time = r.i64();
    a.source = r.u32();
    a.category = static_cast<std::uint16_t>(r.u32());
    a.type = static_cast<filter::AlertType>(r.u8());
    a.failure_id = r.u64();
    a.weight = r.f64();
    out.tagged_alerts.push_back(a);
  }
  const std::uint64_t num_weighted = r.u64();
  if (num_weighted > (1u << 20)) {
    throw std::runtime_error("partial: implausible category count");
  }
  out.weighted_alert_counts.reserve(num_weighted);
  for (std::uint64_t i = 0; i < num_weighted; ++i) {
    out.weighted_alert_counts.push_back(r.f64());
  }
  const std::uint64_t num_physical = r.u64();
  if (num_physical > (1u << 20)) {
    throw std::runtime_error("partial: implausible category count");
  }
  out.physical_alert_counts.reserve(num_physical);
  for (std::uint64_t i = 0; i < num_physical; ++i) {
    out.physical_alert_counts.push_back(r.u64());
  }
  out.tagging.true_positives = r.u64();
  out.tagging.false_positives = r.u64();
  out.tagging.true_negatives = r.u64();
  out.tagging.false_negatives = r.u64();
  out.categories_observed = static_cast<int>(r.i64());
  const std::uint64_t num_sources = r.u64();
  if (num_sources > (1u << 24)) {
    throw std::runtime_error("partial: implausible source count");
  }
  for (std::uint64_t i = 0; i < num_sources; ++i) {
    std::string name = r.str();
    const double weight = r.f64();
    out.messages_by_source.emplace(std::move(name), weight);
  }
  out.corrupted_source_weight = r.f64();
  return out;
}

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

void write_partial(const PartialFile& partial, const std::string& path) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(fs::path(path).parent_path(), ec);

  std::string bytes = render_payload(partial);
  const std::uint64_t payload_size = bytes.size();
  append_u64(bytes, payload_size);
  append_u64(bytes, fnv1a64(std::string_view(bytes.data(), payload_size)));
  append_u32(bytes, kPartialEndMagic);

  const std::string tmp = path + "." + partial.instance + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) throw std::runtime_error("partial: cannot open " + tmp);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!os.flush()) throw std::runtime_error("partial: write failed: " + tmp);
  }
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    throw std::runtime_error("partial: cannot publish " + path);
  }
}

PartialFile read_partial(const std::string& path) {
  const std::string bytes = read_file(path);
  if (bytes.size() < kTrailerSize) {
    throw std::runtime_error("partial: " + path +
                             ": truncated (no trailer)");
  }
  const char* trailer = bytes.data() + bytes.size() - kTrailerSize;
  if (parse_u32(trailer + 16) != kPartialEndMagic) {
    throw std::runtime_error("partial: " + path + ": bad trailer magic");
  }
  const std::uint64_t payload_size = parse_u64(trailer);
  if (payload_size != bytes.size() - kTrailerSize) {
    throw std::runtime_error(
        util::format("partial: %s: size mismatch (trailer says %llu, file "
                     "has %llu payload bytes)",
                     path.c_str(),
                     static_cast<unsigned long long>(payload_size),
                     static_cast<unsigned long long>(bytes.size() -
                                                     kTrailerSize)));
  }
  const std::uint64_t want = parse_u64(trailer + 8);
  const std::uint64_t got =
      fnv1a64(std::string_view(bytes.data(), payload_size));
  if (want != got) {
    throw std::runtime_error("partial: " + path + ": checksum mismatch");
  }
  try {
    return parse_payload(bytes.substr(0, payload_size));
  } catch (const std::runtime_error& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

bool partial_is_valid(const std::string& path, std::uint32_t assignment) {
  try {
    return read_partial(path).assignment == assignment;
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace wss::dist
