#include "dist/split.hpp"

#include <stdexcept>

#include "sim/generator.hpp"
#include "tag/rulesets.hpp"

namespace wss::dist {

namespace {

/// Compresses an ascending chunk-id -> assignment routing into the
/// per-assignment runs of contiguous chunks the manifest stores.
std::vector<std::vector<ChunkRange>> ranges_by_assignment(
    const std::vector<std::uint32_t>& route, std::uint32_t num_splits) {
  std::vector<std::vector<ChunkRange>> out(num_splits);
  std::uint64_t chunk = 0;
  while (chunk < route.size()) {
    const std::uint32_t owner = route[chunk];
    std::uint64_t end = chunk + 1;
    while (end < route.size() && route[end] == owner) ++end;
    out[owner].push_back({chunk, end});
    chunk = end;
  }
  return out;
}

/// The dominant ground-truth alert category of events [begin, end), or
/// -1 when the range is pure chatter. Ties pick the smallest id, so
/// the routing is a deterministic function of the event stream.
std::int32_t dominant_category(const std::vector<sim::SimEvent>& events,
                               std::size_t begin, std::size_t end,
                               std::vector<std::uint64_t>& scratch) {
  for (auto& c : scratch) c = 0;
  for (std::size_t i = begin; i < end; ++i) {
    const std::int32_t cat = events[i].category;
    if (cat >= 0 && static_cast<std::size_t>(cat) < scratch.size()) {
      ++scratch[static_cast<std::size_t>(cat)];
    }
  }
  std::int32_t best = -1;
  std::uint64_t best_count = 0;
  for (std::size_t c = 0; c < scratch.size(); ++c) {
    if (scratch[c] > best_count) {
      best_count = scratch[c];
      best = static_cast<std::int32_t>(c);
    }
  }
  return best;
}

}  // namespace

StudyManifest plan_split(const SplitOptions& opts) {
  if (opts.num_splits == 0) {
    throw std::invalid_argument("split: num_splits must be >= 1");
  }
  StudyManifest m;
  m.axis = opts.axis;
  m.num_splits = opts.num_splits;
  m.options = opts.study;
  m.systems = opts.systems;
  if (m.systems.empty()) {
    m.systems.assign(parse::kAllSystems.begin(), parse::kAllSystems.end());
  }

  m.assignments.resize(m.num_splits);
  for (std::uint32_t i = 0; i < m.num_splits; ++i) m.assignments[i].id = i;

  const std::size_t chunk_events = m.options.pipeline.chunk_events;
  for (std::size_t sys_idx = 0; sys_idx < m.systems.size(); ++sys_idx) {
    const parse::SystemId id = m.systems[sys_idx];
    const sim::Simulator sim(id, m.options.sim);
    const auto shards = sim.event_shards(chunk_events);
    const std::uint64_t num_chunks = shards.size();
    m.chunk_counts.push_back(num_chunks);

    // chunk -> owning assignment, then compressed into ranges.
    std::vector<std::uint32_t> route(num_chunks, 0);
    switch (m.axis) {
      case SplitAxis::kSystem: {
        const auto owner =
            static_cast<std::uint32_t>(sys_idx % m.num_splits);
        for (auto& r : route) r = owner;
        break;
      }
      case SplitAxis::kTime: {
        for (std::uint32_t i = 0; i < m.num_splits; ++i) {
          const std::uint64_t begin = i * num_chunks / m.num_splits;
          const std::uint64_t end = (i + 1ull) * num_chunks / m.num_splits;
          for (std::uint64_t c = begin; c < end; ++c) route[c] = i;
        }
        break;
      }
      case SplitAxis::kCategory: {
        const auto& events = sim.events();
        std::vector<std::uint64_t> scratch(tag::categories_of(id).size(), 0);
        for (std::uint64_t c = 0; c < num_chunks; ++c) {
          const std::int32_t dom = dominant_category(
              events, shards[c].begin, shards[c].end, scratch);
          route[c] = static_cast<std::uint32_t>(
              (static_cast<std::uint32_t>(dom + 1)) % m.num_splits);
        }
        break;
      }
    }

    auto per_assignment = ranges_by_assignment(route, m.num_splits);
    for (std::uint32_t a = 0; a < m.num_splits; ++a) {
      if (per_assignment[a].empty()) continue;
      Slice slice;
      slice.system = id;
      slice.ranges = std::move(per_assignment[a]);
      m.assignments[a].slices.push_back(std::move(slice));
    }
  }
  return m;
}

}  // namespace wss::dist
