// Merge: fold every assignment's partial back into one study and
// render the paper artifacts.
//
// Completeness is checked before any folding: every assignment must
// have a checksum-valid partial whose chunk set matches its manifest
// slice exactly. Anything else -- a missing partial, a torn write, a
// partial from a different plan -- is reported by assignment id in a
// one-line diagnostic and nothing is written (exit 1 at the CLI).
//
// Determinism: for each system, chunk partials from all assignments
// are folded in ascending global chunk-index order -- the same order
// core::run_pipeline and core::ParallelPipeline fold -- so the merged
// tables and figure data are byte-identical to a single-process run
// regardless of how chunks were partitioned or which worker computed
// them. Worker counter deltas are folded (in assignment order) into
// the local obs registry, so --metrics reflects the whole study.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dist/manifest.hpp"

namespace wss::dist {

struct MergeOptions {
  std::string manifest_dir;
  /// Output directory for rendered artifacts; empty = DIR/merged.
  std::string out_dir;
};

struct MergeReport {
  std::vector<std::uint32_t> missing;  ///< assignments with no partial
  std::vector<std::uint32_t> corrupt;  ///< invalid/mismatched partials
  std::vector<parse::SystemId> covered;
  std::uint64_t chunks = 0;      ///< chunk partials folded
  std::size_t artifacts = 0;     ///< artifact files written
  std::string out_dir;

  bool ok() const { return missing.empty() && corrupt.empty(); }

  /// One-line diagnostic naming the unfinished/corrupt assignments.
  std::string describe_failure() const;
};

/// Validates, folds, and renders. When the partial set is incomplete
/// the report's missing/corrupt lists are filled and nothing is
/// written. Throws std::runtime_error only on I/O failure while
/// writing output.
MergeReport run_merge(const StudyManifest& manifest, const MergeOptions& opts);

}  // namespace wss::dist
