// Partial-result files: one worker's computed slice of a study.
//
// A partial file carries the *per-chunk* PipelineResults of every
// chunk the assignment covers, not a pre-folded sum. This is the load-
// bearing decision of the whole subsystem: event weights are
// (paper count) / (generated count) doubles and FP addition is not
// associative, so folding a worker's chunks locally and then folding
// workers would accumulate in a different order than a single-process
// run. By shipping raw chunk partials, `wss merge` can fold ALL chunks
// of a system in global chunk-index order -- the exact order
// run_pipeline and ParallelPipeline use -- and the merged bytes are
// identical for ANY partition of chunks across workers.
//
// Wire format (little-endian, via stream::CheckpointWriter):
//
//   payload:
//     u32 magic "WSSP", u32 version
//     u32 assignment id, u32 worker id, str instance
//     u64 system count; per system:
//       u8 system id; u64 chunk count; per chunk:
//         u64 chunk index; serialized PipelineResult
//     counter-delta table (stream::write_counter_table)
//   trailer (20 bytes):
//     u64 payload size, u64 FNV-1a of payload, u32 end magic "WSSE"
//
// The trailer detects torn writes: a partial whose size or checksum
// disagrees is rejected by read_partial, the merge names it corrupt,
// and the assignment is rerun. Publication is tmp + atomic rename, so
// a complete file never coexists with a half-written one under the
// final name -- the trailer guards against the crash-during-rename
// filesystems that do not guarantee rename durability, and against
// truncation by the fault-injection tests.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/pipeline.hpp"
#include "stream/checkpoint.hpp"

namespace wss::dist {

inline constexpr std::uint32_t kPartialMagic = 0x57535350u;  // "WSSP"
inline constexpr std::uint32_t kPartialVersion = 1;
inline constexpr std::uint32_t kPartialEndMagic = 0x57535345u;  // "WSSE"

/// One chunk's un-finalized pipeline partial.
struct ChunkPartial {
  std::uint64_t chunk = 0;  ///< global chunk index within its system
  core::PipelineResult result;
};

/// All chunks of one system computed by this assignment, ascending by
/// chunk index.
struct SystemPartial {
  parse::SystemId system = parse::SystemId::kBlueGeneL;
  std::vector<ChunkPartial> chunks;
};

/// Everything one worker publishes for one assignment.
struct PartialFile {
  std::uint32_t assignment = 0;
  std::uint32_t worker = 0;
  std::string instance;
  std::vector<SystemPartial> systems;
  /// wss_* counter increments attributable to this worker's slice
  /// (end-of-run minus start-of-run values); `wss merge` folds these
  /// back into the local registry so the merged --metrics snapshot
  /// matches a single-process run.
  std::vector<std::pair<std::string, std::uint64_t>> counter_deltas;
};

/// Serializes one PipelineResult (field-by-field; see partial.cpp for
/// the order). Shared with tests that round-trip results directly.
void save_result(stream::CheckpointWriter& w, const core::PipelineResult& r);
core::PipelineResult load_result(stream::CheckpointReader& r);

/// FNV-1a 64-bit over `bytes` (the trailer checksum).
std::uint64_t fnv1a64(std::string_view bytes);

/// Writes `partial` to `path` via tmp-file + atomic rename. The tmp
/// name embeds `partial.instance`, so racing writers (stale-claim
/// takeover) never interleave into one tmp file. Throws
/// std::runtime_error on I/O failure.
void write_partial(const PartialFile& partial, const std::string& path);

/// Reads and validates a partial file; throws std::runtime_error on
/// missing file, short trailer, size/checksum mismatch, or a payload
/// this version cannot parse.
PartialFile read_partial(const std::string& path);

/// True when `path` holds a complete, checksum-valid partial for
/// `assignment` (quiet probe used for idempotent worker reruns).
bool partial_is_valid(const std::string& path, std::uint32_t assignment);

}  // namespace wss::dist
