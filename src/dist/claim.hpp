// Filesystem claim protocol: at-most-one *live* worker per assignment.
//
// A worker claims assignment N by publishing DIR/claims/
// assignment_NNN.claim. The initial claim uses hard-link creation
// (link(2) fails with EEXIST if the target exists), which is atomic on
// POSIX filesystems -- when two workers race, exactly one link call
// succeeds and the loser backs off (exit 3 at the CLI). rename(2)
// would NOT work here: it silently replaces an existing target, so
// both racers would believe they won.
//
// Fault tolerance: the claim file's mtime is the worker's heartbeat,
// refreshed between chunks. A claim whose mtime is older than
// --stale-after is considered dead and may be taken over
// (remove + link). Takeover has a documented residual race -- two
// workers can both see a stale claim and both proceed -- but it is
// benign: partial files are written via tmp + atomic rename, every
// worker computes the identical bytes for the same assignment, and
// the merger reads whichever complete partial landed last.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace wss::dist {

/// Who holds a claim (parsed back from the claim file).
struct ClaimInfo {
  std::uint32_t worker = 0;
  std::string instance;  ///< unique per worker process run
};

enum class ClaimOutcome : std::uint8_t {
  kClaimed,     ///< we hold the claim; proceed
  kHeldByLive,  ///< another worker's heartbeat is fresh; back off
};

struct ClaimResult {
  ClaimOutcome outcome = ClaimOutcome::kHeldByLive;
  std::optional<ClaimInfo> holder;  ///< set when kHeldByLive
};

/// A process-unique instance token ("w<id>.p<pid>.<nonce>") for claim
/// file contents; lets diagnostics distinguish two runs of the same
/// worker id.
std::string make_instance_token(std::uint32_t worker_id);

/// Attempts to claim `claim_path` for `worker_id`. `stale_after_s` is
/// the heartbeat liveness window; <= 0 treats every existing claim as
/// stale (useful for forced reruns). Creates the claims directory if
/// needed; throws std::runtime_error on I/O errors that are not part
/// of the protocol (unwritable directory, etc.).
ClaimResult try_claim(const std::string& claim_path, std::uint32_t worker_id,
                      const std::string& instance, double stale_after_s);

/// Refreshes the heartbeat (bumps the claim file's mtime). Missing
/// files are ignored: losing a takeover race mid-run is survivable
/// because partial publication is atomic.
void heartbeat(const std::string& claim_path);

/// Parses the claim file; nullopt when absent or unreadable.
std::optional<ClaimInfo> read_claim(const std::string& claim_path);

/// Seconds since the claim's last heartbeat; nullopt when absent.
std::optional<double> claim_age_seconds(const std::string& claim_path);

}  // namespace wss::dist
