#include "dist/worker.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "dist/claim.hpp"
#include "dist/partial.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "tag/metrics.hpp"
#include "tag/rulesets.hpp"
#include "util/strings.hpp"

namespace wss::dist {

namespace {

/// Everything needed to process one system's chunks; owns the
/// simulator and engine so flattened jobs can run in any order.
struct SystemWork {
  std::unique_ptr<sim::Simulator> sim;
  std::unique_ptr<tag::TagEngine> engine;
  std::vector<sim::Simulator::EventRange> shards;
  core::detail::ChunkContext ctx;
  std::vector<std::uint64_t> chunk_ids;           ///< ascending
  std::vector<core::PipelineResult> partials;     ///< parallel to chunk_ids
};

/// One flattened unit: chunk `pos` of system `work`.
struct Job {
  std::size_t work = 0;
  std::size_t pos = 0;
};

int resolved_threads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

}  // namespace

WorkerReport run_worker(const StudyManifest& manifest,
                        const WorkerOptions& opts) {
  if (opts.worker_id >= manifest.num_splits) {
    throw std::invalid_argument(util::format(
        "worker: id %u out of range [0, %u)", opts.worker_id,
        manifest.num_splits));
  }
  WorkerReport report;

  const std::string ppath = partial_path(opts.manifest_dir, opts.worker_id);
  if (partial_is_valid(ppath, opts.worker_id)) {
    report.outcome = WorkerOutcome::kAlreadyComplete;
    return report;
  }

  const std::string instance = opts.instance.empty()
                                   ? make_instance_token(opts.worker_id)
                                   : opts.instance;
  const std::string cpath = claim_path(opts.manifest_dir, opts.worker_id);
  const ClaimResult claim =
      try_claim(cpath, opts.worker_id, instance, opts.stale_after_s);
  if (claim.outcome == ClaimOutcome::kHeldByLive) {
    report.outcome = WorkerOutcome::kLostClaim;
    if (claim.holder) {
      report.holder = util::format("worker %u (%s)", claim.holder->worker,
                                   claim.holder->instance.c_str());
    } else {
      report.holder = "unknown holder";
    }
    return report;
  }

  // Baseline counter snapshot: the published deltas are
  // (end - baseline), so a merge folds in exactly the increments this
  // slice caused -- correct even when test harnesses run several
  // workers sequentially in one process.
  std::map<std::string, std::uint64_t> baseline;
  for (const auto& [name, value] : obs::registry().counter_values()) {
    baseline[name] = value;
  }

  const Assignment& assignment = manifest.assignments[opts.worker_id];
  std::vector<SystemWork> works;
  works.reserve(assignment.slices.size());
  std::vector<Job> jobs;
  {
    obs::Span plan_span("dist_worker_setup");
    for (const Slice& slice : assignment.slices) {
      SystemWork work;
      work.sim =
          std::make_unique<sim::Simulator>(slice.system, manifest.options.sim);
      work.engine =
          std::make_unique<tag::TagEngine>(tag::build_ruleset(slice.system));
      work.shards =
          work.sim->event_shards(manifest.options.pipeline.chunk_events);
      work.ctx.simulator = work.sim.get();
      work.ctx.engine = work.engine.get();
      work.ctx.system = slice.system;
      work.ctx.num_categories = tag::categories_of(slice.system).size();
      work.ctx.collect_source_tallies =
          manifest.options.pipeline.collect_source_tallies;
      for (const ChunkRange& range : slice.ranges) {
        for (std::uint64_t c = range.begin; c < range.end; ++c) {
          work.chunk_ids.push_back(c);
        }
      }
      work.partials.resize(work.chunk_ids.size());
      const std::size_t work_idx = works.size();
      for (std::size_t pos = 0; pos < work.chunk_ids.size(); ++pos) {
        jobs.push_back({work_idx, pos});
      }
      works.push_back(std::move(work));
    }
  }

  const int workers =
      std::min<int>(resolved_threads(opts.threads),
                    static_cast<int>(std::max<std::size_t>(jobs.size(), 1)));
  std::mutex heartbeat_mu;
  const auto process_job = [&](const Job& job,
                               match::MatchScratch& scratch,
                               tag::TagMetricsFlusher& flusher) {
    SystemWork& work = works[job.work];
    const auto chunk = work.chunk_ids[job.pos];
    const auto& shard = work.shards[chunk];
    work.partials[job.pos] =
        core::detail::process_chunk(work.ctx, shard.begin, shard.end, scratch);
    flusher.flush(scratch);
    {
      // The claim mtime is the liveness signal; refresh it as chunks
      // complete so long slices survive aggressive --stale-after.
      std::lock_guard<std::mutex> lock(heartbeat_mu);
      heartbeat(cpath);
    }
  };

  {
    obs::Span span("dist_worker_chunks");
    if (workers <= 1) {
      match::MatchScratch scratch;
      tag::TagMetricsFlusher flusher;
      for (const Job& job : jobs) process_job(job, scratch, flusher);
    } else {
      std::atomic<std::size_t> next{0};
      std::atomic<bool> failed{false};
      std::exception_ptr first_error;
      std::mutex error_mu;
      {
        std::vector<std::jthread> pool;
        pool.reserve(static_cast<std::size_t>(workers));
        for (int w = 0; w < workers; ++w) {
          pool.emplace_back([&] {
            match::MatchScratch scratch;
            tag::TagMetricsFlusher flusher;
            while (true) {
              const std::size_t i =
                  next.fetch_add(1, std::memory_order_relaxed);
              if (i >= jobs.size()) return;
              if (failed.load(std::memory_order_relaxed)) continue;
              try {
                process_job(jobs[i], scratch, flusher);
              } catch (...) {
                std::lock_guard<std::mutex> lock(error_mu);
                if (!failed.exchange(true)) {
                  first_error = std::current_exception();
                }
              }
            }
          });
        }
      }
      if (failed.load()) std::rethrow_exception(first_error);
    }
  }

  PartialFile partial;
  partial.assignment = opts.worker_id;
  partial.worker = opts.worker_id;
  partial.instance = instance;
  for (SystemWork& work : works) {
    SystemPartial sys;
    sys.system = work.ctx.system;
    sys.chunks.reserve(work.chunk_ids.size());
    for (std::size_t pos = 0; pos < work.chunk_ids.size(); ++pos) {
      const auto chunk = work.chunk_ids[pos];
      report.events += work.shards[chunk].end - work.shards[chunk].begin;
      sys.chunks.push_back({chunk, std::move(work.partials[pos])});
    }
    report.chunks += sys.chunks.size();
    partial.systems.push_back(std::move(sys));
  }
  for (const auto& [name, value] : obs::registry().counter_values()) {
    const auto it = baseline.find(name);
    const std::uint64_t before = it == baseline.end() ? 0 : it->second;
    if (value > before) partial.counter_deltas.emplace_back(name, value - before);
  }
  write_partial(partial, ppath);
  report.outcome = WorkerOutcome::kCompleted;
  return report;
}

}  // namespace wss::dist
