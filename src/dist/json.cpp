#include "dist/json.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <stdexcept>

#include "util/strings.hpp"

namespace wss::dist {

namespace {

[[noreturn]] void type_error(const char* wanted, JsonValue::Type got) {
  static constexpr const char* kNames[] = {"null",   "bool",  "number",
                                           "string", "array", "object"};
  throw std::runtime_error(util::format("json: expected %s, got %s", wanted,
                                        kNames[static_cast<int>(got)]));
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue document() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error(
        util::format("json: %s at offset %zu", what.c_str(), pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(util::format("expected '%c'", c));
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{':
        return object();
      case '[':
        return array();
      case '"': {
        JsonValue v;
        v.type = JsonValue::Type::kString;
        v.string = string();
        return v;
      }
      case 't': {
        if (!consume_literal("true")) fail("bad literal");
        JsonValue v;
        v.type = JsonValue::Type::kBool;
        v.boolean = true;
        return v;
      }
      case 'f': {
        if (!consume_literal("false")) fail("bad literal");
        JsonValue v;
        v.type = JsonValue::Type::kBool;
        v.boolean = false;
        return v;
      }
      case 'n': {
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      }
      default:
        return number();
    }
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    const std::size_t digits_start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == digits_start) fail("bad number");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    v.number = std::string(text_.substr(start, pos_ - start));
    return v;
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          // Manifest strings are ASCII; accept \uXXXX but only the
          // ASCII range (anything else would have to be a hand-edit
          // this format never produces).
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          if (code > 0x7f) fail("non-ASCII \\u escape unsupported");
          out += static_cast<char>(code);
          break;
        }
        default:
          fail("bad escape");
      }
    }
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.object[std::move(key)] = value();
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool JsonValue::as_bool() const {
  if (type != Type::kBool) type_error("bool", type);
  return boolean;
}

std::uint64_t JsonValue::as_u64() const {
  if (type != Type::kNumber) type_error("number", type);
  errno = 0;
  char* end = nullptr;
  if (!number.empty() && number[0] == '-') {
    throw std::runtime_error("json: negative value where unsigned expected");
  }
  const unsigned long long v = std::strtoull(number.c_str(), &end, 10);
  if (errno != 0 || end == number.c_str() || *end != '\0') {
    throw std::runtime_error("json: not a u64: " + number);
  }
  return static_cast<std::uint64_t>(v);
}

std::int64_t JsonValue::as_i64() const {
  if (type != Type::kNumber) type_error("number", type);
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(number.c_str(), &end, 10);
  if (errno != 0 || end == number.c_str() || *end != '\0') {
    throw std::runtime_error("json: not an i64: " + number);
  }
  return static_cast<std::int64_t>(v);
}

double JsonValue::as_double() const {
  if (type != Type::kNumber) type_error("number", type);
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(number.c_str(), &end);
  if (end == number.c_str() || *end != '\0') {
    throw std::runtime_error("json: not a number: " + number);
  }
  return v;
}

const std::string& JsonValue::as_string() const {
  if (type != Type::kString) type_error("string", type);
  return string;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  if (type != Type::kArray) type_error("array", type);
  return array;
}

const std::map<std::string, JsonValue>& JsonValue::as_object() const {
  if (type != Type::kObject) type_error("object", type);
  return object;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* v = find(key);
  if (v == nullptr) {
    throw std::runtime_error("json: missing key: " + std::string(key));
  }
  return *v;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type != Type::kObject) type_error("object", type);
  const auto it = object.find(std::string(key));
  return it == object.end() ? nullptr : &it->second;
}

JsonValue parse_json(std::string_view text) { return Parser(text).document(); }

std::string json_quote(std::string_view s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += util::format("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace wss::dist
