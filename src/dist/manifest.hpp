// Versioned study manifests for distributed execution.
//
// `wss study --split-by ... --manifest-dir DIR` plans a study once and
// writes DIR/study.json (the shared configuration: format version,
// split axis, sim options, per-system chunk counts) plus one
// DIR/assignment_NNN.json per split describing exactly which
// (system, chunk-range) slices that assignment covers. Workers and the
// merger both reload the manifest from disk, so the manifest is the
// *entire* coordination contract -- there is no network protocol, only
// a shared directory.
//
// Work units are whole pipeline chunks (PipelineOptions::chunk_events
// events), never individual events: the pipeline's determinism
// contract says results are reproduced bit-exactly only when partials
// are folded in chunk-index order over identical chunk boundaries
// (see core/pipeline.hpp). Any partition of chunks -- by system, by
// time range, by dominant category -- merges back to the
// single-process bytes; a partition of *events* would not.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/study.hpp"
#include "parse/record.hpp"

namespace wss::dist {

/// Format tag in every manifest file; loaders reject anything else
/// with a one-line diagnostic (exit 1 at the CLI).
inline constexpr std::string_view kManifestFormat = "wss.dist.v1";
inline constexpr std::uint32_t kManifestVersion = 1;

/// How the (system, chunk) work-unit space is partitioned.
enum class SplitAxis : std::uint8_t {
  kSystem,    ///< whole systems round-robined across assignments
  kCategory,  ///< chunks routed by dominant ground-truth category
  kTime,      ///< each system's chunk sequence cut into contiguous runs
};

std::string_view split_axis_name(SplitAxis axis);
std::optional<SplitAxis> parse_split_axis(std::string_view name);

/// Half-open chunk-index range [begin, end) within one system.
struct ChunkRange {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
};

/// The chunk ranges of one system owned by one assignment. Ranges are
/// ascending and non-overlapping.
struct Slice {
  parse::SystemId system = parse::SystemId::kBlueGeneL;
  std::vector<ChunkRange> ranges;

  std::uint64_t chunk_count() const;
};

/// One unit of claimable work: what a single `wss worker` run computes.
struct Assignment {
  std::uint32_t id = 0;
  std::vector<Slice> slices;  ///< manifest system order; may be empty
};

/// The full plan: study.json plus every assignment.
struct StudyManifest {
  SplitAxis axis = SplitAxis::kTime;
  std::uint32_t num_splits = 1;
  core::StudyOptions options;
  std::vector<parse::SystemId> systems;      ///< systems this study covers
  std::vector<std::uint64_t> chunk_counts;   ///< parallel to `systems`
  std::vector<Assignment> assignments;       ///< size == num_splits

  /// Chunk count for one covered system; throws if not covered.
  std::uint64_t chunks_of(parse::SystemId id) const;
};

// ---- Directory layout ----
std::string study_json_path(const std::string& dir);
std::string assignment_json_path(const std::string& dir, std::uint32_t id);
std::string claim_path(const std::string& dir, std::uint32_t id);
std::string partial_path(const std::string& dir, std::uint32_t id);

/// Writes study.json + assignment_NNN.json into `dir` (created if
/// needed). Throws std::runtime_error on I/O failure.
void write_manifest(const StudyManifest& manifest, const std::string& dir);

/// Loads and validates a manifest directory. Throws std::runtime_error
/// with a one-line message on missing files, malformed JSON, unknown
/// format/version, or internally inconsistent assignments (overlap,
/// out-of-range chunks, wrong count).
StudyManifest load_manifest(const std::string& dir);

}  // namespace wss::dist
