#include "dist/claim.hpp"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/strings.hpp"

namespace wss::dist {

namespace fs = std::filesystem;

namespace {

void write_claim_file(const std::string& path, std::uint32_t worker_id,
                      const std::string& instance) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) throw std::runtime_error("claim: cannot open " + path);
  os << "wss-claim v1\n"
     << "worker " << worker_id << "\n"
     << "instance " << instance << "\n";
  if (!os.flush()) throw std::runtime_error("claim: write failed: " + path);
}

}  // namespace

std::string make_instance_token(std::uint32_t worker_id) {
  static std::atomic<std::uint64_t> next{0};
  const auto ticks = static_cast<unsigned long long>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  return util::format("w%u.p%d.%llu.%llu", worker_id,
                      static_cast<int>(::getpid()),
                      static_cast<unsigned long long>(
                          next.fetch_add(1, std::memory_order_relaxed)),
                      ticks);
}

ClaimResult try_claim(const std::string& claim_path, std::uint32_t worker_id,
                      const std::string& instance, double stale_after_s) {
  const fs::path claim(claim_path);
  std::error_code ec;
  fs::create_directories(claim.parent_path(), ec);
  if (ec) {
    throw std::runtime_error("claim: cannot create " +
                             claim.parent_path().string() + ": " +
                             ec.message());
  }

  // The claim body is staged in a per-instance tmp file and published
  // with link(2): hard-link creation is the atomic compare-and-claim.
  const std::string tmp_path = claim_path + "." + instance + ".tmp";
  write_claim_file(tmp_path, worker_id, instance);

  ClaimResult result;
  for (int attempt = 0; attempt < 8; ++attempt) {
    fs::create_hard_link(tmp_path, claim_path, ec);
    if (!ec) {
      fs::remove(tmp_path, ec);
      result.outcome = ClaimOutcome::kClaimed;
      heartbeat(claim_path);
      return result;
    }
    if (ec != std::errc::file_exists) {
      fs::remove(tmp_path, ec);
      throw std::runtime_error("claim: cannot publish " + claim_path + ": " +
                               ec.message());
    }
    const auto age = claim_age_seconds(claim_path);
    if (!age) continue;  // holder vanished between link and stat; retry
    if (*age < stale_after_s) {
      result.outcome = ClaimOutcome::kHeldByLive;
      result.holder = read_claim(claim_path);
      fs::remove(tmp_path, ec);
      return result;
    }
    // Heartbeat is dead: take over. remove+link is NOT atomic as a
    // pair -- see the file comment for why the residual race is
    // benign -- but the link itself still admits at most one winner
    // per removal.
    fs::remove(claim_path, ec);
  }
  result.outcome = ClaimOutcome::kHeldByLive;
  result.holder = read_claim(claim_path);
  fs::remove(tmp_path, ec);
  return result;
}

void heartbeat(const std::string& claim_path) {
  std::error_code ec;
  fs::last_write_time(claim_path, fs::file_time_type::clock::now(), ec);
}

std::optional<ClaimInfo> read_claim(const std::string& claim_path) {
  std::ifstream is(claim_path, std::ios::binary);
  if (!is) return std::nullopt;
  std::string magic;
  if (!std::getline(is, magic) || magic != "wss-claim v1") return std::nullopt;
  ClaimInfo info;
  std::string line;
  while (std::getline(is, line)) {
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "worker") {
      ls >> info.worker;
    } else if (key == "instance") {
      ls >> info.instance;
    }
  }
  return info;
}

std::optional<double> claim_age_seconds(const std::string& claim_path) {
  std::error_code ec;
  const auto mtime = fs::last_write_time(claim_path, ec);
  if (ec) return std::nullopt;
  const auto now = fs::file_time_type::clock::now();
  const auto delta =
      std::chrono::duration_cast<std::chrono::duration<double>>(now - mtime);
  return delta.count();
}

}  // namespace wss::dist
