// Study planning: cut the (system, chunk) work-unit space into N
// claimable assignments along one axis.
//
// All three axes partition *chunks*, never events, because chunk
// boundaries and fold order are the pipeline's determinism contract
// (core/pipeline.hpp). The axes differ only in how chunks are routed:
//
//   system    whole systems, round-robin by position in the system
//             list (assignment = index % N). Mirrors "one machine per
//             supercomputer" operation.
//   time      each system's chunk sequence [0, C) is cut into N
//             contiguous runs [floor(i*C/N), floor((i+1)*C/N)).
//             Chunks are time-ordered, so this is a wall-clock split
//             of each log.
//   category  each chunk is routed by its dominant ground-truth alert
//             category: assignment = (dominant + 1) % N, where
//             chatter-only chunks (dominant = -1) land on assignment 0
//             and ties pick the smallest category id. Exercises an
//             adversarial, content-dependent partition -- slices
//             interleave at chunk granularity -- while remaining a
//             pure function of the simulated stream.
//
// Every assignment 0..N-1 exists even when its slice set is empty
// (e.g. --split-by system with N > #systems): workers still claim it
// and publish an empty partial, so the merge completeness check stays
// uniform.
#pragma once

#include <vector>

#include "dist/manifest.hpp"

namespace wss::dist {

struct SplitOptions {
  SplitAxis axis = SplitAxis::kTime;
  std::uint32_t num_splits = 1;
  core::StudyOptions study;
  /// Systems to cover, in manifest order. Empty = all five.
  std::vector<parse::SystemId> systems;
};

/// Builds the full plan. Instantiates each covered system's simulator
/// (to count chunks and, for the category axis, to read per-chunk
/// dominant categories). Throws std::invalid_argument on num_splits
/// == 0.
StudyManifest plan_split(const SplitOptions& opts);

}  // namespace wss::dist
