// One worker run: claim an assignment, compute its chunk partials,
// publish them atomically.
//
// A worker is idempotent and restartable: if a checksum-valid partial
// for its assignment already exists it exits immediately (the work
// survived a previous run); if another worker's claim heartbeat is
// fresh it backs off (exit 3 at the CLI); if the claim is stale it
// takes over and reruns. Because chunk partials are pure functions of
// the manifest options, any two runs of the same assignment publish
// byte-identical partials -- which is what makes every race in the
// claim protocol benign.
#pragma once

#include <cstdint>
#include <string>

#include "dist/manifest.hpp"

namespace wss::dist {

struct WorkerOptions {
  std::string manifest_dir;
  std::uint32_t worker_id = 0;
  /// Claim heartbeats older than this are considered dead and may be
  /// taken over; <= 0 treats every claim as stale (forced rerun).
  double stale_after_s = 300.0;
  /// Worker threads for chunk processing. 1 = serial; 0 = hardware
  /// concurrency. Thread count never affects the published bytes.
  int threads = 1;
  /// Claim-file instance token; empty = generate (tests pass explicit
  /// tokens to stage deterministic races).
  std::string instance;
};

enum class WorkerOutcome : std::uint8_t {
  kCompleted,        ///< partial computed and published
  kAlreadyComplete,  ///< a valid partial already existed; nothing to do
  kLostClaim,        ///< held by a live worker; backed off
};

struct WorkerReport {
  WorkerOutcome outcome = WorkerOutcome::kCompleted;
  std::uint64_t chunks = 0;  ///< chunks this run processed
  std::uint64_t events = 0;  ///< events this run processed
  std::string holder;        ///< "worker N (instance)" when kLostClaim
};

/// Runs worker `opts.worker_id` against a loaded manifest. Throws
/// std::invalid_argument when the id is out of range and
/// std::runtime_error on I/O failure.
WorkerReport run_worker(const StudyManifest& manifest,
                        const WorkerOptions& opts);

}  // namespace wss::dist
