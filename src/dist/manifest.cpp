#include "dist/manifest.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "dist/json.hpp"
#include "util/strings.hpp"

namespace wss::dist {

namespace {

std::optional<parse::SystemId> system_from_short_name(std::string_view name) {
  for (const auto id : parse::kAllSystems) {
    if (parse::system_short_name(id) == name) return id;
  }
  return std::nullopt;
}

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("manifest: cannot open " + path);
  std::ostringstream ss;
  ss << is.rdbuf();
  if (is.bad()) throw std::runtime_error("manifest: read failed: " + path);
  return std::move(ss).str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) throw std::runtime_error("manifest: cannot open " + path);
  os << content;
  if (!os.flush()) throw std::runtime_error("manifest: write failed: " + path);
}

/// Rejects documents whose format/version tags this build does not
/// speak. Kept as one helper so study.json and assignment files fail
/// with identical wording.
void check_format(const JsonValue& doc, const std::string& path) {
  const std::string& format = doc.at("format").as_string();
  if (format != kManifestFormat) {
    throw std::runtime_error(
        util::format("manifest: %s: unknown format \"%s\" (expected %s)",
                     path.c_str(), format.c_str(),
                     std::string(kManifestFormat).c_str()));
  }
  const std::uint64_t version = doc.at("version").as_u64();
  if (version != kManifestVersion) {
    throw std::runtime_error(util::format(
        "manifest: %s: unsupported version %llu (expected %u)", path.c_str(),
        static_cast<unsigned long long>(version), kManifestVersion));
  }
}

std::string render_study_json(const StudyManifest& m) {
  std::string out = "{\n";
  out += util::format("  \"format\": %s,\n",
                      json_quote(kManifestFormat).c_str());
  out += util::format("  \"version\": %u,\n", kManifestVersion);
  out += util::format("  \"split_by\": %s,\n",
                      json_quote(split_axis_name(m.axis)).c_str());
  out += util::format("  \"num_splits\": %u,\n", m.num_splits);
  const auto& sim = m.options.sim;
  out += "  \"study\": {\n";
  out += util::format("    \"seed\": %llu,\n",
                      static_cast<unsigned long long>(sim.seed));
  out += util::format("    \"category_cap\": %llu,\n",
                      static_cast<unsigned long long>(sim.category_cap));
  out += util::format("    \"chatter_events\": %llu,\n",
                      static_cast<unsigned long long>(sim.chatter_events));
  out += util::format("    \"inject_corruption\": %s,\n",
                      sim.inject_corruption ? "true" : "false");
  out += util::format("    \"threshold_us\": %lld,\n",
                      static_cast<long long>(sim.threshold_us));
  out += util::format("    \"chunk_events\": %llu,\n",
                      static_cast<unsigned long long>(
                          m.options.pipeline.chunk_events));
  out += util::format("    \"collect_source_tallies\": %s\n",
                      m.options.pipeline.collect_source_tallies ? "true"
                                                                : "false");
  out += "  },\n";
  out += "  \"systems\": [\n";
  for (std::size_t i = 0; i < m.systems.size(); ++i) {
    out += util::format(
        "    {\"name\": %s, \"chunks\": %llu}%s\n",
        json_quote(parse::system_short_name(m.systems[i])).c_str(),
        static_cast<unsigned long long>(m.chunk_counts[i]),
        i + 1 < m.systems.size() ? "," : "");
  }
  out += "  ]\n}\n";
  return out;
}

std::string render_assignment_json(const Assignment& a) {
  std::string out = "{\n";
  out += util::format("  \"format\": %s,\n",
                      json_quote(kManifestFormat).c_str());
  out += util::format("  \"version\": %u,\n", kManifestVersion);
  out += util::format("  \"id\": %u,\n", a.id);
  out += "  \"slices\": [\n";
  for (std::size_t s = 0; s < a.slices.size(); ++s) {
    const Slice& slice = a.slices[s];
    out += util::format(
        "    {\"system\": %s, \"ranges\": [",
        json_quote(parse::system_short_name(slice.system)).c_str());
    for (std::size_t r = 0; r < slice.ranges.size(); ++r) {
      out += util::format("[%llu, %llu]%s",
                          static_cast<unsigned long long>(
                              slice.ranges[r].begin),
                          static_cast<unsigned long long>(slice.ranges[r].end),
                          r + 1 < slice.ranges.size() ? ", " : "");
    }
    out += util::format("]}%s\n", s + 1 < a.slices.size() ? "," : "");
  }
  out += "  ]\n}\n";
  return out;
}

Assignment parse_assignment_json(const JsonValue& doc, const std::string& path,
                                 const StudyManifest& m) {
  Assignment a;
  a.id = static_cast<std::uint32_t>(doc.at("id").as_u64());
  for (const JsonValue& js : doc.at("slices").as_array()) {
    Slice slice;
    const std::string& name = js.at("system").as_string();
    const auto id = system_from_short_name(name);
    if (!id) {
      throw std::runtime_error(
          util::format("manifest: %s: unknown system \"%s\"", path.c_str(),
                       name.c_str()));
    }
    slice.system = *id;
    const std::uint64_t total = m.chunks_of(slice.system);
    std::uint64_t prev_end = 0;
    bool first = true;
    for (const JsonValue& jr : js.at("ranges").as_array()) {
      const auto& pair = jr.as_array();
      if (pair.size() != 2) {
        throw std::runtime_error("manifest: " + path +
                                 ": range is not a [begin, end) pair");
      }
      ChunkRange range{pair[0].as_u64(), pair[1].as_u64()};
      if (range.begin >= range.end || range.end > total ||
          (!first && range.begin < prev_end)) {
        throw std::runtime_error(util::format(
            "manifest: %s: bad chunk range [%llu, %llu) for %s (%llu chunks)",
            path.c_str(), static_cast<unsigned long long>(range.begin),
            static_cast<unsigned long long>(range.end), name.c_str(),
            static_cast<unsigned long long>(total)));
      }
      prev_end = range.end;
      first = false;
      slice.ranges.push_back(range);
    }
    if (!slice.ranges.empty()) a.slices.push_back(std::move(slice));
  }
  return a;
}

/// Every covered system's chunk space [0, C) must be tiled exactly
/// once by the union of all assignments -- the merge-order determinism
/// guarantee is meaningless over a partition with holes or overlaps.
void check_exact_partition(const StudyManifest& m, const std::string& dir) {
  for (std::size_t i = 0; i < m.systems.size(); ++i) {
    std::vector<ChunkRange> ranges;
    for (const Assignment& a : m.assignments) {
      for (const Slice& slice : a.slices) {
        if (slice.system != m.systems[i]) continue;
        ranges.insert(ranges.end(), slice.ranges.begin(), slice.ranges.end());
      }
    }
    std::sort(ranges.begin(), ranges.end(),
              [](const ChunkRange& a, const ChunkRange& b) {
                return a.begin < b.begin;
              });
    std::uint64_t next = 0;
    for (const ChunkRange& r : ranges) {
      if (r.begin != next) {
        throw std::runtime_error(util::format(
            "manifest: %s: assignments do not partition %s chunks (gap or "
            "overlap at chunk %llu)",
            dir.c_str(),
            std::string(parse::system_short_name(m.systems[i])).c_str(),
            static_cast<unsigned long long>(next)));
      }
      next = r.end;
    }
    if (next != m.chunk_counts[i]) {
      throw std::runtime_error(util::format(
          "manifest: %s: assignments cover %llu of %llu %s chunks",
          dir.c_str(), static_cast<unsigned long long>(next),
          static_cast<unsigned long long>(m.chunk_counts[i]),
          std::string(parse::system_short_name(m.systems[i])).c_str()));
    }
  }
}

}  // namespace

std::string_view split_axis_name(SplitAxis axis) {
  switch (axis) {
    case SplitAxis::kSystem: return "system";
    case SplitAxis::kCategory: return "category";
    case SplitAxis::kTime: return "time";
  }
  return "unknown";
}

std::optional<SplitAxis> parse_split_axis(std::string_view name) {
  if (name == "system") return SplitAxis::kSystem;
  if (name == "category") return SplitAxis::kCategory;
  if (name == "time") return SplitAxis::kTime;
  return std::nullopt;
}

std::uint64_t Slice::chunk_count() const {
  std::uint64_t n = 0;
  for (const ChunkRange& r : ranges) n += r.end - r.begin;
  return n;
}

std::uint64_t StudyManifest::chunks_of(parse::SystemId id) const {
  for (std::size_t i = 0; i < systems.size(); ++i) {
    if (systems[i] == id) return chunk_counts[i];
  }
  throw std::runtime_error(
      util::format("manifest: system %s not covered by this study",
                   std::string(parse::system_short_name(id)).c_str()));
}

std::string study_json_path(const std::string& dir) {
  return dir + "/study.json";
}

std::string assignment_json_path(const std::string& dir, std::uint32_t id) {
  return dir + util::format("/assignment_%03u.json", id);
}

std::string claim_path(const std::string& dir, std::uint32_t id) {
  return dir + util::format("/claims/assignment_%03u.claim", id);
}

std::string partial_path(const std::string& dir, std::uint32_t id) {
  return dir + util::format("/partials/assignment_%03u.partial", id);
}

void write_manifest(const StudyManifest& manifest, const std::string& dir) {
  std::filesystem::create_directories(dir);
  write_file(study_json_path(dir), render_study_json(manifest));
  for (const Assignment& a : manifest.assignments) {
    write_file(assignment_json_path(dir, a.id), render_assignment_json(a));
  }
}

StudyManifest load_manifest(const std::string& dir) {
  const std::string study_path = study_json_path(dir);
  JsonValue doc;
  try {
    doc = parse_json(read_file(study_path));
  } catch (const std::runtime_error& e) {
    throw std::runtime_error(study_path + ": " + e.what());
  }
  check_format(doc, study_path);

  StudyManifest m;
  const std::string& axis_name = doc.at("split_by").as_string();
  const auto axis = parse_split_axis(axis_name);
  if (!axis) {
    throw std::runtime_error(util::format("manifest: %s: unknown split axis "
                                          "\"%s\"",
                                          study_path.c_str(),
                                          axis_name.c_str()));
  }
  m.axis = *axis;
  m.num_splits = static_cast<std::uint32_t>(doc.at("num_splits").as_u64());
  if (m.num_splits == 0) {
    throw std::runtime_error("manifest: " + study_path + ": num_splits is 0");
  }

  const JsonValue& study = doc.at("study");
  m.options.sim.seed = study.at("seed").as_u64();
  m.options.sim.category_cap = study.at("category_cap").as_u64();
  m.options.sim.chatter_events = study.at("chatter_events").as_u64();
  m.options.sim.inject_corruption = study.at("inject_corruption").as_bool();
  m.options.sim.threshold_us = study.at("threshold_us").as_i64();
  m.options.pipeline.chunk_events =
      static_cast<std::size_t>(study.at("chunk_events").as_u64());
  if (m.options.pipeline.chunk_events == 0) {
    throw std::runtime_error("manifest: " + study_path + ": chunk_events is 0");
  }
  m.options.pipeline.collect_source_tallies =
      study.at("collect_source_tallies").as_bool();

  for (const JsonValue& js : doc.at("systems").as_array()) {
    const std::string& name = js.at("name").as_string();
    const auto id = system_from_short_name(name);
    if (!id) {
      throw std::runtime_error(util::format(
          "manifest: %s: unknown system \"%s\"", study_path.c_str(),
          name.c_str()));
    }
    if (std::find(m.systems.begin(), m.systems.end(), *id) !=
        m.systems.end()) {
      throw std::runtime_error(util::format(
          "manifest: %s: duplicate system \"%s\"", study_path.c_str(),
          name.c_str()));
    }
    m.systems.push_back(*id);
    m.chunk_counts.push_back(js.at("chunks").as_u64());
  }
  if (m.systems.empty()) {
    throw std::runtime_error("manifest: " + study_path + ": no systems");
  }

  m.assignments.reserve(m.num_splits);
  for (std::uint32_t id = 0; id < m.num_splits; ++id) {
    const std::string path = assignment_json_path(dir, id);
    JsonValue adoc;
    try {
      adoc = parse_json(read_file(path));
    } catch (const std::runtime_error& e) {
      throw std::runtime_error(path + ": " + e.what());
    }
    check_format(adoc, path);
    Assignment a = parse_assignment_json(adoc, path, m);
    if (a.id != id) {
      throw std::runtime_error(util::format(
          "manifest: %s: assignment id %u does not match file name (%u)",
          path.c_str(), a.id, id));
    }
    m.assignments.push_back(std::move(a));
  }
  check_exact_partition(m, dir);
  return m;
}

}  // namespace wss::dist
