#include "dist/merge.hpp"

#include <algorithm>
#include <filesystem>
#include <map>
#include <utility>

#include "core/golden.hpp"
#include "dist/partial.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "tag/rulesets.hpp"
#include "util/strings.hpp"

namespace wss::dist {

namespace {

/// The exact (system, chunk) set an assignment owes, per the manifest.
std::vector<std::pair<parse::SystemId, std::uint64_t>> expected_chunks(
    const Assignment& a) {
  std::vector<std::pair<parse::SystemId, std::uint64_t>> out;
  for (const Slice& slice : a.slices) {
    for (const ChunkRange& range : slice.ranges) {
      for (std::uint64_t c = range.begin; c < range.end; ++c) {
        out.emplace_back(slice.system, c);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<parse::SystemId, std::uint64_t>> actual_chunks(
    const PartialFile& p) {
  std::vector<std::pair<parse::SystemId, std::uint64_t>> out;
  for (const SystemPartial& sys : p.systems) {
    for (const ChunkPartial& chunk : sys.chunks) {
      out.emplace_back(sys.system, chunk.chunk);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string id_list(const std::vector<std::uint32_t>& ids) {
  std::string out = "[";
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) out += ' ';
    out += util::format("%u", ids[i]);
  }
  out += ']';
  return out;
}

}  // namespace

std::string MergeReport::describe_failure() const {
  std::string out = "merge: study incomplete:";
  if (!missing.empty()) {
    out += " missing assignments " + id_list(missing);
  }
  if (!corrupt.empty()) {
    if (!missing.empty()) out += ";";
    out += " corrupt partials " + id_list(corrupt);
  }
  out += " (rerun `wss worker <id>` for each, then merge again)";
  return out;
}

MergeReport run_merge(const StudyManifest& manifest,
                      const MergeOptions& opts) {
  MergeReport report;
  report.out_dir = opts.out_dir.empty() ? opts.manifest_dir + "/merged"
                                        : opts.out_dir;

  // ---- Validate every assignment's partial before folding anything.
  std::vector<PartialFile> partials;
  partials.reserve(manifest.assignments.size());
  for (const Assignment& a : manifest.assignments) {
    const std::string path = partial_path(opts.manifest_dir, a.id);
    if (!std::filesystem::exists(path)) {
      report.missing.push_back(a.id);
      continue;
    }
    PartialFile p;
    try {
      p = read_partial(path);
    } catch (const std::exception&) {
      report.corrupt.push_back(a.id);
      continue;
    }
    // A partial that parses but does not cover exactly this
    // assignment's chunk set is from a different plan (or a bug);
    // folding it would silently corrupt the study.
    if (p.assignment != a.id || actual_chunks(p) != expected_chunks(a)) {
      report.corrupt.push_back(a.id);
      continue;
    }
    partials.push_back(std::move(p));
  }
  if (!report.ok()) return report;

  // ---- Fold chunk partials per system in global chunk-index order --
  // the order the determinism contract hangs on.
  obs::Counter& chunks_counter = core::detail::PipelineCounters::get().chunks;
  core::Study study(manifest.options);
  {
    obs::Span merge_span("dist_merge_fold");
    for (std::size_t i = 0; i < manifest.systems.size(); ++i) {
      const parse::SystemId system = manifest.systems[i];
      std::map<std::uint64_t, core::PipelineResult> by_chunk;
      for (PartialFile& p : partials) {
        for (SystemPartial& sys : p.systems) {
          if (sys.system != system) continue;
          for (ChunkPartial& chunk : sys.chunks) {
            by_chunk.emplace(chunk.chunk, std::move(chunk.result));
          }
        }
      }
      core::PipelineResult acc;
      acc.system = system;
      const std::size_t num_categories = tag::categories_of(system).size();
      acc.weighted_alert_counts.assign(num_categories, 0.0);
      acc.physical_alert_counts.assign(num_categories, 0);
      for (auto& [chunk, result] : by_chunk) {
        core::detail::merge_partial(acc, std::move(result));
        chunks_counter.inc();
        ++report.chunks;
      }
      core::detail::finalize_result(acc);
      study.adopt_result(system, std::move(acc));
      report.covered.push_back(system);
    }
  }

  // ---- Fold worker counter deltas so --metrics matches one process.
  for (const PartialFile& p : partials) {
    for (const auto& [name, delta] : p.counter_deltas) {
      obs::registry().add_counter(name, delta);
    }
  }

  // ---- Render every artifact the covered systems can produce.
  {
    obs::Span render_span("dist_merge_render");
    report.artifacts = core::write_artifacts(
        study, report.out_dir, [&](const core::GoldenArtifact& artifact) {
          for (const parse::SystemId need : artifact.needs) {
            if (std::find(report.covered.begin(), report.covered.end(),
                          need) == report.covered.end()) {
              return false;
            }
          }
          return true;
        });
  }
  return report;
}

}  // namespace wss::dist
