// Minimal JSON value + recursive-descent parser for the distributed
// study manifests.
//
// Manifests are the one place this repo speaks JSON (so operators can
// inspect and hand-edit a study with standard tools), and pulling in a
// JSON library for two small documents is not worth a dependency. The
// subset here is exactly what the manifest writer emits -- objects,
// arrays, strings, integers, booleans -- plus enough tolerance
// (whitespace, nested containers, escape sequences) that a hand-edited
// or pretty-printed manifest still loads.
//
// Numbers keep their raw source text: manifest fields include u64
// seeds, and round-tripping those through double would silently lose
// bits above 2^53.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace wss::dist {

/// One parsed JSON value. A tagged struct rather than std::variant:
/// the accessors throw descriptive std::runtime_error on type
/// mismatch, which is the error-handling story for corrupt manifests
/// (one-line diagnostic, exit 1).
struct JsonValue {
  enum class Type : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  Type type = Type::kNull;
  bool boolean = false;
  std::string number;  ///< raw source text, e.g. "42" or "-1.5e3"
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_null() const { return type == Type::kNull; }

  /// Typed accessors; throw std::runtime_error naming the expected
  /// type on mismatch (or on numbers that do not fit the target).
  bool as_bool() const;
  std::uint64_t as_u64() const;
  std::int64_t as_i64() const;
  double as_double() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& as_array() const;
  const std::map<std::string, JsonValue>& as_object() const;

  /// Object member lookup; throws std::runtime_error("missing key: x")
  /// when absent. `find` returns nullptr instead.
  const JsonValue& at(std::string_view key) const;
  const JsonValue* find(std::string_view key) const;
};

/// Parses one JSON document (must consume all non-whitespace input).
/// Throws std::runtime_error with a byte offset on malformed input.
JsonValue parse_json(std::string_view text);

/// Serializes a string with JSON escaping, including the quotes.
std::string json_quote(std::string_view s);

}  // namespace wss::dist
