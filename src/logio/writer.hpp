// Writing simulated logs to disk, the way the collection servers do.
//
// Section 3.1: the syslog-ng servers "place them in a directory
// structure according to the source node"; the study also reports
// gzip-compressed sizes. LogWriter supports both layouts (single file
// or per-source directory) and optional compression with the wss
// codec (.wsc files).
#pragma once

#include <filesystem>
#include <string>

#include "sim/generator.hpp"

namespace wss::logio {

/// On-disk layout options.
struct WriteOptions {
  bool compressed = false;     ///< write a .wsc (wss codec) file
  bool per_source_dirs = false;///< syslog-ng style: <dir>/<source>/messages
};

/// Result of a write.
struct WriteResult {
  std::uintmax_t bytes_written = 0;
  std::size_t lines = 0;
  std::size_t files = 0;
};

/// Writes every rendered line of `simulator` under `path` (a file
/// path, or a directory when per_source_dirs is set). Throws
/// std::runtime_error on I/O failure.
WriteResult write_log(const sim::Simulator& simulator,
                      const std::filesystem::path& path,
                      const WriteOptions& opts = {});

/// Reads a log file written by write_log (transparently decompressing
/// .wsc) and returns its full text.
std::string read_log_text(const std::filesystem::path& path);

}  // namespace wss::logio
