#include "logio/anonymize.hpp"

#include "util/strings.hpp"

namespace wss::logio {

namespace {

bool is_digit(char c) { return c >= '0' && c <= '9'; }
bool is_word(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || is_digit(c) ||
         c == '_';
}
bool is_path_char(char c) {
  return is_word(c) || c == '.' || c == '-' || c == '+';
}

/// Tries to parse an IPv4 dotted quad at `pos`; returns its length or
/// 0. Requires a non-digit (or start/end) on both sides.
std::size_t ip_length(std::string_view s, std::size_t pos) {
  if (pos > 0 && (is_digit(s[pos - 1]) || s[pos - 1] == '.')) return 0;
  std::size_t i = pos;
  for (int octet = 0; octet < 4; ++octet) {
    std::size_t digits = 0;
    while (i < s.size() && is_digit(s[i]) && digits < 3) {
      ++i;
      ++digits;
    }
    if (digits == 0) return 0;
    if (octet < 3) {
      if (i >= s.size() || s[i] != '.') return 0;
      ++i;
    }
  }
  if (i < s.size() && (is_digit(s[i]) || s[i] == '.')) return 0;
  return i - pos;
}

}  // namespace

Anonymizer::Anonymizer(std::uint64_t seed, AnonymizeOptions opts)
    : seed_(seed), opts_(opts) {}

std::string Anonymizer::pseudonym(std::string_view token,
                                  std::string_view prefix) const {
  const std::uint64_t h = util::fnv1a(token) ^ seed_;
  return util::format("%.*s%04x", static_cast<int>(prefix.size()),
                      prefix.data(), static_cast<unsigned>(h & 0xffff));
}

std::string Anonymizer::anonymize(std::string_view line) const {
  std::string out;
  out.reserve(line.size());
  std::size_t i = 0;
  while (i < line.size()) {
    // IPv4 addresses -> stable fake 10.x.y.z.
    if (opts_.ip_addresses && is_digit(line[i])) {
      const std::size_t len = ip_length(line, i);
      if (len > 0) {
        const std::uint64_t h = util::fnv1a(line.substr(i, len)) ^ seed_;
        out += util::format("10.%u.%u.%u",
                            static_cast<unsigned>((h >> 16) & 0xff),
                            static_cast<unsigned>((h >> 8) & 0xff),
                            static_cast<unsigned>(1 + (h & 0x7f)));
        i += len;
        continue;
      }
    }
    // Usernames: "user<digits>", "<word>@", "owner = <word>".
    if (opts_.usernames && is_word(line[i]) &&
        (i == 0 || !is_word(line[i - 1]))) {
      std::size_t end = i;
      while (end < line.size() && is_word(line[end])) ++end;
      const std::string_view word = line.substr(i, end - i);
      const bool user_prefix = util::starts_with(word, "user") &&
                               word.size() > 4 && is_digit(word[4]);
      const bool at_suffix = end < line.size() && line[end] == '@';
      const bool after_owner =
          i >= 8 && line.substr(i - 8, 8) == "owner = ";
      if (user_prefix || at_suffix || after_owner) {
        out += pseudonym(word, "u");
        i = end;
        continue;
      }
    }
    // Absolute paths: anonymize the directory part, keep the basename
    // (tagging rules key on basenames like lx_mapper.c).
    if (opts_.paths && line[i] == '/' && i + 1 < line.size() &&
        is_path_char(line[i + 1]) && (i == 0 || line[i - 1] == ' ')) {
      std::size_t end = i;
      std::size_t last_slash = i;
      int segments = 0;
      while (end < line.size() &&
             (line[end] == '/' || is_path_char(line[end]))) {
        if (line[end] == '/') {
          last_slash = end;
          ++segments;
        }
        ++end;
      }
      if (segments >= 2) {
        const std::string_view dir = line.substr(i, last_slash - i);
        out += "/anon/";
        out += pseudonym(dir, "p");
        out += line.substr(last_slash, end - last_slash);
        i = end;
        continue;
      }
    }
    out.push_back(line[i]);
    ++i;
  }
  return out;
}

}  // namespace wss::logio
