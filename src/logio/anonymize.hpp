// Log anonymization.
//
// Section 3.2.1: "Log anonymization is also troublesome, because
// sensitive information like usernames is not relegated to distinct
// fields ... Our log data are not available for public study primarily
// because we cannot remove all sensitive information with sufficient
// confidence." This module implements the pseudonymization the authors
// describe working toward: stable, seed-keyed replacement of
// usernames, IP addresses, hostnames, and filesystem paths embedded
// anywhere in the message text -- while preserving line structure so
// the expert tagging rules still match (tests verify that invariant).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>

namespace wss::logio {

/// What to pseudonymize.
struct AnonymizeOptions {
  bool ip_addresses = true;   ///< a.b.c.d -> stable fake 10.x.y.z
  bool usernames = true;      ///< user@, "user NNN", owner = ...
  bool hostnames = false;     ///< host field (off by default: node ids
                              ///< are usually needed for analysis)
  bool paths = true;          ///< /abs/olute/paths -> /anon/<tag>
};

/// Stable, seed-keyed pseudonymizer. The same input token always maps
/// to the same pseudonym for a given seed (so correlation analyses
/// still work on anonymized logs), and nothing about the original
/// token is recoverable without the seed.
class Anonymizer {
 public:
  explicit Anonymizer(std::uint64_t seed, AnonymizeOptions opts = {});

  /// Anonymizes one log line.
  std::string anonymize(std::string_view line) const;

  /// Pseudonym for an arbitrary token (used for hostnames).
  std::string pseudonym(std::string_view token, std::string_view prefix) const;

 private:
  std::uint64_t seed_;
  AnonymizeOptions opts_;
};

}  // namespace wss::logio
