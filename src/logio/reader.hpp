// Streaming log reading with year-rollover inference.
//
// syslog timestamps carry no year (Section 3.2.1, "Inconsistent
// Structure"), so a reader of a multi-year log (Spirit spans 558 days)
// must infer year boundaries: when the month jumps backwards relative
// to the previous record, a new year has begun. LogReader parses line
// by line without loading the parsed records into memory.
#pragma once

#include <filesystem>
#include <functional>

#include "parse/record.hpp"

namespace wss::logio {

/// Reader statistics.
struct ReadStats {
  std::size_t lines = 0;
  std::size_t corrupted_sources = 0;
  std::size_t invalid_timestamps = 0;
  int year_rollovers = 0;
};

/// Streams parsed records from a log file written by logio::write_log
/// (plain or .wsc). `start_year` seeds the year inference. The
/// callback receives each record in file order.
ReadStats read_log(const std::filesystem::path& path, parse::SystemId system,
                   int start_year,
                   const std::function<void(const parse::LogRecord&)>& fn);

/// Year-inference helper, exposed for tests: tracks the last month
/// seen and bumps the year when the month decreases sharply.
class YearTracker {
 public:
  explicit YearTracker(int start_year) : year_(start_year) {}

  /// Returns the year to use for a record stamped with `month`
  /// (1..12), updating internal state.
  int on_month(int month);

  int year() const { return year_; }
  int last_month() const { return last_month_; }
  int rollovers() const { return rollovers_; }

  /// Reinstates a previously observed state (streaming checkpoint
  /// restore); the tracker continues exactly where it left off.
  void restore(int year, int last_month, int rollovers) {
    year_ = year;
    last_month_ = last_month;
    rollovers_ = rollovers;
  }

 private:
  int year_;
  int last_month_ = 0;
  int rollovers_ = 0;
};

}  // namespace wss::logio
