#include "logio/input.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "logio/writer.hpp"

namespace wss::logio {

namespace {

bool mmap_enabled() {
  const char* env = std::getenv("WSS_MMAP");
  return env == nullptr || std::strcmp(env, "0") != 0;
}

[[noreturn]] void throw_errno(const std::filesystem::path& path,
                              const char* what) {
  throw std::runtime_error("cannot " + std::string(what) + " " +
                           path.string() + ": " + std::strerror(errno));
}

std::string drain_fd(int fd) {
  std::string out;
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n > 0) {
      out.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) return out;
    if (errno == EINTR) continue;
    throw std::runtime_error(std::string("read failed: ") +
                             std::strerror(errno));
  }
}

}  // namespace

InputBuffer& InputBuffer::operator=(InputBuffer&& other) noexcept {
  if (this == &other) return *this;
  if (map_ != nullptr) ::munmap(map_, map_len_);
  data_ = other.data_;
  size_ = other.size_;
  owned_ = std::move(other.owned_);
  map_ = other.map_;
  map_len_ = other.map_len_;
  source_ = other.source_;
  other.data_ = "";
  other.size_ = 0;
  other.map_ = nullptr;
  other.map_len_ = 0;
  // owned_ may have moved out from under other.data_; re-point at the
  // (possibly SSO-relocated) storage.
  if (source_ != Source::kMmap && !owned_.empty()) {
    data_ = owned_.data();
    size_ = owned_.size();
  }
  return *this;
}

InputBuffer::~InputBuffer() {
  if (map_ != nullptr) ::munmap(map_, map_len_);
}

InputBuffer InputBuffer::from_string(std::string text) {
  InputBuffer b;
  b.owned_ = std::move(text);
  b.data_ = b.owned_.data();
  b.size_ = b.owned_.size();
  b.source_ = Source::kRead;
  return b;
}

InputBuffer InputBuffer::from_fd(int fd) {
  return from_string(drain_fd(fd));
}

InputBuffer InputBuffer::open(const std::filesystem::path& path) {
  if (path.extension() == ".wsc") {
    InputBuffer b = from_string(read_log_text(path));
    b.source_ = Source::kDecompressed;
    return b;
  }
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) throw_errno(path, "open");
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno(path, "stat");
  }
  if (mmap_enabled() && S_ISREG(st.st_mode) && st.st_size > 0) {
    const auto len = static_cast<std::size_t>(st.st_size);
    void* map = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
    if (map != MAP_FAILED) {
      ::close(fd);  // the mapping keeps the pages alive
      InputBuffer b;
      b.map_ = map;
      b.map_len_ = len;
      b.data_ = static_cast<const char*>(map);
      b.size_ = len;
      b.source_ = Source::kMmap;
      return b;
    }
    // mmap refused (unusual filesystem, resource limit): fall through
    // to read().
  }
  InputBuffer b;
  try {
    b = from_string(drain_fd(fd));
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
  return b;
}

}  // namespace wss::logio
