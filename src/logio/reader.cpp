#include "logio/reader.hpp"

#include <sstream>

#include "logio/writer.hpp"
#include "parse/dispatch.hpp"
#include "util/time.hpp"

namespace wss::logio {

int YearTracker::on_month(int month) {
  if (month >= 1 && month <= 12) {
    // A backwards month jump of more than one (Dec -> Jan, or a burst
    // of out-of-order lines straddling New Year) signals rollover.
    if (last_month_ != 0 && month < last_month_ - 6) {
      ++year_;
      ++rollovers_;
    }
    last_month_ = month;
  }
  return year_;
}

ReadStats read_log(const std::filesystem::path& path, parse::SystemId system,
                   int start_year,
                   const std::function<void(const parse::LogRecord&)>& fn) {
  const std::string text = read_log_text(path);
  ReadStats stats;
  YearTracker years(start_year);

  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    ++stats.lines;
    // Peek the month from the stamp to drive year inference. BG/L and
    // event-router stamps carry the year themselves; parse_month
    // returns 0 for them and the tracker is inert.
    int month = 0;
    if (line.size() >= 3) month = util::parse_month_abbrev(line.substr(0, 3));
    const int year = month > 0 ? years.on_month(month) : years.year();

    const parse::LogRecord rec = parse::parse_line(system, line, year);
    if (rec.source_corrupted) ++stats.corrupted_sources;
    if (!rec.timestamp_valid) ++stats.invalid_timestamps;
    fn(rec);
  }
  stats.year_rollovers = years.rollovers();
  return stats;
}

}  // namespace wss::logio
