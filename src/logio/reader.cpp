#include "logio/reader.hpp"

#include "logio/input.hpp"
#include "parse/dispatch.hpp"
#include "simd/split.hpp"
#include "util/time.hpp"

namespace wss::logio {

int YearTracker::on_month(int month) {
  if (month >= 1 && month <= 12) {
    // A backwards month jump of more than one (Dec -> Jan, or a burst
    // of out-of-order lines straddling New Year) signals rollover.
    if (last_month_ != 0 && month < last_month_ - 6) {
      ++year_;
      ++rollovers_;
    }
    last_month_ = month;
  }
  return year_;
}

ReadStats read_log(const std::filesystem::path& path, parse::SystemId system,
                   int start_year,
                   const std::function<void(const parse::LogRecord&)>& fn) {
  // Zero-copy batch path: mmap (or read-fallback) the whole input and
  // split lines with the vectorized scanner; views point into the
  // buffer, and one record + scratch are reused for every line so the
  // steady-state loop performs no heap allocation
  // (tests/test_tag_alloc.cpp).
  const InputBuffer input = InputBuffer::open(path);
  ReadStats stats;
  YearTracker years(start_year);
  parse::LogRecord rec;
  parse::ParseScratch scratch;

  simd::for_each_line(input.view(), [&](std::string_view line) {
    ++stats.lines;
    // Peek the month from the stamp to drive year inference. BG/L and
    // event-router stamps carry the year themselves; parse_month
    // returns 0 for them and the tracker is inert.
    int month = 0;
    if (line.size() >= 3) month = util::parse_month_abbrev(line.substr(0, 3));
    const int year = month > 0 ? years.on_month(month) : years.year();

    parse::parse_line_into(system, line, year, rec, scratch);
    if (rec.source_corrupted) ++stats.corrupted_sources;
    if (!rec.timestamp_valid) ++stats.invalid_timestamps;
    fn(rec);
  });
  stats.year_rollovers = years.rollovers();
  return stats;
}

}  // namespace wss::logio
