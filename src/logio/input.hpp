// Zero-copy batch input for the byte-level hot path.
//
// The batch pipelines (analyze, study, mine) read a whole log and
// stream lines out of it; copying the bytes through an istringstream
// costs more than parsing them. InputBuffer maps a plain log file
// read-only (MAP_PRIVATE) so the line splitter hands out views
// straight into the page cache, and falls back to plain read() when
// mapping is impossible or pointless: pipes and other non-regular
// files, empty files, .wsc logs (which must be decompressed into an
// owned buffer anyway), or when WSS_MMAP=0 disables mapping outright.
// The fallback paths are pinned byte-identical to the mmap path by
// tests/test_logio_input.cpp.
//
// The file size is snapshotted at open: a concurrent writer appending
// after open() is not seen (same contract as the old slurp reader).
#pragma once

#include <filesystem>
#include <string>
#include <string_view>

namespace wss::logio {

/// An immutable, contiguous view of a whole input, however obtained.
/// Move-only; the view stays valid for the buffer's lifetime.
class InputBuffer {
 public:
  enum class Source {
    kMmap,         ///< mapped pages of a regular file
    kRead,         ///< read() into an owned buffer
    kDecompressed  ///< .wsc codec output (owned buffer)
  };

  InputBuffer() = default;
  InputBuffer(InputBuffer&& other) noexcept { *this = std::move(other); }
  InputBuffer& operator=(InputBuffer&& other) noexcept;
  InputBuffer(const InputBuffer&) = delete;
  InputBuffer& operator=(const InputBuffer&) = delete;
  ~InputBuffer();

  /// Opens `path`, choosing mmap / read() / decompression as described
  /// above. Throws std::runtime_error when the file cannot be read.
  static InputBuffer open(const std::filesystem::path& path);

  /// Drains an already-open descriptor (stdin, a pipe) via read().
  /// Does not close `fd`. Throws std::runtime_error on read failure.
  static InputBuffer from_fd(int fd);

  /// Wraps an owned string (tests, decompressed data).
  static InputBuffer from_string(std::string text);

  std::string_view view() const {
    return {data_, size_};
  }
  Source source() const { return source_; }

 private:
  const char* data_ = "";
  std::size_t size_ = 0;
  std::string owned_;        ///< backing store for kRead/kDecompressed
  void* map_ = nullptr;      ///< mmap base for kMmap
  std::size_t map_len_ = 0;  ///< mmap length (page-rounded source size)
  Source source_ = Source::kRead;
};

}  // namespace wss::logio
