#include "logio/writer.hpp"

#include <fstream>
#include <map>
#include <stdexcept>

#include "compress/codec.hpp"
#include "util/strings.hpp"

namespace wss::logio {

namespace {

void write_file(const std::filesystem::path& path, const std::string& text,
                bool compressed, WriteResult& result) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("write_log: cannot open " + path.string());
  }
  if (compressed) {
    const std::string packed = compress::compress(text);
    out.write(packed.data(), static_cast<std::streamsize>(packed.size()));
    result.bytes_written += packed.size();
  } else {
    out.write(text.data(), static_cast<std::streamsize>(text.size()));
    result.bytes_written += text.size();
  }
  if (!out) {
    throw std::runtime_error("write_log: write failed for " + path.string());
  }
  ++result.files;
}

}  // namespace

WriteResult write_log(const sim::Simulator& simulator,
                      const std::filesystem::path& path,
                      const WriteOptions& opts) {
  WriteResult result;
  const char* ext = opts.compressed ? "messages.wsc" : "messages";

  if (opts.per_source_dirs) {
    // syslog-ng layout: one subdirectory per source node.
    std::map<std::uint32_t, std::string> per_source;
    for (std::size_t i = 0; i < simulator.events().size(); ++i) {
      auto& text = per_source[simulator.events()[i].source];
      text.append(simulator.line(i));
      text.push_back('\n');
      ++result.lines;
    }
    for (const auto& [source, text] : per_source) {
      const auto dir = path / simulator.namer().name(source);
      std::filesystem::create_directories(dir);
      write_file(dir / ext, text, opts.compressed, result);
    }
    return result;
  }

  std::string text;
  for (std::size_t i = 0; i < simulator.events().size(); ++i) {
    text.append(simulator.line(i));
    text.push_back('\n');
    ++result.lines;
  }
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path());
  }
  write_file(path, text, opts.compressed, result);
  return result;
}

std::string read_log_text(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("read_log_text: cannot open " + path.string());
  }
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (path.extension() == ".wsc") return compress::decompress(data);
  return data;
}

}  // namespace wss::logio
