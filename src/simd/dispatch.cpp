#include "simd/dispatch.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace wss::simd {

const char* level_name(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kSse2:
      return "sse2";
    case Level::kAvx2:
      return "avx2";
    case Level::kNeon:
      return "neon";
  }
  return "?";
}

std::optional<Level> parse_level(std::string_view name) {
  const auto eq = [&](std::string_view want) {
    if (name.size() != want.size()) return false;
    for (std::size_t i = 0; i < name.size(); ++i) {
      const char c = name[i] >= 'A' && name[i] <= 'Z'
                         ? static_cast<char>(name[i] - 'A' + 'a')
                         : name[i];
      if (c != want[i]) return false;
    }
    return true;
  };
  if (eq("scalar")) return Level::kScalar;
  if (eq("sse2")) return Level::kSse2;
  if (eq("avx2")) return Level::kAvx2;
  if (eq("neon")) return Level::kNeon;
  return std::nullopt;
}

bool level_supported(Level level) {
  switch (level) {
    case Level::kScalar:
      return true;
    case Level::kSse2:
#if defined(__x86_64__) || defined(_M_X64)
      // The 128-bit kernels use SSE2 loads/compares plus SSSE3 pshufb
      // for the nibble tables; pre-SSSE3 x86-64 (last shipped ~2005)
      // runs scalar.
      return __builtin_cpu_supports("ssse3") != 0;
#else
      return false;
#endif
    case Level::kAvx2:
#if defined(__x86_64__) || defined(_M_X64)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case Level::kNeon:
#if defined(__aarch64__)
      return true;  // AdvSIMD is baseline on AArch64
#else
      return false;
#endif
  }
  return false;
}

Level detected_level() {
#if defined(__x86_64__) || defined(_M_X64)
  if (level_supported(Level::kAvx2)) return Level::kAvx2;
  if (level_supported(Level::kSse2)) return Level::kSse2;
  return Level::kScalar;
#elif defined(__aarch64__)
  return Level::kNeon;
#else
  return Level::kScalar;
#endif
}

std::vector<Level> supported_levels() {
  std::vector<Level> out;
  for (const Level l :
       {Level::kScalar, Level::kSse2, Level::kAvx2, Level::kNeon}) {
    if (level_supported(l)) out.push_back(l);
  }
  return out;
}

namespace {

Level resolve_initial_level() {
  const char* env = std::getenv("WSS_SIMD");
  if (env == nullptr || *env == '\0') return detected_level();
  const auto parsed = parse_level(env);
  if (!parsed) {
    std::fprintf(stderr, "wss: WSS_SIMD=%s is not a level, using %s\n", env,
                 level_name(detected_level()));
    return detected_level();
  }
  if (!level_supported(*parsed)) {
    std::fprintf(stderr, "wss: WSS_SIMD=%s unsupported on this CPU, using %s\n",
                 env, level_name(detected_level()));
    return detected_level();
  }
  return *parsed;
}

std::atomic<Level>& active_slot() {
  static std::atomic<Level> slot{resolve_initial_level()};
  return slot;
}

}  // namespace

Level active_level() {
  return active_slot().load(std::memory_order_relaxed);
}

bool set_level(Level level) {
  if (!level_supported(level)) return false;
  active_slot().store(level, std::memory_order_relaxed);
  return true;
}

}  // namespace wss::simd
