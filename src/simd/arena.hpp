// Bump-pointer arena for the byte-level hot path.
//
// The miss path (chatter line -> parse -> tag -> no match -> discard)
// runs hundreds of millions of times per study; a single per-line heap
// allocation turns it allocator-bound. The pieces of that path that
// need transient storage -- a line straddling two read chunks, a
// carried partial line between feeds -- take it from an Arena instead:
// alloc() bumps a pointer inside a block, reset() rewinds to empty
// while KEEPING the blocks, so after the first pass over representative
// input (the warm-up) the arena never touches the heap again. The
// zero-allocation contract is pinned end to end by
// tests/test_tag_alloc.cpp.
//
// Lifetime rule (DESIGN.md section 5h): memory returned by alloc() is
// valid until the next reset() -- an arena-backed view must be consumed
// or copied out before the owner resets. Arenas are single-threaded;
// one per splitter/reader, like match::MatchScratch.
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <string_view>
#include <vector>

namespace wss::simd {

class Arena {
 public:
  explicit Arena(std::size_t block_size = 64 * 1024)
      : block_size_(block_size) {}

  /// Returns `n` bytes (byte buffers only; no alignment promise).
  /// Valid until reset().
  char* alloc(std::size_t n) {
    if (used_ + n > cap_) refill(n);
    char* p = cur_ + used_;
    used_ += n;
    return p;
  }

  /// Grows the MOST RECENT allocation in place by `extra` bytes when
  /// `v` is that allocation and the current block has room, returning
  /// the writable tail; nullptr otherwise (caller re-allocates and
  /// copies). This is what keeps a carry assembled from thousands of
  /// tiny feeds linear instead of quadratic.
  char* try_extend(std::string_view v, std::size_t extra) {
    if (cur_ == nullptr || v.data() + v.size() != cur_ + used_) return nullptr;
    if (used_ + extra > cap_) return nullptr;
    char* tail = cur_ + used_;
    used_ += extra;
    return tail;
  }

  /// Copies `s` into the arena and returns the arena-backed view.
  std::string_view copy(std::string_view s) {
    char* p = alloc(s.size());
    std::memcpy(p, s.data(), s.size());
    return {p, s.size()};
  }

  /// Copies the concatenation `a + b` (a straddled line's two halves)
  /// into one contiguous arena region.
  std::string_view join(std::string_view a, std::string_view b) {
    char* p = alloc(a.size() + b.size());
    std::memcpy(p, a.data(), a.size());
    std::memcpy(p + a.size(), b.data(), b.size());
    return {p, a.size() + b.size()};
  }

  /// Rewinds to empty, keeping every block for reuse. Previously
  /// returned pointers become invalid.
  void reset() {
    block_ = 0;
    used_ = 0;
    if (!blocks_.empty()) {
      cur_ = blocks_[0].data.get();
      cap_ = blocks_[0].size;
    } else {
      cur_ = nullptr;
      cap_ = 0;
    }
  }

  /// Blocks ever allocated (the steady-state test: constant after
  /// warm-up).
  std::size_t blocks() const { return blocks_.size(); }

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    std::size_t size = 0;
  };

  void refill(std::size_t need) {
    // Move to the next existing block if it fits, else append one.
    // New blocks grow geometrically (>= 2x the largest so far) so a
    // carry built by repeated try_extend exhausts O(log n) blocks with
    // O(n) total copying, and after reset the chain is reused forever.
    while (block_ + 1 < blocks_.size()) {
      ++block_;
      if (blocks_[block_].size >= need) {
        cur_ = blocks_[block_].data.get();
        cap_ = blocks_[block_].size;
        used_ = 0;
        return;
      }
    }
    std::size_t size = block_size_;
    if (largest_ * 2 > size) size = largest_ * 2;
    if (need > size) size = need;
    blocks_.push_back({std::make_unique<char[]>(size), size});
    if (size > largest_) largest_ = size;
    block_ = blocks_.size() - 1;
    cur_ = blocks_[block_].data.get();
    cap_ = size;
    used_ = 0;
  }

  std::size_t block_size_;
  std::size_t largest_ = 0;
  std::vector<Block> blocks_;
  std::size_t block_ = 0;  ///< index of the block being bumped
  char* cur_ = nullptr;
  std::size_t cap_ = 0;
  std::size_t used_ = 0;
};

}  // namespace wss::simd
