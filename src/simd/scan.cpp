#include "simd/scan.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#define WSS_SIMD_X86 1
#include <immintrin.h>
#elif defined(__aarch64__)
#define WSS_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace wss::simd {

void nibble_set_add(NibbleSet& s, unsigned char b) {
  s.member[b] = true;
  s.empty = false;
  // One group bit per high-nibble class (mod 8). A byte is claimed by
  // the approximation when lo[] and hi[] share a group bit, so every
  // member matches; collisions (hi nibbles 8 apart with crossed lo
  // nibbles) only ever overmatch.
  const unsigned char bit = static_cast<unsigned char>(1u << ((b >> 4) & 7));
  s.lo[b & 0x0f] |= bit;
  s.hi[b >> 4] |= bit;
}

NibbleSet make_nibble_set(std::string_view bytes) {
  NibbleSet s;
  for (const char c : bytes) nibble_set_add(s, static_cast<unsigned char>(c));
  return s;
}

namespace {

/// Bucket a prefix pair hashes to. Any deterministic map works for
/// correctness (collisions overmatch); mixing both bytes spreads the
/// realistic literal sets -- whose pairs share common first letters --
/// across buckets.
inline unsigned pair_bucket(unsigned char b0, unsigned char b1) {
  return (static_cast<unsigned>(b0) * 31u + b1) & 7u;
}

}  // namespace

void pair_tables_add_pair(PairTables& t, unsigned char b0, unsigned char b1) {
  const auto bit =
      static_cast<unsigned char>(1u << pair_bucket(b0, b1));
  t.first_lo[b0 & 0x0f] |= bit;
  t.first_hi[b0 >> 4] |= bit;
  t.second_lo[b1 & 0x0f] |= bit;
  t.second_hi[b1 >> 4] |= bit;
  t.any_pair = true;
}

void pair_tables_add_single(PairTables& t, unsigned char b) {
  nibble_set_add(t.single, b);
}

namespace {

// ---- Scalar twins (the reference semantics) ------------------------

const char* find_byte_scalar(const char* p, const char* end, unsigned char c) {
  for (; p != end; ++p) {
    if (static_cast<unsigned char>(*p) == c) return p;
  }
  return end;
}

const char* find_in_set_scalar(const char* p, const char* end,
                               const NibbleSet& s) {
  for (; p != end; ++p) {
    if (s.member[static_cast<unsigned char>(*p)]) return p;
  }
  return end;
}

const char* find_not_in_set_scalar(const char* p, const char* end,
                                   const NibbleSet& s) {
  for (; p != end; ++p) {
    if (!s.member[static_cast<unsigned char>(*p)]) return p;
  }
  return end;
}

inline bool pair_hit(const char* q, const std::uint64_t* pair_start) {
  const std::uint32_t idx =
      (static_cast<std::uint32_t>(static_cast<unsigned char>(q[0])) << 8) |
      static_cast<unsigned char>(q[1]);
  return (pair_start[idx >> 6] >> (idx & 63)) & 1;
}

const char* pair_find_scalar(const char* p, const char* end,
                             const std::uint64_t* pair_start) {
  if (p == end) return end;
  // The bitmap tests are independent across positions, so the 4-wide
  // unroll runs at full ILP (unlike an automaton's dependent chain).
  while (p + 5 <= end) {
    if (pair_hit(p, pair_start) | pair_hit(p + 1, pair_start) |
        pair_hit(p + 2, pair_start) | pair_hit(p + 3, pair_start)) {
      break;
    }
    p += 4;
  }
  while (p + 1 < end && !pair_hit(p, pair_start)) ++p;
  return p;  // a hit, or end - 1 (no full pair left)
}

#ifdef WSS_SIMD_X86

// ---- 128-bit x86 (SSE2 compares, SSSE3 nibble tables) --------------

const char* find_byte_sse2(const char* p, const char* end, unsigned char c) {
  const __m128i needle = _mm_set1_epi8(static_cast<char>(c));
  for (; p + 16 <= end; p += 16) {
    const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
    const unsigned m = static_cast<unsigned>(
        _mm_movemask_epi8(_mm_cmpeq_epi8(v, needle)));
    if (m != 0) return p + __builtin_ctz(m);
  }
  return find_byte_scalar(p, end, c);
}

/// 16-bit mask of bytes the nibble approximation claims for `s`.
__attribute__((target("ssse3"))) inline unsigned nibble_mask16(
    __m128i v, const NibbleSet& s) {
  const __m128i lo_tbl =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(s.lo));
  const __m128i hi_tbl =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(s.hi));
  const __m128i low = _mm_and_si128(v, _mm_set1_epi8(0x0f));
  const __m128i high = _mm_and_si128(_mm_srli_epi16(v, 4), _mm_set1_epi8(0x0f));
  const __m128i m = _mm_and_si128(_mm_shuffle_epi8(lo_tbl, low),
                                  _mm_shuffle_epi8(hi_tbl, high));
  const __m128i zero = _mm_cmpeq_epi8(m, _mm_setzero_si128());
  return ~static_cast<unsigned>(_mm_movemask_epi8(zero)) & 0xffffu;
}

__attribute__((target("ssse3"))) const char* find_in_set_sse2(
    const char* p, const char* end, const NibbleSet& s) {
  for (; p + 16 <= end; p += 16) {
    unsigned m =
        nibble_mask16(_mm_loadu_si128(reinterpret_cast<const __m128i*>(p)), s);
    while (m != 0) {
      const unsigned i = __builtin_ctz(m);
      if (s.member[static_cast<unsigned char>(p[i])]) return p + i;
      m &= m - 1;  // overmatch: drop and keep looking
    }
  }
  return find_in_set_scalar(p, end, s);
}

__attribute__((target("ssse3"))) const char* find_not_in_set_sse2(
    const char* p, const char* end, const NibbleSet& s) {
  for (; p + 16 <= end; p += 16) {
    const unsigned m =
        nibble_mask16(_mm_loadu_si128(reinterpret_cast<const __m128i*>(p)), s);
    // A clear approximation bit is a definite non-member; set bits
    // before it may still be non-members (overmatch), so verify those
    // in order.
    const unsigned definite = ~m & 0xffffu;
    const unsigned stop = definite != 0 ? __builtin_ctz(definite) : 16u;
    for (unsigned i = 0; i < stop; ++i) {
      if (!s.member[static_cast<unsigned char>(p[i])]) return p + i;
    }
    if (definite != 0) return p + stop;
  }
  return find_not_in_set_scalar(p, end, s);
}

__attribute__((target("ssse3"))) const char* pair_find_sse2(
    const char* p, const char* end, const PairTables& t,
    const std::uint64_t* pair_start) {
  const __m128i f_lo =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.first_lo));
  const __m128i f_hi =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.first_hi));
  const __m128i s_lo =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.second_lo));
  const __m128i s_hi =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.second_hi));
  const __m128i nib = _mm_set1_epi8(0x0f);
  const bool singles = !t.single.empty;
  // 17 readable bytes per block: v2 is the same 16 bytes shifted by
  // one, so its load touches p[16].
  for (; p + 17 <= end; p += 16) {
    const __m128i v1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
    const __m128i v2 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 1));
    // v2[i] == p[i+1], so the per-position AND is bucket-aligned: bit
    // i survives only when some bucket claims p[i] as first AND
    // p[i+1] as second.
    const __m128i both = _mm_and_si128(
        _mm_and_si128(_mm_shuffle_epi8(f_lo, _mm_and_si128(v1, nib)),
                      _mm_shuffle_epi8(
                          f_hi, _mm_and_si128(_mm_srli_epi16(v1, 4), nib))),
        _mm_and_si128(_mm_shuffle_epi8(s_lo, _mm_and_si128(v2, nib)),
                      _mm_shuffle_epi8(
                          s_hi, _mm_and_si128(_mm_srli_epi16(v2, 4), nib))));
    const __m128i zero = _mm_cmpeq_epi8(both, _mm_setzero_si128());
    unsigned cand = ~static_cast<unsigned>(_mm_movemask_epi8(zero)) & 0xffffu;
    if (singles) cand |= nibble_mask16(v1, t.single);
    while (cand != 0) {
      const unsigned i = static_cast<unsigned>(__builtin_ctz(cand));
      cand &= cand - 1;
      if (pair_hit(p + i, pair_start)) return p + i;  // overmatch filtered
    }
  }
  return pair_find_scalar(p, end, pair_start);
}

// ---- 256-bit x86 (AVX2) --------------------------------------------

// NB (all avx2 kernels): the ymm setup lives behind an explicit size
// guard and the residue handoff to the 128-bit twin is preceded by
// _mm256_zeroupper(). Without both, the compiler hoists the table
// loads above the loop-entry check and tail-jumps to the SSE twin
// with dirty upper ymm state -- every short-range call then eats an
// AVX->SSE transition stall, which made avx2 ~7x SLOWER than sse2 on
// line-sized ranges. (In-loop hit returns get vzeroupper from the
// compiler's normal epilogue; only the tail calls miss it.)

__attribute__((target("avx2"))) const char* find_byte_avx2(const char* p,
                                                           const char* end,
                                                           unsigned char c) {
  if (end - p >= 32) {
    const __m256i needle = _mm256_set1_epi8(static_cast<char>(c));
    for (; p + 32 <= end; p += 32) {
      const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
      const unsigned m = static_cast<unsigned>(
          _mm256_movemask_epi8(_mm256_cmpeq_epi8(v, needle)));
      if (m != 0) return p + __builtin_ctz(m);
    }
    _mm256_zeroupper();
  }
  return find_byte_sse2(p, end, c);
}

/// 32-bit mask of bytes the nibble approximation claims for `s`.
__attribute__((target("avx2"))) inline unsigned nibble_mask32(
    __m256i v, const NibbleSet& s) {
  const __m256i lo_tbl = _mm256_broadcastsi128_si256(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(s.lo)));
  const __m256i hi_tbl = _mm256_broadcastsi128_si256(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(s.hi)));
  const __m256i low = _mm256_and_si256(v, _mm256_set1_epi8(0x0f));
  const __m256i high =
      _mm256_and_si256(_mm256_srli_epi16(v, 4), _mm256_set1_epi8(0x0f));
  const __m256i m = _mm256_and_si256(_mm256_shuffle_epi8(lo_tbl, low),
                                     _mm256_shuffle_epi8(hi_tbl, high));
  const __m256i zero = _mm256_cmpeq_epi8(m, _mm256_setzero_si256());
  return ~static_cast<unsigned>(_mm256_movemask_epi8(zero));
}

__attribute__((target("avx2"))) const char* find_in_set_avx2(
    const char* p, const char* end, const NibbleSet& s) {
  if (end - p >= 32) {
    for (; p + 32 <= end; p += 32) {
      unsigned m = nibble_mask32(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p)), s);
      while (m != 0) {
        const unsigned i = __builtin_ctz(m);
        if (s.member[static_cast<unsigned char>(p[i])]) return p + i;
        m &= m - 1;
      }
    }
    _mm256_zeroupper();
  }
  return find_in_set_sse2(p, end, s);
}

__attribute__((target("avx2"))) const char* find_not_in_set_avx2(
    const char* p, const char* end, const NibbleSet& s) {
  if (end - p >= 32) {
    for (; p + 32 <= end; p += 32) {
      const unsigned m = nibble_mask32(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p)), s);
      const unsigned definite = ~m;
      const unsigned stop = definite != 0 ? __builtin_ctz(definite) : 32u;
      for (unsigned i = 0; i < stop; ++i) {
        if (!s.member[static_cast<unsigned char>(p[i])]) return p + i;
      }
      if (definite != 0) return p + stop;
    }
    _mm256_zeroupper();
  }
  return find_not_in_set_sse2(p, end, s);
}

__attribute__((target("avx2"))) const char* pair_find_avx2(
    const char* p, const char* end, const PairTables& t,
    const std::uint64_t* pair_start) {
  if (end - p >= 33) {
    const __m256i f_lo = _mm256_broadcastsi128_si256(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.first_lo)));
    const __m256i f_hi = _mm256_broadcastsi128_si256(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.first_hi)));
    const __m256i s_lo = _mm256_broadcastsi128_si256(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.second_lo)));
    const __m256i s_hi = _mm256_broadcastsi128_si256(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.second_hi)));
    const __m256i nib = _mm256_set1_epi8(0x0f);
    const bool singles = !t.single.empty;
    for (; p + 33 <= end; p += 32) {
      const __m256i v1 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
      const __m256i v2 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + 1));
      const __m256i both = _mm256_and_si256(
          _mm256_and_si256(
              _mm256_shuffle_epi8(f_lo, _mm256_and_si256(v1, nib)),
              _mm256_shuffle_epi8(
                  f_hi, _mm256_and_si256(_mm256_srli_epi16(v1, 4), nib))),
          _mm256_and_si256(
              _mm256_shuffle_epi8(s_lo, _mm256_and_si256(v2, nib)),
              _mm256_shuffle_epi8(
                  s_hi, _mm256_and_si256(_mm256_srli_epi16(v2, 4), nib))));
      const __m256i zero = _mm256_cmpeq_epi8(both, _mm256_setzero_si256());
      unsigned cand = ~static_cast<unsigned>(_mm256_movemask_epi8(zero));
      if (singles) cand |= nibble_mask32(v1, t.single);
      while (cand != 0) {
        const unsigned i = static_cast<unsigned>(__builtin_ctz(cand));
        cand &= cand - 1;
        if (pair_hit(p + i, pair_start)) return p + i;
      }
    }
    _mm256_zeroupper();
  }
  return pair_find_sse2(p, end, t, pair_start);
}

#endif  // WSS_SIMD_X86

#ifdef WSS_SIMD_NEON

// ---- AArch64 AdvSIMD -----------------------------------------------

/// Narrows a per-byte 0xFF/0x00 mask to a 64-bit value with one nibble
/// (0xF or 0x0) per byte position -- the AArch64 movemask substitute.
inline std::uint64_t neon_nibble_mask(uint8x16_t bytemask) {
  const uint8x8_t narrowed =
      vshrn_n_u16(vreinterpretq_u16_u8(bytemask), 4);
  return vget_lane_u64(vreinterpret_u64_u8(narrowed), 0);
}

/// Compresses a nibble-per-position mask to a bit-per-position mask.
inline std::uint64_t neon_compress_mask(std::uint64_t nm) {
  std::uint64_t b = nm & 0x1111111111111111ULL;
  b = (b | (b >> 3)) & 0x0303030303030303ULL;
  b = (b | (b >> 6)) & 0x000f000f000f000fULL;
  b = (b | (b >> 12)) & 0x000000ff000000ffULL;
  b = (b | (b >> 24)) & 0x000000000000ffffULL;
  return b;
}

const char* find_byte_neon(const char* p, const char* end, unsigned char c) {
  const uint8x16_t needle = vdupq_n_u8(c);
  for (; p + 16 <= end; p += 16) {
    const uint8x16_t v = vld1q_u8(reinterpret_cast<const std::uint8_t*>(p));
    const std::uint64_t m = neon_nibble_mask(vceqq_u8(v, needle));
    if (m != 0) return p + (__builtin_ctzll(m) >> 2);
  }
  return find_byte_scalar(p, end, c);
}

/// Per-byte 0xFF/0x00 mask of the nibble approximation for `s`.
inline uint8x16_t nibble_bytes_neon(uint8x16_t v, const NibbleSet& s) {
  const uint8x16_t lo_tbl = vld1q_u8(s.lo);
  const uint8x16_t hi_tbl = vld1q_u8(s.hi);
  const uint8x16_t low = vandq_u8(v, vdupq_n_u8(0x0f));
  const uint8x16_t high = vshrq_n_u8(v, 4);
  const uint8x16_t m =
      vandq_u8(vqtbl1q_u8(lo_tbl, low), vqtbl1q_u8(hi_tbl, high));
  return vtstq_u8(m, m);
}

const char* find_in_set_neon(const char* p, const char* end,
                             const NibbleSet& s) {
  for (; p + 16 <= end; p += 16) {
    const uint8x16_t v = vld1q_u8(reinterpret_cast<const std::uint8_t*>(p));
    std::uint64_t m = neon_nibble_mask(nibble_bytes_neon(v, s));
    while (m != 0) {
      const unsigned i = static_cast<unsigned>(__builtin_ctzll(m)) >> 2;
      if (s.member[static_cast<unsigned char>(p[i])]) return p + i;
      m &= ~(std::uint64_t{0xf} << (i * 4));
    }
  }
  return find_in_set_scalar(p, end, s);
}

const char* find_not_in_set_neon(const char* p, const char* end,
                                 const NibbleSet& s) {
  for (; p + 16 <= end; p += 16) {
    const uint8x16_t v = vld1q_u8(reinterpret_cast<const std::uint8_t*>(p));
    const std::uint64_t m = neon_nibble_mask(nibble_bytes_neon(v, s));
    const std::uint64_t definite = ~m & 0xffffffffffffffffULL;
    const unsigned stop =
        m == 0xffffffffffffffffULL
            ? 16u
            : static_cast<unsigned>(__builtin_ctzll(definite)) >> 2;
    for (unsigned i = 0; i < stop; ++i) {
      if (!s.member[static_cast<unsigned char>(p[i])]) return p + i;
    }
    if (stop < 16u) return p + stop;
  }
  return find_not_in_set_scalar(p, end, s);
}

const char* pair_find_neon(const char* p, const char* end,
                           const PairTables& t,
                           const std::uint64_t* pair_start) {
  const uint8x16_t f_lo = vld1q_u8(t.first_lo);
  const uint8x16_t f_hi = vld1q_u8(t.first_hi);
  const uint8x16_t s_lo = vld1q_u8(t.second_lo);
  const uint8x16_t s_hi = vld1q_u8(t.second_hi);
  const uint8x16_t nib = vdupq_n_u8(0x0f);
  const bool singles = !t.single.empty;
  for (; p + 17 <= end; p += 16) {
    const uint8x16_t v1 = vld1q_u8(reinterpret_cast<const std::uint8_t*>(p));
    const uint8x16_t v2 =
        vld1q_u8(reinterpret_cast<const std::uint8_t*>(p + 1));
    const uint8x16_t both = vandq_u8(
        vandq_u8(vqtbl1q_u8(f_lo, vandq_u8(v1, nib)),
                 vqtbl1q_u8(f_hi, vshrq_n_u8(v1, 4))),
        vandq_u8(vqtbl1q_u8(s_lo, vandq_u8(v2, nib)),
                 vqtbl1q_u8(s_hi, vshrq_n_u8(v2, 4))));
    uint8x16_t candv = vtstq_u8(both, both);
    if (singles) candv = vorrq_u8(candv, nibble_bytes_neon(v1, t.single));
    std::uint64_t cand = neon_nibble_mask(candv);
    while (cand != 0) {
      const unsigned i = static_cast<unsigned>(__builtin_ctzll(cand)) >> 2;
      cand &= ~(std::uint64_t{0xf} << (i * 4));
      if (pair_hit(p + i, pair_start)) return p + i;
    }
  }
  return pair_find_scalar(p, end, pair_start);
}

#endif  // WSS_SIMD_NEON

}  // namespace

// Short-range cutoffs (all dispatchers): a range below one vector
// block never enters a vector loop anyway -- it would only pay the
// per-call table setup and the nested avx2 -> sse2 -> scalar
// fallthrough. Field tokens in real log lines are mostly a few bytes,
// so the layer ablation showed the vector levels LOSING on the field
// scans until sub-block ranges were routed straight to the scalar
// twin. Results are identical by construction (the vector loops are
// pure prefilters over the same exact predicate).
//
// The same reasoning applies one level up: a 16-31 byte range at kAvx2
// enters the avx2 kernel only to fail its own 32-byte guard and hop to
// sse2 -- an extra call on exactly the token lengths log fields favor.
// The dispatcher routes that band straight to the sse2 twin.

const char* find_byte(Level level, const char* p, const char* end,
                      unsigned char c) {
  if (end - p < 16) return find_byte_scalar(p, end, c);
  switch (level) {
#ifdef WSS_SIMD_X86
    case Level::kAvx2:
      if (end - p < 32) return find_byte_sse2(p, end, c);
      return find_byte_avx2(p, end, c);
    case Level::kSse2:
      return find_byte_sse2(p, end, c);
#endif
#ifdef WSS_SIMD_NEON
    case Level::kNeon:
      return find_byte_neon(p, end, c);
#endif
    default:
      return find_byte_scalar(p, end, c);
  }
}

const char* find_in_set(Level level, const char* p, const char* end,
                        const NibbleSet& s) {
  if (s.empty) return end;
  if (end - p < 16) return find_in_set_scalar(p, end, s);
  switch (level) {
#ifdef WSS_SIMD_X86
    case Level::kAvx2:
      if (end - p < 32) return find_in_set_sse2(p, end, s);
      return find_in_set_avx2(p, end, s);
    case Level::kSse2:
      return find_in_set_sse2(p, end, s);
#endif
#ifdef WSS_SIMD_NEON
    case Level::kNeon:
      return find_in_set_neon(p, end, s);
#endif
    default:
      return find_in_set_scalar(p, end, s);
  }
}

const char* find_not_in_set(Level level, const char* p, const char* end,
                            const NibbleSet& s) {
  if (s.empty) return p;
  if (end - p < 16) return find_not_in_set_scalar(p, end, s);
  switch (level) {
#ifdef WSS_SIMD_X86
    case Level::kAvx2:
      if (end - p < 32) return find_not_in_set_sse2(p, end, s);
      return find_not_in_set_avx2(p, end, s);
    case Level::kSse2:
      return find_not_in_set_sse2(p, end, s);
#endif
#ifdef WSS_SIMD_NEON
    case Level::kNeon:
      return find_not_in_set_neon(p, end, s);
#endif
    default:
      return find_not_in_set_scalar(p, end, s);
  }
}

const char* pair_find(Level level, const char* p, const char* end,
                      const PairTables& t, const std::uint64_t* pair_start) {
  (void)t;  // unused on targets with no vector path compiled in
  if (end - p < 17) return pair_find_scalar(p, end, pair_start);
  switch (level) {
#ifdef WSS_SIMD_X86
    case Level::kAvx2:
      // The avx2 pair kernel needs 33 bytes (32 positions + lookahead).
      if (end - p < 33) return pair_find_sse2(p, end, t, pair_start);
      return pair_find_avx2(p, end, t, pair_start);
    case Level::kSse2:
      return pair_find_sse2(p, end, t, pair_start);
#endif
#ifdef WSS_SIMD_NEON
    case Level::kNeon:
      return pair_find_neon(p, end, t, pair_start);
#endif
    default:
      return pair_find_scalar(p, end, pair_start);
  }
}

}  // namespace wss::simd
