// Vectorized byte-scanning primitives -- the kernels under the line
// splitter, the frame decoder, the parse field scans, and the literal
// scanner's root skip.
//
// Every primitive has a scalar twin with identical semantics; the
// vector paths only ever *prune* work using approximations that can
// overmatch but never undermatch, with the exact predicate re-checked
// before anything is reported. That is the whole correctness argument
// for the goldens staying bit-identical (DESIGN.md section 5h), and
// the differential-fuzz suite (tests label `simd`) holds every level
// to it on adversarial corpora.
//
// Levels (simd/dispatch.hpp):
//   scalar -- plain byte loops, the reference.
//   sse2   -- 16 B blocks. Loads/compares are SSE2; the nibble-table
//             kernels additionally use SSSE3 pshufb (detection treats
//             pre-SSSE3 x86 as scalar-only, which last shipped ~2005).
//   avx2   -- 32 B blocks.
//   neon   -- 16 B blocks (AArch64 AdvSIMD).
//
// All `end`-bounded scans return `end` when nothing qualifies.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "simd/dispatch.hpp"

namespace wss::simd {

// ---- Single-byte search (memchr twin) ------------------------------

/// First position in [p, end) equal to `c`, at the given level.
const char* find_byte(Level level, const char* p, const char* end,
                      unsigned char c);

/// find_byte at active_level().
inline const char* find_byte(const char* p, const char* end, unsigned char c) {
  return find_byte(active_level(), p, end, c);
}

// ---- Byte-set search (nibble-table shufti) -------------------------

/// A byte set with an exact membership table plus the 16+16-entry
/// nibble tables the vector kernels probe with pshufb/tbl. The nibble
/// approximation may claim membership for bytes outside the set
/// (collisions between nibble groups) but never misses a member; the
/// kernels re-check `contains()` before reporting.
struct NibbleSet {
  unsigned char lo[16] = {};
  unsigned char hi[16] = {};
  bool member[256] = {};
  bool empty = true;

  bool contains(unsigned char b) const { return member[b]; }
};

/// Adds byte `b` to the set (updating the nibble tables).
void nibble_set_add(NibbleSet& s, unsigned char b);

/// Builds a set from the bytes of `bytes`.
NibbleSet make_nibble_set(std::string_view bytes);

/// First position in [p, end) whose byte IS in the set.
const char* find_in_set(Level level, const char* p, const char* end,
                        const NibbleSet& s);
inline const char* find_in_set(const char* p, const char* end,
                               const NibbleSet& s) {
  return find_in_set(active_level(), p, end, s);
}

/// First position in [p, end) whose byte is NOT in the set.
const char* find_not_in_set(Level level, const char* p, const char* end,
                            const NibbleSet& s);
inline const char* find_not_in_set(const char* p, const char* end,
                                   const NibbleSet& s) {
  return find_not_in_set(active_level(), p, end, s);
}

// ---- Two-byte candidate blocks (Aho-Corasick root skip) ------------

/// The literal-start model for LiteralScanner's root skip: a position
/// can start a literal only if (byte, next byte) is the two-byte
/// prefix of some length >= 2 literal, or byte alone is a one-byte
/// literal.
///
/// Pairs are bucketed Teddy-style: each prefix pair hashes to one of 8
/// buckets, and the nibble tables hold 8-bit bucket masks instead of
/// booleans. A position is a candidate only when its byte is claimed
/// as a FIRST byte and the next byte as a SECOND byte of the SAME
/// bucket -- without bucketing, literal sets whose first/second bytes
/// are common letters (the realistic case) would approximate to "any
/// two letters" and the filter would pass most of the line. Bucket
/// collisions and nibble collisions both only ever overmatch; the
/// scanner re-checks its exact pair bitmap on every candidate.
struct PairTables {
  unsigned char first_lo[16] = {};
  unsigned char first_hi[16] = {};
  unsigned char second_lo[16] = {};
  unsigned char second_hi[16] = {};
  NibbleSet single;  ///< one-byte literals (exact member[] re-checked)
  bool any_pair = false;
};

/// Registers the two-byte prefix (b0, b1) of a length >= 2 literal.
void pair_tables_add_pair(PairTables& t, unsigned char b0, unsigned char b1);

/// Registers a one-byte literal.
void pair_tables_add_single(PairTables& t, unsigned char b);

/// First position q in [p, end) whose pair (q[0], q[1]) has its bit
/// set in the exact 65536-bit `pair_start` bitmap (bit index
/// (q[0] << 8) | q[1]; one-byte literals are expanded across all 256
/// second bytes by the builder). Positions are only considered while
/// a full pair fits (q + 1 < end); when none hits, returns end - 1
/// for a non-empty range (the caller decides the final byte's fate --
/// it has no pair) and end for an empty one.
///
/// The vector levels skip blocks via the bucketed PairTables
/// approximation and re-check every flagged position against
/// `pair_start`, so the result is identical to the scalar twin by
/// construction; keeping the whole loop (approximation + exact
/// re-check) inside one function keeps the shuffle tables in
/// registers across blocks.
const char* pair_find(Level level, const char* p, const char* end,
                      const PairTables& t, const std::uint64_t* pair_start);

}  // namespace wss::simd
