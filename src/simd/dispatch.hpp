// Runtime SIMD level selection for the byte-level hot path.
//
// Every vectorized routine in wss::simd exists at up to four levels --
// scalar (the reference twin every other level must match
// byte-for-byte), SSE2, AVX2, and NEON -- and the level actually used
// is picked once at startup: the best the CPU supports, overridable
// with WSS_SIMD=scalar|sse2|avx2|neon. Forcing a level the CPU cannot
// run (e.g. WSS_SIMD=neon on x86) falls back to auto-detection with a
// one-line stderr warning rather than crashing on an illegal
// instruction.
//
// The override exists for two reasons: the differential-fuzz suite
// (tests label `simd`) runs every kernel at every supported level and
// asserts bit-identical output against the scalar twin, and the bench
// ablations (BENCH_simd.json) time each level in one binary.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

namespace wss::simd {

enum class Level : std::uint8_t {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
  kNeon = 3,
};

/// Spelling used by WSS_SIMD and BENCH_simd.json ("scalar", "sse2",
/// "avx2", "neon").
const char* level_name(Level level);

/// Parses a WSS_SIMD spelling (case-insensitive). nullopt = unknown.
std::optional<Level> parse_level(std::string_view name);

/// The best level this CPU can execute (never returns an unsupported
/// one; kScalar at worst).
Level detected_level();

/// True when `level` can execute on this CPU. kScalar is always true.
bool level_supported(Level level);

/// Every supported level, scalar first -- what the differential suite
/// iterates over.
std::vector<Level> supported_levels();

/// The level the dispatched entry points use right now. Resolved once
/// from WSS_SIMD (falling back to detected_level()), then mutable via
/// set_level().
Level active_level();

/// Forces the active level (tests, bench ablations). Returns false --
/// and changes nothing -- when the CPU does not support `level`.
bool set_level(Level level);

}  // namespace wss::simd
