// Vectorized line splitting -- the one newline scanner under logio,
// the stream chunker, and (via the same find_byte kernel) the net
// frame decoder.
//
// Semantics are std::getline's, byte for byte: a frame is everything
// up to (not including) '\n'; '\r' is NOT stripped (callers that want
// CRLF handling, like net::FrameDecoder, layer it on top); an
// unterminated non-empty tail is delivered last; a trailing '\n'
// produces no extra empty line. Embedded NUL bytes are data. The
// differential-fuzz suite (tests label `simd`) pins every level to the
// scalar twin on adversarial corpora, including >1 MiB lines, all-256
// byte values, and lines straddling every alignment and chunk
// boundary.
#pragma once

#include <cstring>
#include <string_view>
#include <utility>

#include "simd/arena.hpp"
#include "simd/scan.hpp"

namespace wss::simd {

/// Calls fn(std::string_view line) for each line of a contiguous
/// buffer (the mmap'd zero-copy batch path: views point straight into
/// `text`).
template <typename F>
void for_each_line(std::string_view text, F&& fn) {
  const Level level = active_level();
  const char* p = text.data();
  const char* const end = p + text.size();
  while (p != end) {
    const char* nl = find_byte(level, p, end, '\n');
    if (nl == end) {
      fn(std::string_view(p, static_cast<std::size_t>(end - p)));
      return;
    }
    fn(std::string_view(p, static_cast<std::size_t>(nl - p)));
    p = nl + 1;
  }
}

/// Push-based splitter for chunked input (read() fallback, stdin):
/// feed() emits every line completed by the chunk -- views point into
/// the chunk itself except for lines straddling a chunk boundary,
/// which are assembled in a per-chunk arena (valid only during the
/// fn call). finish() flushes the unterminated tail, getline-style.
/// Zero steady-state heap allocations once the arenas reach the
/// longest-line high-water mark.
class ChunkSplitter {
 public:
  template <typename F>
  void feed(std::string_view chunk, F&& fn) {
    const Level level = active_level();
    const char* p = chunk.data();
    const char* const end = p + chunk.size();
    if (!carry_.empty() && p != end) {
      const char* nl = find_byte(level, p, end, '\n');
      const auto take = static_cast<std::size_t>(nl - p);
      // Grow the carry: in place when it is still the carry arena's
      // most recent allocation (the common case -- O(take)), else by
      // staging the join in the line arena so the old carry can be
      // read before its arena is rewound.
      if (char* tail = carry_arena_.try_extend(carry_, take)) {
        std::memcpy(tail, p, take);
        carry_ = {carry_.data(), carry_.size() + take};
      } else {
        line_arena_.reset();
        const std::string_view joined = line_arena_.join(carry_, {p, take});
        carry_arena_.reset();
        carry_ = carry_arena_.copy(joined);
      }
      if (nl == end) return;  // still unterminated
      const std::string_view line = carry_;
      carry_ = {};
      fn(line);
      carry_arena_.reset();
      line_arena_.reset();
      p = nl + 1;
    }
    while (p != end) {
      const char* nl = find_byte(level, p, end, '\n');
      if (nl == end) {
        carry_arena_.reset();
        carry_ = carry_arena_.copy({p, static_cast<std::size_t>(end - p)});
        return;
      }
      fn(std::string_view(p, static_cast<std::size_t>(nl - p)));
      p = nl + 1;
    }
  }

  /// End of input: delivers the carried tail (if any) exactly like
  /// getline's final unterminated line.
  template <typename F>
  void finish(F&& fn) {
    if (carry_.empty()) return;
    const std::string_view line = carry_;
    carry_ = {};
    fn(line);
    carry_arena_.reset();
  }

  /// Bytes currently carried across a chunk boundary.
  std::size_t carry_size() const { return carry_.size(); }

  /// Arena blocks held (tests: constant after warm-up).
  std::size_t arena_blocks() const {
    return carry_arena_.blocks() + line_arena_.blocks();
  }

 private:
  Arena carry_arena_;
  Arena line_arena_;
  std::string_view carry_;
};

}  // namespace wss::simd
