// NFA compilation and Pike-VM simulation for the pattern subset in
// pattern.hpp.
//
// The engine is a classic Thompson construction executed by a
// thread-list (Pike) virtual machine: worst-case O(|text| * |program|)
// with zero backtracking, so hostile or degenerate log content cannot
// blow up tagging time. Bounded repetitions are expanded at compile
// time (bounds are capped at kMaxRepeat).
//
// The compiled program (match/prog.hpp) is exposed read-only so that
// match::MultiRegex can relocate many Regex programs into one combined
// automaton and match them all in a single pass (see multiregex.hpp).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "match/pattern.hpp"
#include "match/prog.hpp"
#include "match/scratch.hpp"

namespace wss::match {

/// A compiled, immutable regular expression.
///
/// Thread-compatibility: `search`/`match` are const. The overloads
/// without a scratch argument use a thread_local PikeScratch; the
/// scratch-taking overloads are for callers that manage reuse
/// explicitly (the tag engine's hot path). Either way a single Regex
/// may be shared across threads.
class Regex {
 public:
  /// Compiles `pattern`; throws PatternError on invalid syntax.
  explicit Regex(std::string_view pattern, ParseOptions opts = {});

  /// True if the pattern matches anywhere in `text` (unanchored unless
  /// the pattern itself uses ^/$). `use_prefilter` = false skips the
  /// required-literal fast path (exposed for the tagging ablation
  /// bench; results are identical).
  bool search(std::string_view text, bool use_prefilter = true) const;

  /// Same, with caller-owned scratch (no per-call allocation).
  bool search(std::string_view text, PikeScratch& scratch,
              bool use_prefilter = true) const;

  /// True if the pattern matches the whole of `text`.
  bool full_match(std::string_view text) const;

  /// The pattern string this Regex was compiled from.
  const std::string& pattern() const { return pattern_; }

  /// A literal every match must contain ("" if none could be proven).
  /// Callers use this as a fast pre-filter: if the text does not
  /// contain the literal, search() cannot succeed.
  const std::string& prefilter_literal() const { return literal_; }

  /// Number of compiled instructions (for tests and diagnostics).
  std::size_t program_size() const { return prog_.size(); }

  /// The compiled program: read-only, for MultiRegex relocation.
  const Prog& prog() const { return prog_; }

 private:
  /// Core simulation. If `anchored_start`, threads start only at
  /// position 0; if `require_end`, kMatch is accepted only once the
  /// whole text is consumed.
  bool run(std::string_view text, bool anchored_start, bool require_end,
           PikeScratch& scratch) const;

  std::uint32_t emit(Inst inst);
  std::uint32_t compile_node(const Node& n);

  std::string pattern_;
  std::string literal_;
  Prog prog_;
};

}  // namespace wss::match
