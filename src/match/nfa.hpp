// NFA compilation and Pike-VM simulation for the pattern subset in
// pattern.hpp.
//
// The engine is a classic Thompson construction executed by a
// thread-list (Pike) virtual machine: worst-case O(|text| * |program|)
// with zero backtracking, so hostile or degenerate log content cannot
// blow up tagging time. Bounded repetitions are expanded at compile
// time (bounds are capped at kMaxRepeat).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "match/pattern.hpp"

namespace wss::match {

/// A compiled, immutable regular expression.
///
/// Thread-compatibility: `search`/`match` are const and allocate their
/// scratch per call, so a single Regex may be shared across threads.
class Regex {
 public:
  /// Compiles `pattern`; throws PatternError on invalid syntax.
  explicit Regex(std::string_view pattern, ParseOptions opts = {});

  /// True if the pattern matches anywhere in `text` (unanchored unless
  /// the pattern itself uses ^/$). `use_prefilter` = false skips the
  /// required-literal fast path (exposed for the tagging ablation
  /// bench; results are identical).
  bool search(std::string_view text, bool use_prefilter = true) const;

  /// True if the pattern matches the whole of `text`.
  bool full_match(std::string_view text) const;

  /// The pattern string this Regex was compiled from.
  const std::string& pattern() const { return pattern_; }

  /// A literal every match must contain ("" if none could be proven).
  /// Callers use this as a fast pre-filter: if the text does not
  /// contain the literal, search() cannot succeed.
  const std::string& prefilter_literal() const { return literal_; }

  /// Number of compiled instructions (for tests and diagnostics).
  std::size_t program_size() const { return prog_.size(); }

 private:
  enum class Op : std::uint8_t {
    kClass,  ///< consume one byte in cls, go to next instruction
    kSplit,  ///< fork to x and y
    kJump,   ///< go to x
    kBegin,  ///< zero-width: succeed only at text start
    kEnd,    ///< zero-width: succeed only at text end
    kWordB,  ///< zero-width: word boundary (x = 1 for \B)
    kMatch,  ///< accept
  };

  struct Inst {
    Op op;
    std::uint32_t x = 0;
    std::uint32_t y = 0;
    CharClass cls;
  };

  /// Core simulation. If `anchored_start`, threads start only at
  /// position 0; if `require_end`, kMatch is accepted only once the
  /// whole text is consumed.
  bool run(std::string_view text, bool anchored_start, bool require_end) const;

  std::uint32_t emit(Inst inst);
  std::uint32_t compile_node(const Node& n);

  std::string pattern_;
  std::string literal_;
  std::vector<Inst> prog_;
};

}  // namespace wss::match
