// Multi-pattern set matching: one pass over the line decides every
// pattern at once.
//
// A MultiRegex relocates the compiled Thompson programs of N Regexes
// into one combined address space (kMatch.x = pattern id) and executes
// it with a *lazy DFA*: memoized subset construction, built
// transition-by-transition as the input demands, with byte-class
// compression of the 256-byte alphabet. After warm-up the per-byte
// cost is one table lookup -- independent of N -- versus N Pike-VM
// runs for the per-pattern loop. This is the production design of
// RE2's DFA and Hyperscan's literal-first decomposition, sized for the
// tag engine's rule sets.
//
// The DFA state cache is bounded (Options::dfa_cache_bytes, default
// 64 MiB) and lives in the caller's MatchScratch, keeping the
// MultiRegex itself immutable and const-shareable across threads. If a
// pathological input blows the cache budget, the cache is flushed and
// the line is re-matched on a multi-pattern Pike VM over the same
// combined program -- so the worst case stays O(text * program) and
// results NEVER depend on which engine ran. After
// Options::max_cache_flushes blowups a scratch stays on the Pike VM
// for good (no rebuild thrash).
//
// Equivalence contract: for every pattern i, bit i of the result ==
// patterns[i]->search(text). tests/test_match_multiregex_fuzz.cpp
// enforces this differentially against the Pike VM.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "match/nfa.hpp"
#include "match/prog.hpp"
#include "match/scratch.hpp"

namespace wss::match {

/// Immutable combined matcher over N compiled patterns.
class MultiRegex {
 public:
  struct Options {
    /// Budget for the lazy-DFA state cache (per MatchScratch).
    std::size_t dfa_cache_bytes = 64ull << 20;
    /// Cache blowups tolerated per scratch before the scratch stays on
    /// the Pike VM permanently.
    int max_cache_flushes = 8;
  };

  /// `patterns` must outlive the MultiRegex (the tag engine keeps them
  /// alive through its RuleSet). Throws std::invalid_argument on more
  /// than 65535 patterns.
  explicit MultiRegex(std::vector<const Regex*> patterns);
  MultiRegex(std::vector<const Regex*> patterns, Options opts);

  std::size_t size() const { return starts_.size(); }
  std::size_t bitset_words() const { return (size() + 63) / 64; }

  /// Decides every pattern against `text` in one left-to-right scan.
  /// On return, scratch.matched holds bitset_words() words with bit i
  /// set iff patterns[i] matches anywhere in `text` -- with one
  /// refinement: if `interesting` (bitset_words() words) is non-null,
  /// the scan may stop early once every interesting pattern has
  /// matched, so bits OUTSIDE `interesting` are set-only-valid (a set
  /// bit is a real match; a clear bit is inconclusive). Bits inside
  /// `interesting` are always exact.
  void match_all(std::string_view text, MatchScratch& scratch,
                 const std::uint64_t* interesting = nullptr) const;

  /// Lazy-DFA path. Returns false -- leaving scratch.matched
  /// unspecified -- if the state cache blew its budget; callers then
  /// use match_all_pike. match_all() composes the two; these are
  /// exposed for the differential tests and the ablation bench.
  bool match_all_dfa(std::string_view text, MatchScratch& scratch,
                     const std::uint64_t* interesting = nullptr) const;

  /// Multi-pattern Pike VM over the same combined program: the
  /// always-correct O(text * program) reference and fallback.
  void match_all_pike(std::string_view text, MatchScratch& scratch,
                      const std::uint64_t* interesting = nullptr) const;

  // ---- Diagnostics ----
  std::size_t program_size() const { return prog_.size(); }
  std::size_t byte_classes() const { return num_classes_; }
  const Options& options() const { return opts_; }

 private:
  struct DfaCache;
  struct DfaState;

  DfaCache& cache_for(MatchScratch& scratch) const;
  DfaState* start_state(DfaCache& cache) const;
  /// Builds (or refuses, on budget) the transition from `from` on byte
  /// class `cls`.
  DfaState* build_transition(DfaCache& cache, DfaState* from,
                             std::uint16_t cls) const;
  /// Epsilon closure of `from`'s pending pcs under the given assertion
  /// context; fills cache.pending / cache.matches.
  void closure(DfaCache& cache, const DfaState* from, bool at_begin,
               bool at_end, bool prev_word, bool next_word) const;
  void build_byte_classes();

  std::vector<const Regex*> patterns_;
  Options opts_;
  std::uint64_t id_ = 0;  ///< process-unique instance id (cache ownership)
  Prog prog_;                          ///< relocated combined program
  std::vector<std::uint32_t> starts_;  ///< entry pc of each pattern
  std::array<std::uint16_t, 256> byte_class_;
  std::vector<unsigned char> class_rep_;  ///< representative byte per class
  std::uint16_t num_classes_ = 0;
};

}  // namespace wss::match
