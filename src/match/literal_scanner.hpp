// Multi-literal substring search: an Aho–Corasick automaton over the
// required literals of every rule in a RuleSet.
//
// The tag engine's old fast path probed each rule's single required
// literal with an independent memmem -- N passes over the line. A
// LiteralScanner finds all N literals in ONE pass: the goto/fail trie
// is flattened into a dense DFA at build time, so the scan is one
// table lookup per input byte regardless of how many literals are
// registered. The result is a bitset of literal ids present in the
// line, from which the engine derives the candidate rule set (a rule
// whose required literal is absent cannot match).
//
// Three layout decisions keep the per-byte cost at a few cycles
// (DESIGN.md section 5d):
//   - byte-class compression: bytes occurring in no literal share one
//     column, so a row is ~tens of entries instead of 256 and the hot
//     rows live in L1;
//   - accepting states are renumbered to the top of the id space, so
//     "did this byte complete a literal?" is a register compare
//     (state >= out_min_), not a table load;
//   - the root state's self-loop is peeled into a 256-byte skip table
//     plus an 8 KiB first-two-bytes bitmap, so bytes that start no
//     literal (digits, punctuation, most of a log line's
//     timestamp/location prefix) -- and bytes whose two-byte window
//     extends no literal prefix ('e' of "end" when the literals say
//     "ecc") -- never touch the transition table at all.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "match/scratch.hpp"
#include "simd/scan.hpp"

namespace wss::match {

/// Immutable multi-pattern substring matcher. Thread-compatible:
/// scan() is const and touches only caller-owned output.
class LiteralScanner {
 public:
  /// Builds the automaton; literal ids are indices into `literals`.
  /// Duplicate literals are allowed (both ids are reported); empty
  /// literals are not (throws std::invalid_argument -- an empty
  /// required literal means "no prefilter", which the caller models by
  /// not registering the rule here at all).
  explicit LiteralScanner(std::vector<std::string> literals);

  std::size_t size() const { return literals_.size(); }
  std::size_t bitset_words() const { return (size() + 63) / 64; }
  const std::vector<std::string>& literals() const { return literals_; }

  /// Sets bit i of `found` for every literal i occurring anywhere in
  /// `text`. `found` must hold bitset_words() zeroed words; bits are
  /// only ever set, so a caller may accumulate across fragments.
  /// Returns nonzero iff any literal occurred -- the "found any" OR
  /// falls out of the accept branch for free, so callers don't re-walk
  /// the bitset to learn a line is pure chatter.
  std::uint64_t scan(std::string_view text, std::uint64_t* found) const;

  /// Per-line form: sizes and zeroes `found` to bitset_words(), then
  /// scans. Same return as scan().
  std::uint64_t scan_fresh(std::string_view text,
                           std::vector<std::uint64_t>& found) const {
    found.assign(bitset_words(), 0);
    return scan(text, found.data());
  }

  // ---- Diagnostics ----
  /// Number of automaton states.
  std::size_t states() const {
    return num_classes_ ? trans_.size() >> shift_ : 0;
  }
  /// Number of byte classes (distinct literal bytes + 1 catch-all).
  std::size_t byte_classes() const { return num_classes_; }

 private:
  std::vector<std::string> literals_;
  /// Transition table, trans_[(state << shift_) | byte_class]; state 0
  /// is the root, states >= out_min_ accept at least one literal.
  std::vector<std::uint16_t> trans_;
  std::uint8_t byte_class_[256] = {};
  /// true for bytes on the root's self-loop (start no literal).
  std::uint8_t root_stay_[256] = {};
  /// Bit (b0 << 8 | b1) set iff a literal may start with bytes b0 b1
  /// (the exact two-byte prefixes of length >= 2 literals, plus every
  /// pair whose b0 is a one-byte literal). 1024 words = 8 KiB.
  std::vector<std::uint64_t> pair_start_;
  /// Bucketed nibble-table approximation of the same prefix model,
  /// probed by the vectorized root skip (simd::pair_find) 16-32
  /// positions at a time; candidates it yields are re-checked against
  /// pair_start_ inside pair_find, so the skip stops at the same
  /// position as the scalar twin at every level.
  simd::PairTables pair_tables_;
  std::uint32_t num_classes_ = 0;
  std::uint32_t shift_ = 0;    ///< log2 of the padded row stride
  std::uint32_t out_min_ = 0;  ///< first accepting state id
  /// Literal ids accepted by state out_min_ + k live at
  /// out_ids_[out_offsets_[k] .. out_offsets_[k+1]).
  std::vector<std::uint32_t> out_offsets_;
  std::vector<std::uint16_t> out_ids_;
};

}  // namespace wss::match
