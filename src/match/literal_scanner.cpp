#include "match/literal_scanner.hpp"

#include <bit>
#include <deque>
#include <stdexcept>

namespace wss::match {

LiteralScanner::LiteralScanner(std::vector<std::string> literals)
    : literals_(std::move(literals)) {
  if (literals_.size() > 0xffff) {
    throw std::invalid_argument("LiteralScanner: more than 65535 literals");
  }
  if (literals_.empty()) return;

  // Phase 1: classic dense trie over the full byte alphabet, as build
  // scratch. -1 = no edge yet.
  std::vector<std::int32_t> next;
  std::vector<std::vector<std::uint16_t>> out;
  const auto new_state = [&]() -> std::int32_t {
    const auto s = static_cast<std::int32_t>(next.size() / 256);
    next.insert(next.end(), 256, -1);
    out.emplace_back();
    return s;
  };
  new_state();  // root
  for (std::size_t i = 0; i < literals_.size(); ++i) {
    const std::string& lit = literals_[i];
    if (lit.empty()) {
      throw std::invalid_argument("LiteralScanner: empty literal");
    }
    std::int32_t s = 0;
    for (const char ch : lit) {
      const auto c = static_cast<unsigned char>(ch);
      // NB: new_state() reallocates next, so the edge slot must be
      // re-indexed (never held by reference) across the call.
      const std::size_t slot = static_cast<std::size_t>(s) * 256 + c;
      std::int32_t edge = next[slot];
      if (edge < 0) {
        edge = new_state();
        next[slot] = edge;
      }
      s = edge;
    }
    out[static_cast<std::size_t>(s)].push_back(static_cast<std::uint16_t>(i));
  }
  const std::size_t nstates = next.size() / 256;
  if (nstates > 0xffff) {
    throw std::invalid_argument(
        "LiteralScanner: literal set exceeds 65535 automaton states");
  }

  // Phase 2: BFS fail links; missing edges are resolved to the fail
  // state's edge as we go, turning the trie into a complete DFA (one
  // lookup per scanned byte). Outputs are merged down fail links so a
  // state accepts every literal ending at it, including proper
  // suffixes.
  std::vector<std::int32_t> fail(nstates, 0);
  std::deque<std::int32_t> queue;
  for (int c = 0; c < 256; ++c) {
    std::int32_t& edge = next[static_cast<std::size_t>(c)];
    if (edge < 0) {
      edge = 0;
    } else {
      fail[static_cast<std::size_t>(edge)] = 0;
      queue.push_back(edge);
    }
  }
  while (!queue.empty()) {
    const std::int32_t u = queue.front();
    queue.pop_front();
    const std::int32_t f = fail[static_cast<std::size_t>(u)];
    if (!out[static_cast<std::size_t>(f)].empty()) {
      auto& ou = out[static_cast<std::size_t>(u)];
      const auto& of = out[static_cast<std::size_t>(f)];
      ou.insert(ou.end(), of.begin(), of.end());
    }
    for (int c = 0; c < 256; ++c) {
      std::int32_t& edge = next[static_cast<std::size_t>(u) * 256 +
                                static_cast<std::size_t>(c)];
      const std::int32_t via_fail =
          next[static_cast<std::size_t>(f) * 256 + static_cast<std::size_t>(c)];
      if (edge < 0) {
        edge = via_fail;
      } else {
        fail[static_cast<std::size_t>(edge)] = via_fail;
        queue.push_back(edge);
      }
    }
  }

  // Phase 3a: byte classes. Any byte occurring in no literal has
  // next[s][b] == 0 for every s (its fail resolution bottoms out at
  // the root, which has no edge on it), so all such bytes share class
  // 0; every distinct literal byte gets its own class. The row stride
  // is padded to a power of two so the scan indexes with a shift, not
  // a multiply, on the load's dependency chain.
  bool seen[256] = {};
  for (const std::string& lit : literals_) {
    for (const char ch : lit) {
      const auto c = static_cast<unsigned char>(ch);
      if (!seen[c]) {
        seen[c] = true;
        // If all 256 byte values occur in literals, exactly one stays
        // in class 0 -- then there are no catch-all bytes to share it
        // with, so per-byte distinctness still holds.
        if (num_classes_ < 255) {
          byte_class_[c] = static_cast<std::uint8_t>(++num_classes_);
        }
      }
    }
  }
  ++num_classes_;  // the catch-all class 0
  shift_ = static_cast<std::uint32_t>(
      std::countr_zero(std::bit_ceil(static_cast<std::uint32_t>(num_classes_))));

  // Phase 3b: renumber so accepting states occupy the top of the id
  // space -- the scan's accept test becomes `state >= out_min_`. The
  // root keeps id 0 (it never accepts: empty literals are rejected),
  // and both groups stay in construction order for locality.
  std::vector<std::uint16_t> perm(nstates);
  std::uint16_t id = 0;
  for (std::size_t s = 0; s < nstates; ++s) {
    if (out[s].empty()) perm[s] = id++;
  }
  out_min_ = id;
  for (std::size_t s = 0; s < nstates; ++s) {
    if (!out[s].empty()) perm[s] = id++;
  }

  trans_.assign(nstates << shift_, 0);
  for (std::size_t s = 0; s < nstates; ++s) {
    const std::size_t row = static_cast<std::size_t>(perm[s]) << shift_;
    for (int c = 0; c < 256; ++c) {
      trans_[row | byte_class_[c]] =
          perm[static_cast<std::size_t>(next[s * 256 + static_cast<std::size_t>(c)])];
    }
  }
  out_offsets_.assign(nstates - out_min_ + 1, 0);
  for (std::size_t s = 0; s < nstates; ++s) {
    if (!out[s].empty()) {
      out_offsets_[perm[s] - out_min_ + 1] =
          static_cast<std::uint32_t>(out[s].size());
    }
  }
  for (std::size_t k = 1; k < out_offsets_.size(); ++k) {
    out_offsets_[k] += out_offsets_[k - 1];
  }
  out_ids_.resize(out_offsets_.back());
  for (std::size_t s = 0; s < nstates; ++s) {
    if (!out[s].empty()) {
      std::uint32_t at = out_offsets_[perm[s] - out_min_];
      for (const std::uint16_t lit_id : out[s]) out_ids_[at++] = lit_id;
    }
  }

  // Phase 3c: the root self-loop, peeled into its own table so the
  // scan can burn through non-starting bytes without touching trans_.
  for (int c = 0; c < 256; ++c) {
    root_stay_[c] = trans_[byte_class_[c]] == 0 ? 1 : 0;
  }

  // Phase 3d: the two-byte start bitmap, built exactly from the
  // literals (not from the fail-completed DFA, whose root-adjacent
  // edges would conservatively over-approximate): a literal can start
  // at position p only if (d[p], d[p+1]) is the two-byte prefix of
  // some length >= 2 literal, or d[p] alone is a one-byte literal.
  pair_start_.assign(1024, 0);
  for (const std::string& lit : literals_) {
    const auto b0 = static_cast<unsigned char>(lit[0]);
    if (lit.size() >= 2) {
      const std::uint32_t idx =
          (static_cast<std::uint32_t>(b0) << 8) |
          static_cast<unsigned char>(lit[1]);
      pair_start_[idx >> 6] |= std::uint64_t{1} << (idx & 63);
      simd::pair_tables_add_pair(pair_tables_, b0,
                                 static_cast<unsigned char>(lit[1]));
    } else {
      for (std::uint32_t b1 = 0; b1 < 256; ++b1) {
        const std::uint32_t idx = (static_cast<std::uint32_t>(b0) << 8) | b1;
        pair_start_[idx >> 6] |= std::uint64_t{1} << (idx & 63);
      }
      simd::pair_tables_add_single(pair_tables_, b0);
    }
  }
}

std::uint64_t LiteralScanner::scan(std::string_view text,
                                   std::uint64_t* found) const {
  if (literals_.empty()) return 0;
  const auto* d = reinterpret_cast<const unsigned char*>(text.data());
  const std::size_t n = text.size();
  const std::uint16_t* trans = trans_.data();
  const std::uint64_t* pair_start = pair_start_.data();
  const simd::Level level = simd::active_level();
  std::uint64_t any = 0;
  std::uint32_t s = 0;
  std::size_t p = 0;
  while (p < n) {
    if (s == 0) {
      // Root fast path: no literal can start at position p unless
      // pair_start_ has the bit for (d[p], d[p+1]), so skip straight
      // to the first position whose bit is set. State 0 carries no
      // active prefix, so no occurrence can span a skipped position.
      // pair_find prunes via the bucketed nibble approximation at the
      // vector levels and re-checks this exact bitmap on every
      // candidate, so every level stops at the same position.
      p = static_cast<std::size_t>(
          simd::pair_find(level, reinterpret_cast<const char*>(d + p),
                          reinterpret_cast<const char*>(d + n), pair_tables_,
                          pair_start) -
          reinterpret_cast<const char*>(d));
      // pair_find never inspects the final byte (it has no pair);
      // consume it here when it cannot leave the root.
      if (p + 1 == n && root_stay_[d[p]]) ++p;
      if (p == n) break;
    }
    s = trans[(s << shift_) | byte_class_[d[p++]]];
    if (s >= out_min_) {
      any = 1;
      const std::uint32_t k = s - out_min_;
      for (std::uint32_t j = out_offsets_[k]; j < out_offsets_[k + 1]; ++j) {
        bitset_set(found, out_ids_[j]);
      }
    }
  }
  return any;
}

}  // namespace wss::match
