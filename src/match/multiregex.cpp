#include "match/multiregex.hpp"

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <stdexcept>
#include <unordered_map>

namespace wss::match {

namespace {

constexpr std::uint32_t kFlagBegin = 1;     ///< state sits at text start
constexpr std::uint32_t kFlagPrevWord = 2;  ///< last consumed byte was \w

std::size_t popcount_words(const std::uint64_t* words, std::size_t n) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t w = words[i];
    while (w) {
      w &= w - 1;
      ++total;
    }
  }
  return total;
}

struct KeyHash {
  std::size_t operator()(const std::vector<std::uint32_t>& key) const {
    // FNV-1a over the words.
    std::uint64_t h = 14695981039346656037ull;
    for (const std::uint32_t w : key) {
      h = (h ^ w) * 1099511628211ull;
    }
    return static_cast<std::size_t>(h);
  }
};

}  // namespace

/// One memoized DFA state. The canonical key is
///   [flags, nmatch, match ids..., pending pcs...]
/// where the match ids are the patterns whose accept was crossed on
/// the transition that *enters* this state (RE2's match-marker trick:
/// emission context is part of state identity, so transitions stay
/// pure lookups), and the pending pcs are the kClass instructions
/// waiting to consume the next byte, pre-closure.
struct MultiRegex::DfaState {
  std::vector<std::uint32_t> key;
  std::vector<DfaState*> next;  ///< per byte class; nullptr = unbuilt
  std::vector<std::uint16_t> eof_matches;
  bool eof_done = false;

  std::uint32_t flags() const { return key[0]; }
  std::uint32_t nmatch() const { return key[1]; }
  const std::uint32_t* match_ids() const { return key.data() + 2; }
  const std::uint32_t* pcs() const { return key.data() + 2 + key[1]; }
  std::size_t npcs() const { return key.size() - 2 - key[1]; }
};

/// The per-scratch state cache plus closure work areas. Owning it in
/// the scratch (not the MultiRegex) keeps the matcher const-shareable
/// across threads with zero synchronization.
struct MultiRegex::DfaCache final : DfaCacheBase {
  std::unordered_map<std::vector<std::uint32_t>, std::unique_ptr<DfaState>,
                     KeyHash>
      states;
  DfaState* start = nullptr;
  std::size_t bytes = 0;
  int flushes = 0;
  bool disabled = false;

  // Closure work areas (reused; never part of the budget).
  std::vector<std::uint32_t> stack;
  std::vector<std::uint32_t> mark;
  std::uint32_t gen = 0;
  std::vector<std::uint32_t> pending;
  std::vector<std::uint32_t> matches;
  std::vector<std::uint32_t> key;

  void flush() {
    states.clear();
    start = nullptr;
    bytes = 0;
    ++flushes;
  }
};

MultiRegex::MultiRegex(std::vector<const Regex*> patterns)
    : MultiRegex(std::move(patterns), Options()) {}

MultiRegex::MultiRegex(std::vector<const Regex*> patterns, Options opts)
    : patterns_(std::move(patterns)), opts_(opts) {
  static std::atomic<std::uint64_t> next_id{0};
  id_ = ++next_id;
  if (patterns_.size() > 0xffff) {
    throw std::invalid_argument("MultiRegex: more than 65535 patterns");
  }
  // Relocate each pattern's program; kMatch.x becomes the pattern id.
  for (std::size_t i = 0; i < patterns_.size(); ++i) {
    const Prog& src = patterns_[i]->prog();
    const auto off = static_cast<std::uint32_t>(prog_.size());
    starts_.push_back(off);
    for (Inst in : src) {
      switch (in.op) {
        case Op::kSplit:
          in.x += off;
          in.y += off;
          break;
        case Op::kJump:
          in.x += off;
          break;
        case Op::kMatch:
          in.x = static_cast<std::uint32_t>(i);
          break;
        default:
          break;  // kWordB.x is the \B flag, not a pc -- leave it alone
      }
      prog_.push_back(std::move(in));
    }
  }
  build_byte_classes();
}

void MultiRegex::build_byte_classes() {
  // Two bytes are equivalent iff no kClass in the program -- and not
  // the \b word test -- can tell them apart; collapsing them shrinks
  // every DFA state's transition array from 256 entries to one per
  // equivalence class (log text typically yields a few dozen).
  std::vector<const CharClass*> distinct;
  for (const Inst& in : prog_) {
    if (in.op != Op::kClass) continue;
    bool seen = false;
    for (const CharClass* d : distinct) {
      if (*d == in.cls) {
        seen = true;
        break;
      }
    }
    if (!seen) distinct.push_back(&in.cls);
  }
  std::map<std::vector<bool>, std::uint16_t> signatures;
  for (int b = 0; b < 256; ++b) {
    const auto c = static_cast<unsigned char>(b);
    std::vector<bool> sig;
    sig.reserve(distinct.size() + 1);
    sig.push_back(is_word_byte(c));
    for (const CharClass* d : distinct) sig.push_back(d->contains(c));
    const auto [it, inserted] = signatures.emplace(sig, num_classes_);
    if (inserted) {
      class_rep_.push_back(c);
      ++num_classes_;
    }
    byte_class_[static_cast<std::size_t>(b)] = it->second;
  }
}

MultiRegex::DfaCache& MultiRegex::cache_for(MatchScratch& scratch) const {
  if (scratch.dfa_owner != id_ || !scratch.dfa) {
    scratch.dfa = std::make_unique<DfaCache>();
    scratch.dfa_owner = id_;
  }
  auto& cache = static_cast<DfaCache&>(*scratch.dfa);
  cache.mark.resize(prog_.size(), 0);
  return cache;
}

void MultiRegex::closure(DfaCache& cache, const DfaState* from, bool at_begin,
                         bool at_end, bool prev_word, bool next_word) const {
  cache.pending.clear();
  cache.matches.clear();
  if (cache.gen == ~std::uint32_t{0}) {
    std::fill(cache.mark.begin(), cache.mark.end(), 0);
    cache.gen = 0;
  }
  const std::uint32_t gen = ++cache.gen;
  auto& stack = cache.stack;
  stack.clear();
  // Reverse order keeps the traversal identical to the Pike VM's
  // (not semantically required -- sets are canonicalized -- but it
  // makes debugging traces line up).
  for (std::size_t i = from->npcs(); i-- > 0;) stack.push_back(from->pcs()[i]);
  while (!stack.empty()) {
    const std::uint32_t pc = stack.back();
    stack.pop_back();
    if (cache.mark[pc] == gen) continue;
    cache.mark[pc] = gen;
    const Inst& in = prog_[pc];
    switch (in.op) {
      case Op::kClass:
        cache.pending.push_back(pc);
        break;
      case Op::kSplit:
        stack.push_back(in.y);
        stack.push_back(in.x);
        break;
      case Op::kJump:
        stack.push_back(in.x);
        break;
      case Op::kBegin:
        if (at_begin) stack.push_back(pc + 1);
        break;
      case Op::kEnd:
        if (at_end) stack.push_back(pc + 1);
        break;
      case Op::kWordB: {
        const bool at_boundary = prev_word != next_word;
        if (at_boundary == (in.x == 0)) stack.push_back(pc + 1);
        break;
      }
      case Op::kMatch:
        cache.matches.push_back(in.x);
        break;
    }
  }
}

MultiRegex::DfaState* MultiRegex::start_state(DfaCache& cache) const {
  if (cache.start) return cache.start;
  auto& key = cache.key;
  key.clear();
  key.push_back(kFlagBegin);
  key.push_back(0);  // no entry matches
  key.insert(key.end(), starts_.begin(), starts_.end());

  const std::size_t est = sizeof(DfaState) + key.size() * 8 +
                          num_classes_ * sizeof(DfaState*) + 96;
  if (cache.bytes + est > opts_.dfa_cache_bytes) {
    cache.flush();
    if (cache.flushes > opts_.max_cache_flushes) cache.disabled = true;
    return nullptr;
  }
  auto state = std::make_unique<DfaState>();
  state->key = key;
  state->next.assign(num_classes_, nullptr);
  DfaState* raw = state.get();
  cache.states.emplace(key, std::move(state));
  cache.bytes += est;
  cache.start = raw;
  return raw;
}

MultiRegex::DfaState* MultiRegex::build_transition(DfaCache& cache,
                                                   DfaState* from,
                                                   std::uint16_t cls) const {
  const unsigned char b = class_rep_[cls];
  closure(cache, from, from->flags() & kFlagBegin, /*at_end=*/false,
          from->flags() & kFlagPrevWord, is_word_byte(b));

  auto& key = cache.key;
  key.clear();
  key.push_back(is_word_byte(b) ? kFlagPrevWord : 0);
  std::sort(cache.matches.begin(), cache.matches.end());
  key.push_back(static_cast<std::uint32_t>(cache.matches.size()));
  key.insert(key.end(), cache.matches.begin(), cache.matches.end());

  // Step the pending threads that accept b, then re-inject every
  // pattern's start (the implicit unanchored ".*?" prefix).
  const std::size_t pcs_begin = key.size();
  for (const std::uint32_t pc : cache.pending) {
    if (prog_[pc].cls.contains(b)) key.push_back(pc + 1);
  }
  key.insert(key.end(), starts_.begin(), starts_.end());
  std::sort(key.begin() + pcs_begin, key.end());
  key.erase(std::unique(key.begin() + pcs_begin, key.end()), key.end());

  const auto it = cache.states.find(key);
  if (it != cache.states.end()) {
    from->next[cls] = it->second.get();
    return it->second.get();
  }

  const std::size_t est = sizeof(DfaState) + key.size() * 8 +
                          num_classes_ * sizeof(DfaState*) + 96;
  if (cache.bytes + est > opts_.dfa_cache_bytes) {
    // Budget blown: evict everything. The caller aborts this line (it
    // re-matches on the Pike VM) and the next line rebuilds from a
    // cold cache; after max_cache_flushes blowups the cache disables
    // itself so adversarial streams cannot thrash rebuild work.
    cache.flush();
    if (cache.flushes > opts_.max_cache_flushes) cache.disabled = true;
    return nullptr;
  }
  auto state = std::make_unique<DfaState>();
  state->key = key;
  state->next.assign(num_classes_, nullptr);
  DfaState* raw = state.get();
  cache.states.emplace(key, std::move(state));
  cache.bytes += est;
  from->next[cls] = raw;
  return raw;
}

bool MultiRegex::match_all_dfa(std::string_view text, MatchScratch& scratch,
                               const std::uint64_t* interesting) const {
  bitset_clear(scratch.matched, bitset_words());
  if (patterns_.empty()) return true;

  DfaCache& cache = cache_for(scratch);
  if (cache.disabled) {
    scratch.dfa_flushes = static_cast<std::uint64_t>(cache.flushes);
    return false;
  }

  std::uint64_t* matched = scratch.matched.data();
  std::size_t remaining = interesting
                              ? popcount_words(interesting, bitset_words())
                              : size();
  DfaState* s = start_state(cache);
  if (!s) {
    scratch.dfa_flushes = static_cast<std::uint64_t>(cache.flushes);
    return false;
  }

  const auto record = [&](std::size_t id) -> bool {
    if (!bitset_test(matched, id)) {
      bitset_set(matched, id);
      if (!interesting || bitset_test(interesting, id)) {
        if (--remaining == 0) return true;
      }
    }
    return false;
  };

  bool done = remaining == 0;
  for (std::size_t pos = 0; !done && pos < text.size(); ++pos) {
    const std::uint16_t cls =
        byte_class_[static_cast<unsigned char>(text[pos])];
    DfaState* nxt = s->next[cls];
    if (!nxt) {
      nxt = build_transition(cache, s, cls);
      if (!nxt) {
        scratch.dfa_flushes = static_cast<std::uint64_t>(cache.flushes);
        return false;  // budget blown mid-line; caller falls back
      }
    }
    for (std::uint32_t k = 0; k < nxt->nmatch(); ++k) {
      if (record(nxt->match_ids()[k])) {
        done = true;
        break;
      }
    }
    s = nxt;
  }

  if (!done) {
    // The final closure at end-of-text (kEnd anchors pass here).
    if (!s->eof_done) {
      closure(cache, s, s->flags() & kFlagBegin, /*at_end=*/true,
              s->flags() & kFlagPrevWord, /*next_word=*/false);
      s->eof_matches.assign(cache.matches.begin(), cache.matches.end());
      s->eof_done = true;
    }
    for (const std::uint16_t id : s->eof_matches) {
      if (record(id)) break;
    }
  }
  ++scratch.dfa_scans;
  scratch.dfa_flushes = static_cast<std::uint64_t>(cache.flushes);
  return true;
}

void MultiRegex::match_all_pike(std::string_view text, MatchScratch& scratch,
                                const std::uint64_t* interesting) const {
  bitset_clear(scratch.matched, bitset_words());
  if (patterns_.empty()) return;

  std::uint64_t* matched = scratch.matched.data();
  std::size_t remaining = interesting
                              ? popcount_words(interesting, bitset_words())
                              : size();
  if (remaining == 0) return;

  PikeScratch& ps = scratch.pike;
  ps.prepare(prog_.size());
  auto& clist = ps.clist;
  auto& nlist = ps.nlist;
  auto& stack = ps.stack;
  auto& mark = ps.mark;
  clist.clear();
  nlist.clear();

  std::uint32_t gen = ps.next_gen();
  bool done = false;
  const auto record = [&](std::size_t id) {
    if (!bitset_test(matched, id)) {
      bitset_set(matched, id);
      if (!interesting || bitset_test(interesting, id)) {
        if (--remaining == 0) done = true;
      }
    }
  };
  const auto add = [&](std::uint32_t pc0, std::size_t pos,
                       std::vector<std::uint32_t>& list) {
    stack.clear();
    stack.push_back(pc0);
    while (!stack.empty()) {
      const std::uint32_t pc = stack.back();
      stack.pop_back();
      if (mark[pc] == gen) continue;
      mark[pc] = gen;
      const Inst& in = prog_[pc];
      switch (in.op) {
        case Op::kClass:
          list.push_back(pc);
          break;
        case Op::kSplit:
          stack.push_back(in.y);
          stack.push_back(in.x);
          break;
        case Op::kJump:
          stack.push_back(in.x);
          break;
        case Op::kBegin:
          if (pos == 0) stack.push_back(pc + 1);
          break;
        case Op::kEnd:
          if (pos == text.size()) stack.push_back(pc + 1);
          break;
        case Op::kWordB: {
          const bool before = pos > 0 && is_word_byte(text[pos - 1]);
          const bool after = pos < text.size() && is_word_byte(text[pos]);
          const bool at_boundary = before != after;
          if (at_boundary == (in.x == 0)) stack.push_back(pc + 1);
          break;
        }
        case Op::kMatch:
          record(in.x);
          break;
      }
    }
  };

  for (std::size_t pos = 0;; ++pos) {
    // The implicit unanchored prefix: every pattern restarts here.
    for (const std::uint32_t st : starts_) add(st, pos, clist);
    if (done || pos == text.size()) break;
    const auto c = static_cast<unsigned char>(text[pos]);
    nlist.clear();
    gen = ps.next_gen();
    for (const std::uint32_t pc : clist) {
      if (prog_[pc].cls.contains(c)) add(pc + 1, pos + 1, nlist);
    }
    clist.swap(nlist);
    if (done) break;
  }
}

void MultiRegex::match_all(std::string_view text, MatchScratch& scratch,
                           const std::uint64_t* interesting) const {
  if (match_all_dfa(text, scratch, interesting)) return;
  ++scratch.pike_fallback_scans;
  match_all_pike(text, scratch, interesting);
}

}  // namespace wss::match
