// Caller-owned scratch for the matching hot path.
//
// The tag engine runs over hundreds of millions of lines; allocating
// thread lists, bitsets, and field arrays per line would dominate the
// cost of matching itself. A MatchScratch owns every per-line buffer
// the match/tag stack needs -- Pike-VM thread lists, the literal /
// candidate / matched bitsets, the lazy awk field split, and the
// lazy-DFA state cache -- and is reused across lines. One scratch per
// thread; the engines themselves stay immutable and const-shareable.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

namespace wss::match {

/// Thread lists and visit marks for one Pike-VM simulation. Reusable
/// across programs of any size (prepare() grows the mark array).
struct PikeScratch {
  std::vector<std::uint32_t> clist;
  std::vector<std::uint32_t> nlist;
  std::vector<std::uint32_t> stack;
  /// mark[pc] == gen means pc was already added this generation. gen
  /// only ever grows (reset to 0 with a full clear on wraparound), so
  /// stale marks from earlier lines -- or other programs -- never
  /// alias.
  std::vector<std::uint32_t> mark;
  std::uint32_t gen = 0;

  /// Ensures mark covers `prog_size` pcs; amortized no-op.
  void prepare(std::size_t prog_size) {
    if (mark.size() < prog_size) mark.resize(prog_size, 0);
  }

  /// Starts a new dedup generation and returns it.
  std::uint32_t next_gen() {
    if (gen == ~std::uint32_t{0}) {
      std::fill(mark.begin(), mark.end(), 0);
      gen = 0;
    }
    return ++gen;
  }
};

/// Opaque base for the per-scratch lazy-DFA state cache; the concrete
/// type lives in multiregex.cpp.
struct DfaCacheBase {
  virtual ~DfaCacheBase() = default;
};

/// Memoized prefilter derivations for one TagEngine: literal-found
/// bitset -> candidate-rule bitset. Real logs repeat a handful of
/// literal combinations millions of times, so the per-line mask walk
/// (rules x literal words) collapses to a short key compare on the hot
/// combinations. Keyed by the engine's unique instance id (the
/// dfa_owner pattern -- never an address); a different engine resets
/// the cache. Capacity is a few slots with round-robin overwrite:
/// overwrite assigns into same-sized vectors, so a warmed cache never
/// allocates again even when distinct combinations exceed capacity.
struct CandidateCache {
  static constexpr std::size_t kSlots = 16;
  struct Entry {
    std::vector<std::uint64_t> key;         ///< literal-found bitset
    std::vector<std::uint64_t> candidates;  ///< derived candidate rules
    bool any = false;                       ///< candidate set non-empty
  };
  std::uint64_t owner = 0;  ///< owning engine's instance id; 0 = empty
  std::vector<Entry> entries;
  std::uint32_t next_evict = 0;
};

/// All per-line mutable state for the match/tag stack. Default
/// constructible; buffers grow to their steady-state sizes within the
/// first few lines and are never shrunk.
class MatchScratch {
 public:
  PikeScratch pike;

  // Bitsets, one std::uint64_t word per 64 ids. Sized by the engines.
  std::vector<std::uint64_t> found;        ///< literal ids present in line
  std::vector<std::uint64_t> candidates;   ///< rule ids passing the prefilter
  std::vector<std::uint64_t> interesting;  ///< pattern ids worth deciding
  std::vector<std::uint64_t> matched;      ///< pattern ids that match the line

  /// Lazy awk-style field split of the current line.
  std::vector<std::string_view> fields;

  /// Lazy-DFA state cache, owned here so the MultiRegex stays const and
  /// shareable across threads. `dfa_owner` is the owning MultiRegex's
  /// unique instance id (never an address -- addresses can be reused
  /// after destruction, which would resurrect a stale cache); a
  /// different owner resets it. 0 = no cache yet.
  std::unique_ptr<DfaCacheBase> dfa;
  std::uint64_t dfa_owner = 0;

  /// Prefilter memoization for the owning TagEngine (see
  /// CandidateCache).
  CandidateCache candidate_cache;

  // ---- Diagnostics (tests and the tagging bench read these; the
  // obs layer publishes them via tag::TagMetricsFlusher) ----
  std::uint64_t dfa_scans = 0;            ///< lines decided by the lazy DFA
  std::uint64_t pike_fallback_scans = 0;  ///< lines decided by the Pike VM
  std::uint64_t dfa_flushes = 0;          ///< cache blowups (state evictions)
  // Per-line tag-path tallies, maintained by TagEngine::tag_line as
  // plain increments (the miss path cannot afford per-line atomics;
  // these are delta-flushed to obs counters at chunk boundaries).
  // tag_lines and tag_hits are per-line functions of the input, so
  // their process totals are identical at any thread count;
  // prefilter_rejects additionally depends on the engine mode (always
  // 0 in naive mode).
  std::uint64_t tag_lines = 0;          ///< lines offered to tag_line
  std::uint64_t tag_hits = 0;           ///< lines some rule tagged
  std::uint64_t prefilter_rejects = 0;  ///< lines the literal scan rejected
};

/// Bitset helpers over the word vectors above.
inline void bitset_clear(std::vector<std::uint64_t>& bits, std::size_t words) {
  bits.assign(words, 0);
}
inline void bitset_set(std::uint64_t* bits, std::size_t i) {
  bits[i >> 6] |= std::uint64_t{1} << (i & 63);
}
inline bool bitset_test(const std::uint64_t* bits, std::size_t i) {
  return (bits[i >> 6] >> (i & 63)) & 1;
}

}  // namespace wss::match
