#include "match/pattern.hpp"

namespace wss::match {

namespace {

bool is_ascii_alpha(unsigned char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
}

unsigned char ascii_lower(unsigned char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<unsigned char>(c - 'A' + 'a') : c;
}

unsigned char ascii_upper(unsigned char c) {
  return (c >= 'a' && c <= 'z') ? static_cast<unsigned char>(c - 'a' + 'A') : c;
}

/// Recursive-descent parser over the pattern bytes.
class Parser {
 public:
  Parser(std::string_view pattern, const ParseOptions& opts)
      : p_(pattern), opts_(opts) {}

  std::unique_ptr<Node> run() {
    auto node = parse_alt();
    if (pos_ != p_.size()) {
      fail("unexpected ')' or trailing input");
    }
    return node;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw PatternError("pattern error at offset " + std::to_string(pos_) +
                       ": " + msg);
  }

  bool eof() const { return pos_ >= p_.size(); }
  unsigned char peek() const { return static_cast<unsigned char>(p_[pos_]); }
  unsigned char take() { return static_cast<unsigned char>(p_[pos_++]); }

  std::unique_ptr<Node> make(NodeKind k) {
    auto n = std::make_unique<Node>();
    n->kind = k;
    return n;
  }

  std::unique_ptr<Node> make_class(const CharClass& cls) {
    auto n = make(NodeKind::kClass);
    n->cls = cls;
    return n;
  }

  void add_char(CharClass& cls, unsigned char c) const {
    if (opts_.case_insensitive && is_ascii_alpha(c)) {
      cls.add(ascii_lower(c));
      cls.add(ascii_upper(c));
    } else {
      cls.add(c);
    }
  }

  // alt := concat ('|' concat)*
  std::unique_ptr<Node> parse_alt() {
    auto first = parse_concat();
    if (eof() || peek() != '|') return first;
    auto alt = make(NodeKind::kAlt);
    alt->children.push_back(std::move(first));
    while (!eof() && peek() == '|') {
      take();
      alt->children.push_back(parse_concat());
    }
    return alt;
  }

  // concat := repeat*
  std::unique_ptr<Node> parse_concat() {
    auto cat = make(NodeKind::kConcat);
    while (!eof() && peek() != '|' && peek() != ')') {
      cat->children.push_back(parse_repeat());
    }
    if (cat->children.empty()) return make(NodeKind::kEmpty);
    if (cat->children.size() == 1) return std::move(cat->children.front());
    return cat;
  }

  // repeat := atom ('*' | '+' | '?' | '{m}' | '{m,}' | '{m,n}')?
  std::unique_ptr<Node> parse_repeat() {
    auto atom = parse_atom();
    if (eof()) return atom;
    const unsigned char c = peek();
    int min = -1;
    int max = -1;
    if (c == '*') {
      take();
      min = 0;
    } else if (c == '+') {
      take();
      min = 1;
    } else if (c == '?') {
      take();
      min = 0;
      max = 1;
    } else if (c == '{') {
      // Only treat as a bound if it parses; otherwise '{' is literal
      // (common in log rules, e.g. "cmd {0x...}").
      const std::size_t save = pos_;
      take();
      int m = parse_int();
      if (m >= 0 && !eof() && peek() == '}') {
        take();
        min = max = m;
      } else if (m >= 0 && !eof() && peek() == ',') {
        take();
        if (!eof() && peek() == '}') {
          take();
          min = m;
          max = -1;
        } else {
          int n = parse_int();
          if (n >= 0 && !eof() && peek() == '}') {
            take();
            min = m;
            max = n;
            if (max < min) fail("repetition bound {m,n} with n < m");
          } else {
            pos_ = save;
            return atom;
          }
        }
      } else {
        pos_ = save;
        return atom;
      }
    } else {
      return atom;
    }
    if (atom->kind == NodeKind::kAnchorBegin ||
        atom->kind == NodeKind::kAnchorEnd ||
        atom->kind == NodeKind::kWordBoundary) {
      fail("cannot repeat an anchor");
    }
    auto rep = make(NodeKind::kRepeat);
    rep->min = min;
    rep->max = max;
    rep->children.push_back(std::move(atom));
    return rep;
  }

  /// Parses a decimal integer bounded by kMaxRepeat; returns -1 when
  /// the next byte is not a digit.
  int parse_int() {
    if (eof() || peek() < '0' || peek() > '9') return -1;
    long v = 0;
    while (!eof() && peek() >= '0' && peek() <= '9') {
      v = v * 10 + (take() - '0');
      if (v > kMaxRepeat) fail("repetition bound too large");
    }
    return static_cast<int>(v);
  }

  // atom := '(' alt ')' | '[' class ']' | '.' | '^' | '$' | escape | char
  std::unique_ptr<Node> parse_atom() {
    if (eof()) fail("expected atom");
    const unsigned char c = take();
    switch (c) {
      case '(': {
        auto inner = parse_alt();
        if (eof() || take() != ')') fail("unterminated group");
        return inner;
      }
      case '[':
        return make_class(parse_class());
      case '.': {
        CharClass cls;
        cls.add('\n');
        cls.negate();  // any byte except newline
        return make_class(cls);
      }
      case '^':
        return make(NodeKind::kAnchorBegin);
      case '$':
        return make(NodeKind::kAnchorEnd);
      case '\\':
        if (!eof() && (peek() == 'b' || peek() == 'B')) {
          auto node = make(NodeKind::kWordBoundary);
          node->min = take() == 'B' ? 1 : 0;  // 1 = negated (\B)
          return node;
        }
        return make_class(parse_escape(/*in_class=*/false));
      case '*':
      case '+':
      case '?':
        fail("quantifier with nothing to repeat");
      case ')':
        fail("unmatched ')'");
      default: {
        CharClass cls;
        add_char(cls, c);
        return make_class(cls);
      }
    }
  }

  /// Parses the interior of a [...] class; the '[' has been consumed.
  CharClass parse_class() {
    CharClass cls;
    bool negated = false;
    if (!eof() && peek() == '^') {
      take();
      negated = true;
    }
    bool first = true;
    while (true) {
      if (eof()) fail("unterminated character class");
      unsigned char c = take();
      if (c == ']' && !first) break;
      first = false;
      if (c == '\\') {
        const CharClass esc = parse_escape(/*in_class=*/true);
        // Multi-char escape inside a class: union it in. Range syntax
        // with an escape endpoint is not supported (matches logsurfer).
        for (int b = 0; b < 256; ++b) {
          if (esc.contains(static_cast<unsigned char>(b))) {
            cls.add(static_cast<unsigned char>(b));
          }
        }
        continue;
      }
      if (!eof() && peek() == '-' && pos_ + 1 < p_.size() &&
          p_[pos_ + 1] != ']') {
        take();  // '-'
        const unsigned char hi = take();
        if (hi == '\\') fail("escape as range endpoint not supported");
        if (hi < c) fail("inverted range in character class");
        if (opts_.case_insensitive) {
          for (int b = c; b <= hi; ++b) {
            add_char(cls, static_cast<unsigned char>(b));
          }
        } else {
          cls.add_range(c, hi);
        }
      } else {
        add_char(cls, c);
      }
    }
    if (negated) cls.negate();
    return cls;
  }

  /// Parses an escape; the '\\' has been consumed.
  CharClass parse_escape(bool in_class) {
    if (eof()) fail("trailing backslash");
    const unsigned char c = take();
    CharClass cls;
    switch (c) {
      case 'd':
        cls.add_range('0', '9');
        return cls;
      case 'D':
        cls.add_range('0', '9');
        cls.negate();
        return cls;
      case 'w':
        cls.add_range('a', 'z');
        cls.add_range('A', 'Z');
        cls.add_range('0', '9');
        cls.add('_');
        return cls;
      case 'W':
        cls.add_range('a', 'z');
        cls.add_range('A', 'Z');
        cls.add_range('0', '9');
        cls.add('_');
        cls.negate();
        return cls;
      case 's':
        for (unsigned char ws : {' ', '\t', '\n', '\r', '\f', '\v'}) {
          cls.add(ws);
        }
        return cls;
      case 'S':
        for (unsigned char ws : {' ', '\t', '\n', '\r', '\f', '\v'}) {
          cls.add(ws);
        }
        cls.negate();
        return cls;
      case 'n':
        cls.add('\n');
        return cls;
      case 't':
        cls.add('\t');
        return cls;
      case 'r':
        cls.add('\r');
        return cls;
      default:
        // Escaped punctuation (and, defensively, anything else) is a
        // literal. '/' appears escaped in awk-style rules.
        (void)in_class;
        add_char(cls, c);
        return cls;
    }
  }

  std::string_view p_;
  ParseOptions opts_;
  std::size_t pos_ = 0;
};

/// Accumulates mandatory literal runs for required_literal().
class LiteralScan {
 public:
  void visit(const Node& n) {
    switch (n.kind) {
      case NodeKind::kEmpty:
        break;
      case NodeKind::kClass: {
        const int c = n.cls.singleton();
        if (c >= 0) {
          run_.push_back(static_cast<char>(c));
        } else {
          flush();
        }
        break;
      }
      case NodeKind::kConcat:
        for (const auto& child : n.children) visit(*child);
        break;
      case NodeKind::kAlt:
        // A branch is optional; nothing after this point in the run is
        // guaranteed. (We do not intersect branch literals.)
        flush();
        break;
      case NodeKind::kRepeat:
        if (n.min >= 1) {
          visit(*n.children.front());
          if (n.max != n.min || n.min != 1) flush();
        } else {
          flush();
        }
        break;
      case NodeKind::kAnchorBegin:
      case NodeKind::kAnchorEnd:
      case NodeKind::kWordBoundary:
        // Anchors are zero-width; they do not break text contiguity.
        break;
    }
  }

  std::string best() {
    flush();
    return best_;
  }

 private:
  void flush() {
    if (run_.size() > best_.size()) best_ = run_;
    run_.clear();
  }

  std::string run_;
  std::string best_;
};

}  // namespace

void CharClass::add_range(unsigned char lo, unsigned char hi) {
  for (int c = lo; c <= hi; ++c) add(static_cast<unsigned char>(c));
}

void CharClass::negate() {
  for (auto& w : bits_) w = ~w;
}

int CharClass::singleton() const {
  int found = -1;
  for (int c = 0; c < 256; ++c) {
    if (contains(static_cast<unsigned char>(c))) {
      if (found >= 0) return -1;
      found = c;
    }
  }
  return found;
}

std::unique_ptr<Node> parse(std::string_view pattern, const ParseOptions& opts) {
  return Parser(pattern, opts).run();
}

std::string escape_literal(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '.':
      case '*':
      case '+':
      case '?':
      case '(':
      case ')':
      case '[':
      case ']':
      case '{':
      case '}':
      case '|':
      case '^':
      case '$':
      case '\\':
        out.push_back('\\');
        break;
      default:
        break;
    }
    out.push_back(c);
  }
  return out;
}

std::string required_literal(std::string_view pattern,
                             const ParseOptions& opts) {
  if (opts.case_insensitive) return "";  // letters are two-byte classes
  const auto ast = parse(pattern, opts);
  LiteralScan scan;
  scan.visit(*ast);
  return scan.best();
}

}  // namespace wss::match
