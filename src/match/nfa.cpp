#include "match/nfa.hpp"

namespace wss::match {

Regex::Regex(std::string_view pattern, ParseOptions opts)
    : pattern_(pattern) {
  const auto ast = parse(pattern, opts);
  compile_node(*ast);
  emit(Inst{Op::kMatch, 0, 0, CharClass{}});
  literal_ = required_literal(pattern, opts);
}

std::uint32_t Regex::emit(Inst inst) {
  prog_.push_back(std::move(inst));
  return static_cast<std::uint32_t>(prog_.size() - 1);
}

std::uint32_t Regex::compile_node(const Node& n) {
  const auto start = static_cast<std::uint32_t>(prog_.size());
  switch (n.kind) {
    case NodeKind::kEmpty:
      break;
    case NodeKind::kClass:
      emit(Inst{Op::kClass, 0, 0, n.cls});
      break;
    case NodeKind::kConcat:
      for (const auto& child : n.children) compile_node(*child);
      break;
    case NodeKind::kAlt: {
      std::vector<std::uint32_t> jumps;
      for (std::size_t i = 0; i + 1 < n.children.size(); ++i) {
        const std::uint32_t s = emit(Inst{Op::kSplit, 0, 0, CharClass{}});
        prog_[s].x = static_cast<std::uint32_t>(prog_.size());
        compile_node(*n.children[i]);
        jumps.push_back(emit(Inst{Op::kJump, 0, 0, CharClass{}}));
        prog_[s].y = static_cast<std::uint32_t>(prog_.size());
      }
      compile_node(*n.children.back());
      for (const std::uint32_t j : jumps) {
        prog_[j].x = static_cast<std::uint32_t>(prog_.size());
      }
      break;
    }
    case NodeKind::kRepeat: {
      const Node& body = *n.children.front();
      for (int i = 0; i < n.min; ++i) compile_node(body);
      if (n.max < 0) {
        // Unbounded tail: body* .
        const std::uint32_t s = emit(Inst{Op::kSplit, 0, 0, CharClass{}});
        prog_[s].x = static_cast<std::uint32_t>(prog_.size());
        compile_node(body);
        const std::uint32_t j = emit(Inst{Op::kJump, s, 0, CharClass{}});
        (void)j;
        prog_[s].y = static_cast<std::uint32_t>(prog_.size());
      } else {
        // (max - min) optional copies; skipping any copy skips them all.
        std::vector<std::uint32_t> splits;
        for (int i = n.min; i < n.max; ++i) {
          const std::uint32_t s = emit(Inst{Op::kSplit, 0, 0, CharClass{}});
          prog_[s].x = static_cast<std::uint32_t>(prog_.size());
          compile_node(body);
          splits.push_back(s);
        }
        for (const std::uint32_t s : splits) {
          prog_[s].y = static_cast<std::uint32_t>(prog_.size());
        }
      }
      break;
    }
    case NodeKind::kAnchorBegin:
      emit(Inst{Op::kBegin, 0, 0, CharClass{}});
      break;
    case NodeKind::kAnchorEnd:
      emit(Inst{Op::kEnd, 0, 0, CharClass{}});
      break;
    case NodeKind::kWordBoundary:
      emit(Inst{Op::kWordB, static_cast<std::uint32_t>(n.min), 0,
                CharClass{}});
      break;
  }
  return start;
}

bool Regex::run(std::string_view text, bool anchored_start, bool require_end,
                PikeScratch& scratch) const {
  // Thread lists hold program counters of kClass instructions waiting
  // to consume the next byte. `mark` dedups threads per generation.
  scratch.prepare(prog_.size());
  std::vector<std::uint32_t>& clist = scratch.clist;
  std::vector<std::uint32_t>& nlist = scratch.nlist;
  std::vector<std::uint32_t>& stack = scratch.stack;
  std::vector<std::uint32_t>& mark = scratch.mark;
  clist.clear();
  nlist.clear();

  std::uint32_t gen = scratch.next_gen();
  const auto add = [&](std::uint32_t pc0, std::size_t pos,
                       std::vector<std::uint32_t>& list) -> bool {
    stack.clear();
    stack.push_back(pc0);
    while (!stack.empty()) {
      const std::uint32_t pc = stack.back();
      stack.pop_back();
      if (mark[pc] == gen) continue;
      mark[pc] = gen;
      const Inst& in = prog_[pc];
      switch (in.op) {
        case Op::kClass:
          list.push_back(pc);
          break;
        case Op::kSplit:
          stack.push_back(in.y);
          stack.push_back(in.x);
          break;
        case Op::kJump:
          stack.push_back(in.x);
          break;
        case Op::kBegin:
          if (pos == 0) stack.push_back(pc + 1);
          break;
        case Op::kEnd:
          if (pos == text.size()) stack.push_back(pc + 1);
          break;
        case Op::kWordB: {
          const bool before = pos > 0 && is_word_byte(text[pos - 1]);
          const bool after = pos < text.size() && is_word_byte(text[pos]);
          const bool at_boundary = before != after;
          if (at_boundary == (in.x == 0)) stack.push_back(pc + 1);
          break;
        }
        case Op::kMatch:
          if (!require_end || pos == text.size()) return true;
          break;
      }
    }
    return false;
  };

  for (std::size_t pos = 0;; ++pos) {
    if (pos == 0 || !anchored_start) {
      if (add(0, pos, clist)) return true;
    }
    if (pos == text.size()) break;
    if (clist.empty() && anchored_start) break;  // no live threads remain
    const auto c = static_cast<unsigned char>(text[pos]);
    nlist.clear();
    gen = scratch.next_gen();
    for (const std::uint32_t pc : clist) {
      if (prog_[pc].cls.contains(c)) {
        if (add(pc + 1, pos + 1, nlist)) return true;
      }
    }
    clist.swap(nlist);
  }
  return false;
}

namespace {
PikeScratch& thread_local_pike_scratch() {
  thread_local PikeScratch scratch;
  return scratch;
}
}  // namespace

bool Regex::search(std::string_view text, PikeScratch& scratch,
                   bool use_prefilter) const {
  if (use_prefilter && !literal_.empty() &&
      text.find(literal_) == std::string_view::npos) {
    return false;
  }
  return run(text, /*anchored_start=*/false, /*require_end=*/false, scratch);
}

bool Regex::search(std::string_view text, bool use_prefilter) const {
  return search(text, thread_local_pike_scratch(), use_prefilter);
}

bool Regex::full_match(std::string_view text) const {
  return run(text, /*anchored_start=*/true, /*require_end=*/true,
             thread_local_pike_scratch());
}

}  // namespace wss::match
