// Regular-expression pattern parsing.
//
// The expert alert-identification rules in the paper are logsurfer /
// awk style regexes: literals, character classes, alternation, the
// usual quantifiers, and anchors. We implement exactly that subset,
// from scratch, compiled to a non-backtracking NFA (see nfa.hpp), so
// matching is O(text * pattern) worst case with no pathological
// blowups -- important because the tag engine runs every rule over
// hundreds of millions of messages.
//
// Supported syntax:
//   literal characters         a b c ...
//   any                        .            (matches any byte except '\n')
//   classes                    [abc] [a-z0-9] [^...]
//   escapes                    \d \D \w \W \s \S \. \\ \/ \[ \] \( \) \n \t
//   groups                     ( ... )      (non-capturing)
//   alternation                a|b
//   quantifiers                * + ? {m} {m,} {m,n}   (greedy; semantics
//                              identical for boolean matching)
//   anchors                    ^ $ \b \B
#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace wss::match {

/// Thrown when a pattern fails to parse or exceeds implementation
/// limits (e.g. a {m,n} bound above kMaxRepeat).
class PatternError : public std::runtime_error {
 public:
  explicit PatternError(const std::string& what) : std::runtime_error(what) {}
};

/// Maximum allowed bound in a {m,n} repetition.
inline constexpr int kMaxRepeat = 256;

/// A set of byte values, represented as a 256-bit bitmap.
class CharClass {
 public:
  CharClass() : bits_{} {}

  void add(unsigned char c) { bits_[c >> 6] |= 1ull << (c & 63); }
  void add_range(unsigned char lo, unsigned char hi);
  void negate();

  bool contains(unsigned char c) const {
    return (bits_[c >> 6] >> (c & 63)) & 1;
  }

  /// The lone byte in a single-element class, or -1.
  int singleton() const;

  friend bool operator==(const CharClass&, const CharClass&) = default;

 private:
  std::uint64_t bits_[4];
};

/// Pattern AST node kinds.
enum class NodeKind {
  kEmpty,    ///< matches the empty string
  kClass,    ///< one byte in `cls`
  kConcat,   ///< children in sequence
  kAlt,      ///< any one child
  kRepeat,   ///< child repeated min..max times (max = -1 for unbounded)
  kAnchorBegin,
  kAnchorEnd,
  kWordBoundary,  ///< \b (min == 0) or \B (min == 1)
};

/// One node of the parsed pattern AST.
struct Node {
  NodeKind kind = NodeKind::kEmpty;
  CharClass cls;                                // kClass
  std::vector<std::unique_ptr<Node>> children;  // kConcat, kAlt, kRepeat
  int min = 0;                                  // kRepeat
  int max = -1;                                 // kRepeat; -1 = unbounded
};

/// Parse options.
struct ParseOptions {
  bool case_insensitive = false;
};

/// Parses `pattern` into an AST. Throws PatternError on invalid input.
std::unique_ptr<Node> parse(std::string_view pattern,
                            const ParseOptions& opts = {});

/// Returns the longest literal byte string that every match of the
/// pattern must contain, or "" if none can be proven. The tag engine
/// uses this as a cheap memmem pre-filter before running the NFA.
std::string required_literal(std::string_view pattern,
                             const ParseOptions& opts = {});

/// Escapes `text` so that, as a pattern, it matches `text` literally.
std::string escape_literal(std::string_view text);

}  // namespace wss::match
