#include "match/field.hpp"

#include "util/strings.hpp"

namespace wss::match {

void LinePredicate::add_term(int field, std::string_view pattern, bool negated,
                             ParseOptions opts) {
  if (field < 0) throw PatternError("field index must be >= 0");
  Term t;
  t.field = field;
  t.negated = negated;
  t.re = std::make_shared<const Regex>(pattern, opts);
  terms_.push_back(std::move(t));
}

bool LinePredicate::matches(std::string_view line,
                            MatchScratch& scratch) const {
  if (terms_.empty()) return false;
  bool fields_computed = false;
  for (const Term& t : terms_) {
    bool hit;
    if (t.field == 0) {
      hit = t.re->search(line, scratch.pike);
    } else {
      if (!fields_computed) {
        util::split_fields(line, scratch.fields);
        fields_computed = true;
      }
      const auto idx = static_cast<std::size_t>(t.field - 1);
      // awk: a reference to a field beyond NF yields the empty string.
      const std::string_view f = idx < scratch.fields.size()
                                     ? scratch.fields[idx]
                                     : std::string_view{};
      hit = t.re->search(f, scratch.pike);
    }
    if (t.negated) hit = !hit;
    if (!hit) return false;
  }
  return true;
}

bool LinePredicate::matches(std::string_view line) const {
  thread_local MatchScratch scratch;
  return matches(line, scratch);
}

}  // namespace wss::match
