// awk-style field predicates.
//
// Some of the paper's expert rules are awk conditions, e.g. the BG/L
// rule  ($5 ~ /KERNEL/ && /kernel panic/): field 5 must match one
// pattern AND the whole line another. A LinePredicate is a conjunction
// of such terms; fields are 1-based and split on whitespace runs,
// exactly as awk does with the default FS.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "match/nfa.hpp"

namespace wss::match {

/// One conjunct: either a whole-line regex ($0) or a field regex.
struct Term {
  int field = 0;     ///< 0 = whole line; 1-based otherwise
  bool negated = false;  ///< true for !~
  std::shared_ptr<const Regex> re;
};

/// A conjunction of field/line regex terms, evaluated over one log
/// line. An empty predicate matches nothing (rules must say something).
class LinePredicate {
 public:
  LinePredicate() = default;

  /// Adds a conjunct: `field` 0 for the whole line, else 1-based awk
  /// field. `negated` implements awk's !~ operator.
  void add_term(int field, std::string_view pattern, bool negated = false,
                ParseOptions opts = {});

  /// Evaluates against a line. Fields are computed lazily (only when
  /// some term needs them).
  bool matches(std::string_view line) const;

  /// Same, with caller-owned scratch: the field split and the Pike-VM
  /// thread lists come from `scratch`, so the steady-state evaluation
  /// allocates nothing.
  bool matches(std::string_view line, MatchScratch& scratch) const;

  /// True if no terms have been added.
  bool empty() const { return terms_.empty(); }

  const std::vector<Term>& terms() const { return terms_; }

 private:
  std::vector<Term> terms_;
};

}  // namespace wss::match
