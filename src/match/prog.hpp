// The compiled NFA program representation, shared by the single-pattern
// Pike VM (nfa.hpp) and the multi-pattern set matcher (multiregex.hpp).
//
// A program is a flat instruction array produced by Thompson
// construction. Both executors interpret it with identical semantics;
// MultiRegex additionally relocates several programs into one address
// space and repurposes kMatch.x as the pattern id.
#pragma once

#include <cstdint>
#include <vector>

#include "match/pattern.hpp"

namespace wss::match {

enum class Op : std::uint8_t {
  kClass,  ///< consume one byte in cls, go to next instruction
  kSplit,  ///< fork to x and y
  kJump,   ///< go to x
  kBegin,  ///< zero-width: succeed only at text start
  kEnd,    ///< zero-width: succeed only at text end
  kWordB,  ///< zero-width: word boundary (x = 1 for \B)
  kMatch,  ///< accept (x = pattern id in a combined MultiRegex program)
};

struct Inst {
  Op op;
  std::uint32_t x = 0;
  std::uint32_t y = 0;
  CharClass cls;
};

using Prog = std::vector<Inst>;

/// awk/Perl word-character test used by \b and \B.
inline bool is_word_byte(unsigned char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

}  // namespace wss::match
