// Operational context (Section 3.2.1, Figure 1).
//
// The paper's single biggest recommendation: log the system's expected
// state, because "event significance can be disambiguated if the
// expected state of components is known". Figure 1 is the Red Storm
// RAS-metrics state diagram being standardized by LANL/LLNL/SNL; this
// module implements that state machine, generates a plausible timeline
// for a system (mostly production, weekly scheduled maintenance,
// occasional unscheduled downtime and engineering blocks), and
// computes the RAS metrics the diagram underpins. "It may be
// sufficient to record only a few bytes of data: the time and cause of
// system state changes" -- OpTransition is exactly those bytes.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "sim/spec.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace wss::sim {

/// System operational states (Figure 1).
enum class OpState : std::uint8_t {
  kProduction,            ///< production uptime: users running jobs
  kScheduledDowntime,     ///< planned maintenance (PM windows, upgrades)
  kUnscheduledDowntime,   ///< failure-induced outage
  kEngineering,           ///< dedicated system testing / diagnostics
};

/// Display name ("production", "scheduled downtime", ...).
std::string_view op_state_name(OpState s);

/// One state change: the "few bytes" the paper asks operators to log.
struct OpTransition {
  util::TimeUs time = 0;
  OpState to = OpState::kProduction;
  std::string cause;  ///< e.g. "weekly PM", "OS upgrade", "failure"
};

/// RAS metrics over a timeline (the quantities Figure 1 standardizes).
struct RasMetrics {
  double production_fraction = 0.0;
  double scheduled_fraction = 0.0;
  double unscheduled_fraction = 0.0;
  double engineering_fraction = 0.0;
  /// Classical availability: production / (production + unscheduled).
  double availability = 0.0;
  /// Mean time between unscheduled outages, in hours (0 if none).
  double mtbf_hours = 0.0;
  std::size_t unscheduled_outages = 0;
};

/// A system's operational-state timeline over its collection window.
class OpContextTimeline {
 public:
  /// Starts in `initial` at `start`; transitions must be appended in
  /// increasing time order (append throws otherwise).
  OpContextTimeline(util::TimeUs start, util::TimeUs end,
                    OpState initial = OpState::kProduction);

  void append(OpTransition t);

  /// The state in effect at time `t` (clamped to the window).
  OpState state_at(util::TimeUs t) const;

  const std::vector<OpTransition>& transitions() const { return transitions_; }
  util::TimeUs start() const { return start_; }
  util::TimeUs end() const { return end_; }

  /// Time-weighted state fractions and derived RAS metrics.
  RasMetrics metrics() const;

  /// Generates a plausible timeline: weekly 4 h scheduled-maintenance
  /// windows, ~monthly engineering blocks, and unscheduled outages at
  /// the given monthly rate.
  static OpContextTimeline generate(const SystemSpec& spec, util::Rng& rng,
                                    double unscheduled_per_month = 1.5);

 private:
  util::TimeUs start_;
  util::TimeUs end_;
  OpState initial_;
  std::vector<OpTransition> transitions_;
};

}  // namespace wss::sim
