#include "sim/sources.hpp"

#include <stdexcept>

#include "util/strings.hpp"

namespace wss::sim {

SourceNamer::SourceNamer(parse::SystemId system, std::uint32_t n_sources)
    : system_(system), n_(n_sources) {
  if (n_sources < 16) {
    throw std::invalid_argument("SourceNamer: need at least 16 sources");
  }
  n_admin_ = system == parse::SystemId::kBlueGeneL ? 2 : 8;
}

std::string SourceNamer::name(std::uint32_t id) const {
  if (id >= n_) throw std::out_of_range("SourceNamer: bad source id");
  const std::uint32_t admin_rank = id >= first_admin() ? id - first_admin() : 0;
  switch (system_) {
    case parse::SystemId::kBlueGeneL: {
      if (is_admin(id)) {
        // The two service-node MMCS processes per rack pair.
        return util::format("R%02u-SVC", admin_rank);
      }
      // Location codes: rack / midplane / node card / chip.
      const std::uint32_t rack = id / 32;
      const std::uint32_t mid = (id / 16) % 2;
      const std::uint32_t card = (id / 2) % 8;
      const std::uint32_t chip = id % 2;
      return util::format("R%02u-M%u-N%u-C:J%02u-U%02u", rack, mid, card,
                          12 + chip * 6, 1 + chip);
    }
    case parse::SystemId::kThunderbird:
      if (is_admin(id)) {
        if (admin_rank == 0) return "tbird-admin1";
        if (admin_rank == 1) return "tbird-sm1";
        return util::format("tbird-login%u", admin_rank - 1);
      }
      return util::format("tbird-cn%u", id + 1);
    case parse::SystemId::kRedStorm:
      if (is_admin(id)) {
        if (admin_rank == 0) return "smw";
        if (admin_rank < 4) return util::format("login%u", admin_rank);
        return util::format("ddn%u", admin_rank - 3);
      }
      return util::format("c%u-%uc%us%un%u", id / 64, (id / 16) % 4,
                          (id / 8) % 2, (id / 2) % 4, id % 2);
    case parse::SystemId::kSpirit:
      if (is_admin(id)) return util::format("sadmin%u", admin_rank + 1);
      // Plain index naming so the paper's special nodes keep their
      // names: id 373 -> "sn373", id 325 -> "sn325".
      return util::format("sn%u", id);
    case parse::SystemId::kLiberty:
      if (is_admin(id)) return util::format("ladmin%u", admin_rank + 1);
      return util::format("ln%u", id);
  }
  return "?";
}

}  // namespace wss::sim
