// Source (node) naming per system.
//
// Figure 2(b) breaks message volume down by source; the reproduction
// needs realistic, parseable source names per machine plus designated
// special nodes: administrative nodes (the chattiest sources), storm
// nodes (sn373 on Spirit, the VAPI node on Thunderbird), and the
// sn325 node whose independent disk failure the simultaneous filter
// erroneously removes (Section 3.3.2).
#pragma once

#include <cstdint>
#include <string>

#include "parse/record.hpp"

namespace wss::sim {

/// Maps numeric source ids to per-system node names and back-ish.
/// Ids 0 .. n_sources-1 are compute/location sources; the last few ids
/// of each system are administrative nodes.
class SourceNamer {
 public:
  explicit SourceNamer(parse::SystemId system, std::uint32_t n_sources);

  /// The node/location name for a source id.
  std::string name(std::uint32_t id) const;

  parse::SystemId system() const { return system_; }
  std::uint32_t size() const { return n_; }

  /// Number of administrative sources (the trailing ids).
  std::uint32_t n_admin() const { return n_admin_; }

  /// True if `id` is an administrative source.
  bool is_admin(std::uint32_t id) const { return id >= n_ - n_admin_; }

  /// First administrative id.
  std::uint32_t first_admin() const { return n_ - n_admin_; }

  // Designated special nodes (valid for the systems they describe).
  /// Spirit's pathological disk node "sn373".
  static constexpr std::uint32_t kSpiritStormNode = 373;
  /// Spirit's independently failing disk node "sn325".
  static constexpr std::uint32_t kSpiritShadowedNode = 325;
  /// Thunderbird's VAPI storm node.
  static constexpr std::uint32_t kThunderbirdVapiNode = 63;

 private:
  parse::SystemId system_;
  std::uint32_t n_;
  std::uint32_t n_admin_;
};

}  // namespace wss::sim
