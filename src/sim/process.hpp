// Event model and generation plans for the log simulator.
//
// The simulator reproduces the paper's corpus *structurally*: every
// alert category is generated as a set of ground-truth failures
// ("incidents"), each of which emits a burst of alert messages whose
// spacing relative to the filtering threshold T determines what the
// filters see. Physical event counts are capped (Section 2 of
// DESIGN.md); each event carries a weight so that weighted sums
// reproduce the paper's raw counts exactly.
#pragma once

#include <cstdint>
#include <vector>

#include "parse/record.hpp"
#include "tag/rulesets.hpp"
#include "util/time.hpp"

namespace wss::sim {

/// One message to be logged (pre-rendering).
struct SimEvent {
  util::TimeUs time = 0;
  std::uint32_t source = 0;
  /// Alert category id (index into tag::categories_of(system)), or -1
  /// for a non-alert chatter message.
  std::int32_t category = -1;
  /// Ground-truth failure this alert reports (0 for chatter).
  std::uint64_t failure_id = 0;
  /// Severity recorded by the log path (kNone where the path records
  /// none -- Thunderbird/Spirit/Liberty syslogs, Red Storm ec_*).
  parse::Severity severity = parse::Severity::kNone;
  /// Chatter template index (valid when category == -1).
  std::uint32_t chatter_kind = 0;
  /// Scale-up weight: (paper count) / (generated count) for this
  /// event's stream.
  double weight = 1.0;

  bool is_alert() const { return category >= 0; }
};

/// How an alert category distributes its incidents across sources.
enum class SourceMode : std::uint8_t {
  /// Independent events on random sources (ECC-like physics).
  kPoisson,
  /// Each incident is a chain on one randomly chosen source.
  kSingleNodeBursts,
  /// A chain on a primary source with trailing reports from other
  /// sources (the PBS shared-resource shape where serial and
  /// simultaneous filtering diverge, Section 3.3.2).
  kMultiNodeBursts,
  /// Incidents anchored to communication-heavy jobs; events round-
  /// robin over the job's node block (the SMP clock bug, Section 4).
  kJobBursts,
};

/// Generation plan for one alert category (built by sim/catalog.cpp).
struct CategoryGenPlan {
  const tag::CategoryInfo* info = nullptr;
  std::uint16_t category_id = 0;   ///< rule index within the system
  std::uint64_t gen_events = 0;    ///< physical events to generate
  double weight = 1.0;             ///< raw_count / gen_events
  std::uint64_t incidents = 0;     ///< ground-truth failures (~filtered)
  SourceMode mode = SourceMode::kSingleNodeBursts;

  /// Storm node: `storm_incident_frac` of incidents (carrying
  /// `storm_event_frac` of events) land on `storm_node`.
  bool has_storm = false;
  std::uint32_t storm_node = 0;
  double storm_event_frac = 0.0;
  double storm_incident_frac = 0.0;

  /// Adds one extra incident on `shadow_node` *inside* a storm chain:
  /// the sn325 case whose alert the simultaneous filter removes but
  /// the serial baseline keeps (Section 3.3.2).
  bool shadowed_incident = false;
  std::uint32_t shadow_node = 0;

  /// Time concentration: this fraction of incidents falls in the
  /// window [begin_frac, begin_frac + len_frac] of the collection
  /// window (Figure 4's PBS-bug clusters).
  double concentrate_frac = 0.0;
  double concentrate_begin_frac = 0.0;
  double concentrate_len_frac = 0.0;

  /// Fraction of incidents that are "leaky" chains: gaps slightly
  /// above T, so every event survives filtering. These produce the
  /// short-interarrival mode of Figure 6(a).
  double leak_frac = 0.0;

  /// Fraction of incidents placed in temporal clusters (Neyman-Scott
  /// style: a few cluster centers, lognormal offsets) instead of
  /// uniformly. Failures beget failures -- Section 4's observation
  /// that most categories are correlated and heavy-tailed, not
  /// Poisson. Ignored by kPoisson mode (ECC stays memoryless).
  double cluster_frac = 0.7;

  /// kMultiNodeBursts: how many distinct sources an incident touches.
  std::uint32_t nodes_per_burst = 2;

  /// kPoisson: this many extra events form coincident pairs with an
  /// existing incident (distinct failures within T -- the three ECC
  /// coincidences that make Table 4 read 146 raw / 143 filtered).
  std::uint64_t engineered_pairs = 0;

  /// If nonempty, burst sources are drawn from this pool instead of
  /// all compute sources (e.g. Red Storm DDN categories log only from
  /// the DDN RAS hosts).
  std::vector<std::uint32_t> source_pool;

  /// Cascade: anchor this fraction of incidents shortly after the
  /// incident start times of another category (GM_PAR -> GM_LANAI,
  /// Figure 3; PBS_CHK -> PBS_BFD, Figure 4).
  int cascade_from = -1;  ///< category id, -1 = none
  double cascade_frac = 0.0;
};

/// Sorts by (time, source) -- the canonical stream order.
void sort_events(std::vector<SimEvent>& events);

/// Merges pre-sorted streams into one sorted stream.
std::vector<SimEvent> merge_streams(std::vector<std::vector<SimEvent>> streams);

}  // namespace wss::sim
