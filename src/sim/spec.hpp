// Static descriptions of the five supercomputers (Tables 1 and 2).
//
// These are the calibration constants for the simulator: the machine
// characteristics the paper lists, the log-collection window, and the
// paper's total message/alert counts that the weighted generation
// reproduces.
#pragma once

#include <cstdint>
#include <string_view>

#include "parse/record.hpp"
#include "util/time.hpp"

namespace wss::sim {

/// One system's characteristics (Table 1) and log totals (Table 2).
struct SystemSpec {
  parse::SystemId id;
  std::string_view owner;         ///< LLNL or SNL
  std::string_view vendor;        ///< IBM, Dell, Cray, HP
  int top500_rank;                ///< June 2006 list
  std::uint64_t procs;
  std::uint64_t memory_gb;
  std::string_view interconnect;

  util::CivilTime start_date;     ///< log collection start (Table 2)
  int days;                       ///< collection window length
  double size_gb;                 ///< raw log size reported by the paper
  double compressed_gb;           ///< gzip size reported by the paper
  double rate_bytes_per_sec;      ///< paper's average logging rate
  std::uint64_t messages;         ///< total messages (Table 2)
  std::uint64_t alerts;           ///< total alerts (Table 2)
  int categories;                 ///< observed alert categories

  /// Number of distinct log sources we simulate (scaled-down but
  /// structurally faithful: compute nodes + admin/service nodes).
  std::uint32_t n_sources;

  util::TimeUs start_time() const { return util::to_time_us(start_date); }
  util::TimeUs end_time() const {
    return start_time() + static_cast<util::TimeUs>(days) * util::kUsPerDay;
  }
};

/// Spec for one system. Data quoted from Tables 1 and 2.
const SystemSpec& system_spec(parse::SystemId id);

}  // namespace wss::sim
