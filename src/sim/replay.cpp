#include "sim/replay.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>

namespace wss::sim {

Replayer::Replayer(const Simulator& simulator, ReplayOptions opts)
    : sim_(&simulator), opts_(opts) {
  if (opts.speed < 0.0) {
    throw std::invalid_argument("Replayer: speed must be >= 0");
  }
  const std::size_t n = simulator.events().size();
  begin_ = std::min(opts.begin, n);
  end_ = std::min(opts.end, n);
  if (end_ < begin_) end_ = begin_;
}

std::size_t Replayer::run(const Visitor& visit) const {
  const auto& events = sim_->events();
  if (begin_ >= end_) return 0;

  // Pace relative to the first replayed event: resume-from-checkpoint
  // replays the tail at the same rate, without first sleeping through
  // the already-consumed prefix.
  const util::TimeUs t0 = events[begin_].time;
  const auto wall0 = std::chrono::steady_clock::now();

  const auto cancelled = [this] {
    return opts_.cancel != nullptr &&
           opts_.cancel->load(std::memory_order_relaxed);
  };

  std::size_t delivered = 0;
  for (std::size_t i = begin_; i < end_; ++i) {
    if (cancelled()) break;
    const SimEvent& e = events[i];
    if (opts_.speed > 0.0) {
      const double sim_elapsed_us = static_cast<double>(e.time - t0);
      const auto wall_target =
          wall0 + std::chrono::microseconds(static_cast<std::int64_t>(
                      sim_elapsed_us / opts_.speed));
      // Sleep in bounded slices so a cancellation request (operator
      // Ctrl-C during a long simulated gap) is honored promptly.
      for (;;) {
        const auto now = std::chrono::steady_clock::now();
        if (now >= wall_target || cancelled()) break;
        const auto remaining = wall_target - now;
        std::this_thread::sleep_for(
            std::min<std::chrono::steady_clock::duration>(
                remaining, std::chrono::milliseconds(100)));
      }
      if (cancelled()) break;
    }
    std::string line = sim_->renderer().render(e, i);
    ++delivered;
    if (!visit(i, e, std::move(line))) break;
  }
  return delivered;
}

}  // namespace wss::sim
