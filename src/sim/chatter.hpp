// Non-alert ("chatter") message generation.
//
// The overwhelming majority of the billion messages in the study are
// not alerts: daemons logging sessions, cron jobs, NIC watchdogs, RAS
// bookkeeping. Chatter matters to the reproduction because
//   - Table 2's message totals and rates are dominated by it,
//   - Tables 5 and 6 are about its severity marginals,
//   - Figure 2(a)'s regime shifts and Figure 2(b)'s per-source
//     distribution are chatter phenomena,
//   - the tag engine's precision is only meaningful against it, and
//   - it includes the deliberately ambiguous high-severity non-alerts
//     the paper highlights ("BGLMASTER FAILURE ciodb exited normally").
#pragma once

#include <vector>

#include "sim/catalog.hpp"
#include "sim/process.hpp"
#include "sim/sources.hpp"
#include "sim/spec.hpp"
#include "util/rng.hpp"

namespace wss::sim {

/// One chatter message shape.
struct ChatterTemplate {
  const char* program;   ///< syslog tag / BG/L facility / event class
  const char* body;      ///< template with {n}/{ip}/{hex}/... placeholders
  tag::LogPath path;
  parse::Severity severity;  ///< kNone for severity-less paths
};

/// The chatter templates of one system, indexed by
/// SimEvent::chatter_kind.
const std::vector<ChatterTemplate>& chatter_templates(parse::SystemId system);

/// A chatter volume class: all generated messages of one (path,
/// severity) stratum share a weight so severity marginals (Tables 5
/// and 6) reproduce the paper's counts.
struct ChatterClass {
  parse::Severity severity;
  tag::LogPath path;
  std::uint64_t paper_count;  ///< non-alert messages in this stratum
};

/// The calibrated chatter strata for a system (derived in
/// sim/chatter.cpp from Tables 2, 5, and 6 minus the alert counts).
const std::vector<ChatterClass>& chatter_classes(parse::SystemId system);

/// Total non-alert messages across strata (paper counts).
std::uint64_t chatter_total(parse::SystemId system);

/// The piecewise-constant rate profile of a system's chatter over its
/// collection window, as (start_fraction, rate_multiplier) segments.
/// Liberty's profile encodes the OS-upgrade jump and the later shifts
/// of Figure 2(a); other systems are near-flat.
const std::vector<std::pair<double, double>>& rate_profile(
    parse::SystemId system);

/// Generates ~opts.chatter_events chatter events for the system,
/// sorted by time.
std::vector<SimEvent> generate_chatter(const SystemSpec& spec,
                                       const SimOptions& opts,
                                       const SourceNamer& namer,
                                       util::Rng& rng);

}  // namespace wss::sim
