// The incident planner: turns a CategoryGenPlan into concrete alert
// events with ground-truth failure ids.
//
// Terminology: an *incident* is one ground-truth failure; it emits a
// burst (chain) of alert messages. Chain spacing relative to the
// filtering threshold T is what the paper's filters key on:
//   - clean chains space events well under T, so filtering keeps
//     exactly the first message;
//   - leaky chains space events just over T, so every message
//     survives -- the "unfiltered redundancy" mode of Figure 6(a);
//   - multi-node chains end with reports from other sources, the
//     shape where serial and simultaneous filtering disagree.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/jobs.hpp"
#include "sim/process.hpp"
#include "sim/spec.hpp"
#include "util/rng.hpp"

namespace wss::sim {

/// Shared state across category generators.
struct IncidentContext {
  const SystemSpec* spec = nullptr;
  const std::vector<Job>* jobs = nullptr;  ///< for kJobBursts (may be null)
  std::uint64_t next_failure_id = 1;
  util::TimeUs threshold_us = 5 * util::kUsPerSec;  ///< the paper's T
};

/// Generates all events of one category. Events are returned sorted by
/// time. `anchors` supplies the incident start times of the cascade
/// source category (required when plan.cascade_from >= 0, and must be
/// generated first); `incident_starts_out`, when non-null, receives
/// this category's incident start times for downstream cascades.
std::vector<SimEvent> generate_category(
    const CategoryGenPlan& plan, IncidentContext& ctx, util::Rng& rng,
    const std::vector<util::TimeUs>* anchors = nullptr,
    std::vector<util::TimeUs>* incident_starts_out = nullptr);

}  // namespace wss::sim
