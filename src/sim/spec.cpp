#include "sim/spec.hpp"

#include <array>
#include <stdexcept>

namespace wss::sim {

namespace {

using parse::SystemId;

constexpr std::array<SystemSpec, parse::kNumSystems> kSpecs = {{
    // Blue Gene/L: #1 on the June 2006 Top500; logs from the MMCS RAS
    // database at LLNL.
    {SystemId::kBlueGeneL, "LLNL", "IBM", 1, 131072, 32768, "Custom",
     {2005, 6, 3, 0, 0, 0, 0}, 215, 1.207, 0.118, 64.976, 4747963, 348460,
     41, 544},
    // Thunderbird: Dell Infiniband cluster at SNL.
    {SystemId::kThunderbird, "SNL", "Dell", 6, 9024, 27072, "Infiniband",
     {2005, 11, 9, 0, 0, 0, 0}, 244, 27.367, 5.721, 1298.146, 211212192,
     3248239, 10, 1024},
    // Red Storm: Cray XT3 at SNL; several logging paths (Section 3.1).
    {SystemId::kRedStorm, "SNL", "Cray", 9, 10880, 32640, "Custom",
     {2006, 3, 19, 0, 0, 0, 0}, 104, 29.990, 1.215, 3337.562, 219096168,
     1665744, 12, 640},
    // Spirit (ICC2): HP GigEthernet cluster; the largest log despite
    // being the second-smallest machine (disk-alert storms).
    {SystemId::kSpirit, "SNL", "HP", 202, 1028, 1024, "GigEthernet",
     {2005, 1, 1, 0, 0, 0, 0}, 558, 30.289, 1.678, 628.257, 272298969,
     172816564, 8, 520},
    // Liberty: HP Myrinet cluster, the smallest system in the study.
    {SystemId::kLiberty, "SNL", "HP", 445, 512, 944, "Myrinet",
     {2004, 12, 12, 0, 0, 0, 0}, 315, 22.820, 0.622, 835.824, 265569231,
     2452, 6, 264},
}};

}  // namespace

const SystemSpec& system_spec(parse::SystemId id) {
  const auto idx = static_cast<std::size_t>(id);
  if (idx >= kSpecs.size()) throw std::invalid_argument("bad SystemId");
  return kSpecs[idx];
}

}  // namespace wss::sim
