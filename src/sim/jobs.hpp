// A lightweight parallel-job trace.
//
// Section 4's SMP-clock-bug discussion hinges on workload context:
// "whenever a set of nodes was running a communication-intensive job,
// they would collectively be more prone to encountering this bug."
// The simulator anchors Thunderbird CPU alerts to the node blocks of
// communication-heavy jobs from this trace, so the spatial correlation
// the authors noticed is reproducible (bench/ablation_cpu_spatial).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/spec.hpp"
#include "util/rng.hpp"

namespace wss::sim {

/// One batch job: a contiguous node block held for an interval.
struct Job {
  util::TimeUs start = 0;
  util::TimeUs end = 0;
  std::uint32_t first_node = 0;
  std::uint32_t n_nodes = 1;
  bool comm_heavy = false;  ///< communication-intensive workload
};

/// Generates `count` jobs over the system's collection window. Job
/// sizes are power-of-two-ish blocks (typical MPI allocations),
/// durations are lognormal (hours-scale), and ~40% are comm-heavy.
std::vector<Job> generate_jobs(const SystemSpec& spec, util::Rng& rng,
                               std::size_t count);

}  // namespace wss::sim
