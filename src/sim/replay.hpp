// Real-time-scaled replay of a simulated log.
//
// The generator produces a finished, time-sorted event stream; this
// walks it as if the system were emitting it live, pacing wall-clock
// delivery so that N seconds of simulated time pass per wall second
// (`speed`). speed = 0 disables pacing entirely (as fast as possible
// -- the mode equivalence tests and benchmarks use). The walk renders
// each event's line on the fly, so replay memory is O(1) in the log
// length beyond the simulator's own event vector.
//
// `begin` supports checkpoint resume: a restored streaming engine that
// already consumed K events replays [K, end) and the combined run is
// indistinguishable from an uninterrupted one.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <limits>
#include <string>

#include "sim/generator.hpp"

namespace wss::sim {

struct ReplayOptions {
  /// Simulated seconds per wall second. 0 = unpaced.
  double speed = 0.0;

  /// Event index range [begin, end) to replay.
  std::size_t begin = 0;
  std::size_t end = std::numeric_limits<std::size_t>::max();

  /// Optional cooperative cancellation (SIGINT/SIGTERM drain): when
  /// the pointee becomes true the replay stops before the next event.
  /// Paced sleeps are sliced so even a sparse stream reacts within
  /// ~100 ms. The flag is polled, never written.
  const std::atomic<bool>* cancel = nullptr;
};

/// Paced walk over a Simulator's rendered event stream.
class Replayer {
 public:
  /// The visitor receives (event index, event, rendered line) in
  /// stream order; return false to stop early.
  using Visitor =
      std::function<bool(std::size_t, const SimEvent&, std::string&&)>;

  Replayer(const Simulator& simulator, ReplayOptions opts = {});

  /// Runs the replay. Returns the number of events delivered.
  std::size_t run(const Visitor& visit) const;

  /// Events the configured range will deliver.
  std::size_t total() const { return end_ - begin_; }

 private:
  const Simulator* sim_;
  ReplayOptions opts_;
  std::size_t begin_ = 0;
  std::size_t end_ = 0;
};

}  // namespace wss::sim
