#include "sim/jobs.hpp"

#include <algorithm>
#include <cmath>

namespace wss::sim {

std::vector<Job> generate_jobs(const SystemSpec& spec, util::Rng& rng,
                               std::size_t count) {
  std::vector<Job> jobs;
  jobs.reserve(count);
  const util::TimeUs lo = spec.start_time();
  const util::TimeUs hi = spec.end_time();
  const std::uint32_t n_compute = spec.n_sources > 16 ? spec.n_sources - 16
                                                      : spec.n_sources;
  for (std::size_t i = 0; i < count; ++i) {
    Job j;
    // Sizes 4..128 nodes, biased toward small allocations.
    const int size_exp = static_cast<int>(rng.uniform_u64(6));
    j.n_nodes = std::min<std::uint32_t>(n_compute, 4u << size_exp);
    j.first_node = static_cast<std::uint32_t>(
        rng.uniform_u64(n_compute - j.n_nodes + 1));
    // Durations: lognormal around ~2 h, capped at 2 days.
    const double dur_s =
        std::min(2.0 * 86400.0, rng.lognormal(std::log(7200.0), 1.0));
    j.start = lo + static_cast<util::TimeUs>(rng.uniform() *
                                             static_cast<double>(hi - lo));
    j.end = std::min<util::TimeUs>(
        hi, j.start + static_cast<util::TimeUs>(dur_s * 1e6));
    j.comm_heavy = rng.bernoulli(0.4);
    jobs.push_back(j);
  }
  std::sort(jobs.begin(), jobs.end(),
            [](const Job& a, const Job& b) { return a.start < b.start; });
  return jobs;
}

}  // namespace wss::sim
