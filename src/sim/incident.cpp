#include "sim/incident.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tag/rulesets.hpp"

namespace wss::sim {

namespace {

/// One planned incident, before event emission.
struct Incident {
  util::TimeUs start = 0;
  std::uint64_t size = 1;
  std::uint32_t source = 0;
  bool leaky = false;
  bool storm = false;
  bool job_burst = false;
  std::uint32_t job_first_node = 0;
  std::uint32_t job_n_nodes = 1;
};

/// Splits `total` events into `n` parts, each >= 1, proportional to
/// lightly jittered equal shares.
std::vector<std::uint64_t> split_sizes(std::uint64_t total, std::size_t n,
                                       util::Rng& rng) {
  std::vector<std::uint64_t> out(n, 1);
  if (n == 0) return out;
  if (total <= n) {
    out.assign(n, 1);
    for (std::size_t i = 0; i < n && i < static_cast<std::size_t>(total); ++i) {
    }
    return out;  // every incident gets at least one event
  }
  std::uint64_t remaining = total - n;
  // Distribute the surplus with dirichlet-ish jitter (exponential
  // weights), largest remainder.
  std::vector<double> w(n);
  double sum = 0.0;
  for (auto& x : w) {
    x = rng.exponential(1.0) + 0.1;
    sum += x;
  }
  std::uint64_t assigned = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto extra =
        static_cast<std::uint64_t>(static_cast<double>(remaining) * w[i] / sum);
    out[i] += extra;
    assigned += extra;
  }
  std::size_t i = 0;
  while (assigned < remaining) {
    ++out[i % n];
    ++assigned;
    ++i;
  }
  return out;
}

std::uint32_t pick_source(const CategoryGenPlan& plan, const SystemSpec& spec,
                          util::Rng& rng) {
  if (!plan.source_pool.empty()) {
    return plan.source_pool[rng.uniform_u64(plan.source_pool.size())];
  }
  // Compute sources only (admin nodes are chatty, not alert-prone).
  const std::uint32_t n_admin =
      spec.id == parse::SystemId::kBlueGeneL ? 2u : 8u;
  const std::uint32_t n_compute =
      spec.n_sources > n_admin ? spec.n_sources - n_admin : spec.n_sources;
  return static_cast<std::uint32_t>(rng.uniform_u64(n_compute));
}

}  // namespace

std::vector<SimEvent> generate_category(
    const CategoryGenPlan& plan, IncidentContext& ctx, util::Rng& rng,
    const std::vector<util::TimeUs>* anchors,
    std::vector<util::TimeUs>* incident_starts_out) {
  if (ctx.spec == nullptr) {
    throw std::invalid_argument("generate_category: null spec");
  }
  const SystemSpec& spec = *ctx.spec;
  const util::TimeUs T = ctx.threshold_us;
  const util::TimeUs lo = spec.start_time();
  const util::TimeUs hi = spec.end_time();
  const auto window = static_cast<double>(hi - lo);

  std::vector<SimEvent> out;
  std::vector<util::TimeUs> starts_log;

  const std::uint64_t E = std::max<std::uint64_t>(plan.gen_events, 1);
  std::uint64_t F = std::max<std::uint64_t>(plan.incidents, 1);
  if (F > E) F = E;

  // ---- Plan incidents -------------------------------------------------
  std::vector<Incident> incidents;

  if (plan.mode == SourceMode::kPoisson) {
    // Independent failures: one event each, plus engineered coincident
    // pairs (extra failures within T of an existing one).
    const std::uint64_t pairs = std::min(plan.engineered_pairs, F);
    const std::uint64_t singles = E - pairs;
    incidents.reserve(singles);
    for (std::uint64_t i = 0; i < singles; ++i) {
      Incident inc;
      inc.size = 1;
      inc.source = pick_source(plan, spec, rng);
      incidents.push_back(inc);
    }
    // Start times: Poisson = iid uniform over the window.
    for (auto& inc : incidents) {
      inc.start = lo + static_cast<util::TimeUs>(rng.uniform() * window);
    }
    std::sort(incidents.begin(), incidents.end(),
              [](const Incident& a, const Incident& b) {
                return a.start < b.start;
              });
    // Keep independent failures from colliding by accident; only the
    // engineered pairs may fall within T of each other.
    for (std::size_t i = 1; i < incidents.size(); ++i) {
      if (incidents[i].start - incidents[i - 1].start < 3 * T) {
        incidents[i].start = incidents[i - 1].start + 3 * T +
                             static_cast<util::TimeUs>(rng.uniform(0, 1e6));
      }
    }
    // Emit singles.
    for (const Incident& inc : incidents) {
      SimEvent e;
      e.time = inc.start;
      e.source = inc.source;
      e.category = plan.category_id;
      e.failure_id = ctx.next_failure_id++;
      e.severity = plan.info != nullptr ? plan.info->severity
                                        : parse::Severity::kNone;
      e.weight = plan.weight;
      out.push_back(e);
      starts_log.push_back(inc.start);
    }
    // Engineered coincidences: a *distinct* failure on another source
    // within T of an existing event (these are what filtering merges).
    for (std::uint64_t p = 0; p < pairs && !out.empty(); ++p) {
      const SimEvent& host = out[rng.uniform_u64(out.size())];
      SimEvent e = host;
      e.time = host.time +
               static_cast<util::TimeUs>(rng.uniform(0.2, 0.8) *
                                         static_cast<double>(T));
      e.source = pick_source(plan, spec, rng);
      e.failure_id = ctx.next_failure_id++;
      out.push_back(e);
      starts_log.push_back(e.time);
    }
  } else {
    // ---- Burst modes --------------------------------------------------
    // Leak adjustment: leaky chains of exactly s_l events contribute
    // s_l survivors each; solve for the incident count that keeps the
    // expected survivor total at F.
    const std::uint64_t s_l = 5;
    std::uint64_t n_leaky = 0;
    std::uint64_t n_incidents = F;
    if (plan.leak_frac > 0.0 && F >= s_l) {
      n_leaky = static_cast<std::uint64_t>(
          plan.leak_frac * static_cast<double>(F) / static_cast<double>(s_l));
      n_incidents = F - n_leaky * (s_l - 1);
    }
    if (n_incidents == 0) n_incidents = 1;
    if (n_leaky > n_incidents) n_leaky = n_incidents;

    // Storm split.
    std::uint64_t n_storm = 0;
    if (plan.has_storm) {
      n_storm = static_cast<std::uint64_t>(std::llround(
          plan.storm_incident_frac * static_cast<double>(n_incidents)));
      n_storm = std::min(n_storm, n_incidents - std::min<std::uint64_t>(
                                                    1, n_incidents - 1));
      if (n_storm == 0 && plan.storm_incident_frac > 0.0) n_storm = 1;
      // Leave room for the leaky incidents already reserved.
      n_storm = std::min(n_storm, n_incidents - n_leaky);
    }
    const std::uint64_t n_normal = n_incidents - n_storm - n_leaky;

    // Event budgets.
    const std::uint64_t e_leak = n_leaky * s_l;
    std::uint64_t e_storm = 0;
    if (n_storm > 0) {
      e_storm = static_cast<std::uint64_t>(plan.storm_event_frac *
                                           static_cast<double>(E));
      e_storm = std::max(e_storm, n_storm);
      e_storm = std::min(e_storm, E - e_leak - n_normal);
    }
    const std::uint64_t e_normal = E - e_leak - e_storm;

    incidents.reserve(n_incidents);
    if (n_storm > 0) {
      const auto sizes = split_sizes(e_storm, n_storm, rng);
      for (std::uint64_t i = 0; i < n_storm; ++i) {
        Incident inc;
        inc.size = sizes[i];
        inc.source = plan.storm_node;
        inc.storm = true;
        incidents.push_back(inc);
      }
    }
    for (std::uint64_t i = 0; i < n_leaky; ++i) {
      Incident inc;
      inc.size = s_l;
      inc.leaky = true;
      inc.source = pick_source(plan, spec, rng);
      incidents.push_back(inc);
    }
    {
      const auto sizes = split_sizes(e_normal, n_normal, rng);
      for (std::uint64_t i = 0; i < n_normal; ++i) {
        Incident inc;
        inc.size = sizes[i];
        inc.source = pick_source(plan, spec, rng);
        incidents.push_back(inc);
      }
    }

    // Job anchoring.
    if (plan.mode == SourceMode::kJobBursts && ctx.jobs != nullptr) {
      std::vector<const Job*> heavy;
      for (const Job& j : *ctx.jobs) {
        if (j.comm_heavy) heavy.push_back(&j);
      }
      if (!heavy.empty()) {
        for (auto& inc : incidents) {
          const Job& j = *heavy[rng.uniform_u64(heavy.size())];
          inc.job_burst = true;
          inc.job_first_node = j.first_node;
          inc.job_n_nodes = std::max<std::uint32_t>(1, j.n_nodes);
          const auto span = static_cast<double>(j.end - j.start);
          inc.start =
              j.start + static_cast<util::TimeUs>(rng.uniform() * span * 0.8);
        }
      }
    }

    // Start-time placement for non-job incidents.
    std::size_t n_cascade = 0;
    if (plan.cascade_from >= 0 && anchors != nullptr && !anchors->empty() &&
        plan.cascade_frac > 0.0) {
      n_cascade = static_cast<std::size_t>(
          plan.cascade_frac * static_cast<double>(incidents.size()));
      n_cascade = std::min(n_cascade, anchors->size());
    }
    std::vector<std::size_t> anchor_order(anchors ? anchors->size() : 0);
    for (std::size_t i = 0; i < anchor_order.size(); ++i) anchor_order[i] = i;
    if (!anchor_order.empty()) rng.shuffle(anchor_order);

    // Cluster centers for heavy-tailed placement: failures beget
    // failures, so incident interarrivals are over-dispersed (CV > 1)
    // rather than exponential (Section 4).
    std::vector<util::TimeUs> centers;
    if (plan.cluster_frac > 0.0) {
      const std::size_t n_centers = std::max<std::size_t>(
          1, incidents.size() / 4);
      for (std::size_t c = 0; c < n_centers; ++c) {
        centers.push_back(lo + static_cast<util::TimeUs>(rng.uniform() *
                                                         window));
      }
    }

    std::size_t cascade_used = 0;
    for (auto& inc : incidents) {
      if (inc.job_burst) continue;
      const auto est_dur =
          static_cast<util::TimeUs>(static_cast<double>(inc.size) * 0.9 *
                                    static_cast<double>(T));
      const util::TimeUs latest = std::max(lo + 1, hi - est_dur - 1);
      if (cascade_used < n_cascade) {
        const util::TimeUs anchor = (*anchors)[anchor_order[cascade_used]];
        ++cascade_used;
        inc.start = std::min(latest,
                             anchor + static_cast<util::TimeUs>(
                                          rng.uniform(1e6, 60e6)));
        continue;
      }
      if (plan.concentrate_frac > 0.0 &&
          rng.bernoulli(plan.concentrate_frac)) {
        const double f = plan.concentrate_begin_frac +
                         rng.uniform() * plan.concentrate_len_frac;
        inc.start = lo + static_cast<util::TimeUs>(
                             f * static_cast<double>(latest - lo));
        continue;
      }
      if (!centers.empty() && rng.bernoulli(plan.cluster_frac)) {
        // Lognormal offset around a cluster center: median ~1.5 h,
        // heavy tail, random sign.
        const util::TimeUs center = centers[rng.uniform_u64(centers.size())];
        const double offset_s = rng.lognormal(std::log(5400.0), 1.2);
        const auto offset =
            static_cast<util::TimeUs>(offset_s * 1e6) *
            (rng.bernoulli(0.5) ? 1 : -1);
        inc.start = std::clamp<util::TimeUs>(center + offset, lo + 1, latest);
        continue;
      }
      inc.start = lo + static_cast<util::TimeUs>(
                           rng.uniform() * static_cast<double>(latest - lo));
    }

    // Separate same-category incidents so independent failures do not
    // merge under the filter by accident.
    std::sort(incidents.begin(), incidents.end(),
              [](const Incident& a, const Incident& b) {
                return a.start < b.start;
              });
    util::TimeUs prev_end = lo - 1000 * T;
    for (auto& inc : incidents) {
      if (inc.start - prev_end < 4 * T) {
        inc.start = prev_end + 4 * T +
                    static_cast<util::TimeUs>(rng.uniform(0, 2e6));
      }
      // Upper-bound the chain duration (gaps are sampled up to 0.85 T
      // clean / 2.2 T leaky) so a long chain cannot bleed into the
      // next incident's window and merge two failures by accident.
      const auto gap_per_event = inc.leaky ? 2.25 : 0.88;
      prev_end = inc.start +
                 static_cast<util::TimeUs>(static_cast<double>(inc.size) *
                                           gap_per_event *
                                           static_cast<double>(T));
    }

    // ---- Emit events --------------------------------------------------
    for (const Incident& inc : incidents) {
      const std::uint64_t fid = ctx.next_failure_id++;
      starts_log.push_back(inc.start);
      util::TimeUs t = inc.start;
      // Trailing cross-source reports for the multi-node shape.
      std::uint64_t trail = 0;
      if (plan.mode == SourceMode::kMultiNodeBursts && inc.size >= 2 &&
          !inc.storm) {
        trail = std::min<std::uint64_t>(plan.nodes_per_burst - 1,
                                        inc.size - 1);
      }
      const std::uint64_t head = inc.size - trail;
      for (std::uint64_t k = 0; k < inc.size; ++k) {
        SimEvent e;
        e.category = plan.category_id;
        e.failure_id = fid;
        e.severity = plan.info != nullptr ? plan.info->severity
                                          : parse::Severity::kNone;
        e.weight = plan.weight;
        if (k > 0) {
          const double g = inc.leaky ? rng.uniform(1.05, 2.2)
                                     : rng.uniform(0.25, 0.85);
          t += static_cast<util::TimeUs>(g * static_cast<double>(T));
        }
        e.time = t;
        if (inc.job_burst) {
          e.source = inc.job_first_node +
                     static_cast<std::uint32_t>(k % inc.job_n_nodes);
        } else if (k < head) {
          e.source = inc.source;
        } else {
          // Trailing report from a different source.
          std::uint32_t s = pick_source(plan, spec, rng);
          if (s == inc.source) s = (s + 1) % spec.n_sources;
          e.source = s;
        }
        out.push_back(e);
      }
    }

    // The shadowed-incident case (sn325 inside sn373's storm).
    if (plan.shadowed_incident) {
      const Incident* biggest = nullptr;
      for (const Incident& inc : incidents) {
        if (inc.storm && (biggest == nullptr || inc.size > biggest->size)) {
          biggest = &inc;
        }
      }
      if (biggest != nullptr && biggest->size >= 8) {
        const std::uint64_t fid = ctx.next_failure_id++;
        util::TimeUs t = biggest->start +
                         static_cast<util::TimeUs>(
                             static_cast<double>(biggest->size) * 0.3 *
                             static_cast<double>(T));
        const std::uint64_t shadow_size = 12;
        for (std::uint64_t k = 0; k < shadow_size; ++k) {
          SimEvent e;
          e.category = plan.category_id;
          e.failure_id = fid;
          e.severity = plan.info != nullptr ? plan.info->severity
                                            : parse::Severity::kNone;
          // The shadowed incident is an addition beyond the calibrated
          // raw count; unit weight keeps Table 4's weighted sums exact.
          e.weight = 1.0;
          if (k > 0) {
            t += static_cast<util::TimeUs>(rng.uniform(0.3, 0.8) *
                                           static_cast<double>(T));
          }
          e.time = t;
          e.source = plan.shadow_node;
          out.push_back(e);
        }
        starts_log.push_back(t);
      }
    }
  }

  // Apply the minority severity (e.g. BG/L's 62 FAILURE alerts).
  if (plan.info != nullptr && plan.info->alt_count > 0 && !out.empty()) {
    auto alt_gen = static_cast<std::uint64_t>(std::llround(
        static_cast<double>(plan.info->alt_count) / plan.weight));
    alt_gen = std::min<std::uint64_t>(alt_gen, out.size());
    for (std::uint64_t i = 0; i < alt_gen; ++i) {
      out[out.size() - 1 - i].severity = plan.info->alt_severity;
    }
  }

  sort_events(out);
  if (incident_starts_out != nullptr) {
    std::sort(starts_log.begin(), starts_log.end());
    *incident_starts_out = std::move(starts_log);
  }
  return out;
}

}  // namespace wss::sim
