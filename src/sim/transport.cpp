#include "sim/transport.hpp"

#include <algorithm>
#include <deque>

namespace wss::sim {

std::vector<SimEvent> apply_udp_loss(const std::vector<SimEvent>& sorted,
                                     const UdpConfig& cfg, util::Rng& rng,
                                     TransportStats* stats) {
  std::vector<SimEvent> out;
  out.reserve(sorted.size());
  TransportStats st;
  std::deque<util::TimeUs> window;  // offered-message times in the window
  for (const SimEvent& e : sorted) {
    ++st.offered;
    while (!window.empty() && e.time - window.front() > cfg.rate_window_us) {
      window.pop_front();
    }
    window.push_back(e.time);
    const double contention =
        cfg.contention_loss_per_k * static_cast<double>(window.size()) / 1000.0;
    const double p = std::min(0.9, cfg.base_loss + contention);
    if (rng.bernoulli(p)) {
      ++st.dropped;
    } else {
      ++st.delivered;
      out.push_back(e);
    }
  }
  if (stats != nullptr) *stats = st;
  return out;
}

std::vector<SimEvent> apply_tcp(const std::vector<SimEvent>& sorted,
                                TransportStats* stats) {
  if (stats != nullptr) {
    stats->offered = stats->delivered = sorted.size();
    stats->dropped = 0;
  }
  return sorted;
}

std::vector<SimEvent> apply_jtag_polling(const std::vector<SimEvent>& sorted,
                                         util::TimeUs poll_interval_us,
                                         TransportStats* stats) {
  std::vector<SimEvent> out;
  out.reserve(sorted.size());
  // Stable bucketing by poll tick; events already time-sorted, so the
  // grouping is a no-op reorder unless events straddle tick edges with
  // equal times -- we preserve input order within a tick.
  for (const SimEvent& e : sorted) out.push_back(e);
  std::stable_sort(out.begin(), out.end(),
                   [poll_interval_us](const SimEvent& a, const SimEvent& b) {
                     return a.time / poll_interval_us <
                            b.time / poll_interval_us;
                   });
  if (stats != nullptr) {
    stats->offered = stats->delivered = sorted.size();
    stats->dropped = 0;
  }
  return out;
}

}  // namespace wss::sim
