#include "sim/transport.hpp"

#include <algorithm>
#include <deque>

namespace wss::sim {

bool UdpLossModel::offer_drops(util::TimeUs t, util::Rng& rng) {
  ++stats_.offered;
  while (!window_.empty() && t - window_.front() > cfg_.rate_window_us) {
    window_.pop_front();
  }
  window_.push_back(t);
  const double contention =
      cfg_.contention_loss_per_k * static_cast<double>(window_.size()) /
      1000.0;
  const double p = std::min(0.9, cfg_.base_loss + contention);
  if (rng.bernoulli(p)) {
    ++stats_.dropped;
    return true;
  }
  ++stats_.delivered;
  return false;
}

std::vector<SimEvent> apply_udp_loss(const std::vector<SimEvent>& sorted,
                                     const UdpConfig& cfg, util::Rng& rng,
                                     TransportStats* stats) {
  std::vector<SimEvent> out;
  out.reserve(sorted.size());
  UdpLossModel model(cfg);
  for (const SimEvent& e : sorted) {
    if (!model.offer_drops(e.time, rng)) out.push_back(e);
  }
  if (stats != nullptr) *stats = model.stats();
  return out;
}

std::vector<SimEvent> apply_tcp(const std::vector<SimEvent>& sorted,
                                TransportStats* stats) {
  if (stats != nullptr) {
    stats->offered = stats->delivered = sorted.size();
    stats->dropped = 0;
  }
  return sorted;
}

std::vector<SimEvent> apply_jtag_polling(const std::vector<SimEvent>& sorted,
                                         util::TimeUs poll_interval_us,
                                         TransportStats* stats) {
  std::vector<SimEvent> out;
  out.reserve(sorted.size());
  // Stable bucketing by poll tick; events already time-sorted, so the
  // grouping is a no-op reorder unless events straddle tick edges with
  // equal times -- we preserve input order within a tick.
  for (const SimEvent& e : sorted) out.push_back(e);
  std::stable_sort(out.begin(), out.end(),
                   [poll_interval_us](const SimEvent& a, const SimEvent& b) {
                     return a.time / poll_interval_us <
                            b.time / poll_interval_us;
                   });
  if (stats != nullptr) {
    stats->offered = stats->delivered = sorted.size();
    stats->dropped = 0;
  }
  return out;
}

}  // namespace wss::sim
