#include "sim/opcontext.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

namespace wss::sim {

std::string_view op_state_name(OpState s) {
  switch (s) {
    case OpState::kProduction:
      return "production";
    case OpState::kScheduledDowntime:
      return "scheduled downtime";
    case OpState::kUnscheduledDowntime:
      return "unscheduled downtime";
    case OpState::kEngineering:
      return "engineering";
  }
  return "?";
}

OpContextTimeline::OpContextTimeline(util::TimeUs start, util::TimeUs end,
                                     OpState initial)
    : start_(start), end_(end), initial_(initial) {
  if (end <= start) {
    throw std::invalid_argument("OpContextTimeline: empty window");
  }
}

void OpContextTimeline::append(OpTransition t) {
  if (!transitions_.empty() && t.time < transitions_.back().time) {
    throw std::invalid_argument("OpContextTimeline: out-of-order transition");
  }
  transitions_.push_back(std::move(t));
}

OpState OpContextTimeline::state_at(util::TimeUs t) const {
  OpState s = initial_;
  for (const auto& tr : transitions_) {
    if (tr.time > t) break;
    s = tr.to;
  }
  return s;
}

RasMetrics OpContextTimeline::metrics() const {
  std::array<double, 4> time_in{};
  OpState cur = initial_;
  util::TimeUs cur_since = start_;
  std::size_t outages = 0;
  for (const auto& tr : transitions_) {
    const util::TimeUs t = std::clamp(tr.time, start_, end_);
    time_in[static_cast<std::size_t>(cur)] +=
        static_cast<double>(t - cur_since);
    cur = tr.to;
    cur_since = t;
    if (tr.to == OpState::kUnscheduledDowntime) ++outages;
  }
  time_in[static_cast<std::size_t>(cur)] +=
      static_cast<double>(end_ - cur_since);

  const double total = static_cast<double>(end_ - start_);
  RasMetrics m;
  m.production_fraction = time_in[0] / total;
  m.scheduled_fraction = time_in[1] / total;
  m.unscheduled_fraction = time_in[2] / total;
  m.engineering_fraction = time_in[3] / total;
  const double denom = time_in[0] + time_in[2];
  m.availability = denom > 0.0 ? time_in[0] / denom : 0.0;
  m.unscheduled_outages = outages;
  if (outages > 0) {
    m.mtbf_hours = time_in[0] / static_cast<double>(outages) / 3.6e9;
  }
  return m;
}

OpContextTimeline OpContextTimeline::generate(const SystemSpec& spec,
                                              util::Rng& rng,
                                              double unscheduled_per_month) {
  OpContextTimeline tl(spec.start_time(), spec.end_time());
  const util::TimeUs week = 7 * util::kUsPerDay;

  struct Block {
    util::TimeUs begin;
    util::TimeUs dur;
    OpState state;
    const char* cause;
  };
  std::vector<Block> blocks;

  // Weekly 4-hour preventive-maintenance window.
  for (util::TimeUs t = tl.start() + 3 * util::kUsPerDay; t < tl.end();
       t += week) {
    blocks.push_back({t, 4 * util::kUsPerHour, OpState::kScheduledDowntime,
                      "weekly PM"});
  }
  // ~Monthly engineering blocks (dedicated system test).
  for (util::TimeUs t = tl.start() + 12 * util::kUsPerDay; t < tl.end();
       t += 30 * util::kUsPerDay) {
    blocks.push_back({t + static_cast<util::TimeUs>(rng.uniform(0, 5.0) *
                                                    util::kUsPerDay),
                      8 * util::kUsPerHour, OpState::kEngineering,
                      "dedicated system test"});
  }
  // Unscheduled outages: Poisson at the given monthly rate, lognormal
  // repair times around ~3 h.
  const double months =
      static_cast<double>(tl.end() - tl.start()) / (30.0 * 86400.0 * 1e6);
  const auto n_outages = rng.poisson(unscheduled_per_month * months);
  for (std::uint64_t i = 0; i < n_outages; ++i) {
    const auto at = tl.start() + static_cast<util::TimeUs>(
                                     rng.uniform() *
                                     static_cast<double>(tl.end() - tl.start()));
    const auto dur = static_cast<util::TimeUs>(
        std::min(48.0 * 3600.0, rng.lognormal(std::log(3.0 * 3600.0), 0.8)) *
        1e6);
    blocks.push_back({at, dur, OpState::kUnscheduledDowntime, "failure"});
  }

  std::sort(blocks.begin(), blocks.end(),
            [](const Block& a, const Block& b) { return a.begin < b.begin; });

  // Flatten overlapping blocks: later blocks start after earlier ones
  // finish (real operations serialize downtime too).
  util::TimeUs cursor = tl.start();
  for (const Block& b : blocks) {
    const util::TimeUs begin = std::max(b.begin, cursor + 1);
    const util::TimeUs finish = std::min(begin + b.dur, tl.end());
    if (begin >= tl.end() || finish <= begin) continue;
    tl.append({begin, b.state, b.cause});
    tl.append({finish, OpState::kProduction, "return to production"});
    cursor = finish;
  }
  return tl;
}

}  // namespace wss::sim
