// The top-level simulator: one object per system run.
//
// Orchestrates sim/catalog (per-category plans), sim/incident (alert
// bursts with ground truth), sim/jobs (workload context), sim/chatter
// (non-alert volume), and sim/render (native log lines + corruption)
// into a single time-sorted event stream with a deterministic
// event-index -> line mapping.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "filter/alert.hpp"
#include "sim/catalog.hpp"
#include "sim/chatter.hpp"
#include "sim/jobs.hpp"
#include "sim/opcontext.hpp"
#include "sim/process.hpp"
#include "sim/render.hpp"
#include "sim/sources.hpp"
#include "sim/spec.hpp"

namespace wss::sim {

/// One simulated system log.
class Simulator {
 public:
  Simulator(parse::SystemId system, SimOptions opts);

  const SystemSpec& spec() const { return *spec_; }
  const SourceNamer& namer() const { return namer_; }
  const SimOptions& options() const { return opts_; }
  const Renderer& renderer() const { return *renderer_; }
  const std::vector<Job>& jobs() const { return jobs_; }
  const OpContextTimeline& op_context() const { return *op_context_; }

  /// All events, sorted by time. Ground truth included.
  const std::vector<SimEvent>& events() const { return events_; }

  /// Ground-truth failure count (distinct failure ids).
  std::uint64_t total_failures() const { return total_failures_; }

  /// Renders event i (deterministic; includes corruption when the
  /// options enable it).
  std::string line(std::size_t i) const;

  /// Streams every rendered line through `fn` in time order.
  void for_each_line(const std::function<void(std::string_view)>& fn) const;

  /// A contiguous, time-ordered slice of the event stream.
  struct EventRange {
    std::size_t begin = 0;
    std::size_t end = 0;  ///< one past the last event index
  };

  /// Cuts the event stream into shards of at most `chunk_events`
  /// events, in stream order. Shard boundaries depend only on
  /// `chunk_events` (never on thread count), which is what lets the
  /// parallel pipeline merge partial results deterministically.
  std::vector<EventRange> event_shards(std::size_t chunk_events) const;

  /// Streams the rendered lines of events [begin, end) through `fn`.
  /// Rendering is a pure function of (event, index), so disjoint
  /// ranges may be streamed concurrently from multiple threads.
  void for_each_line_in(std::size_t begin, std::size_t end,
                        const std::function<void(std::string_view)>& fn) const;

  /// The ground-truth alert stream (sorted), ready for the filters --
  /// what a perfect tagger would extract.
  std::vector<filter::Alert> ground_truth_alerts() const;

  /// Weighted raw alert count per category id (should reproduce the
  /// Table 4 raw column).
  std::vector<double> weighted_alert_counts() const;

  /// Total weighted messages (should reproduce Table 2's message
  /// count).
  double weighted_message_total() const;

 private:
  const SystemSpec* spec_;
  SimOptions opts_;
  SourceNamer namer_;
  std::vector<Job> jobs_;
  std::unique_ptr<OpContextTimeline> op_context_;
  std::unique_ptr<Renderer> renderer_;
  std::vector<SimEvent> events_;
  std::uint64_t total_failures_ = 0;
};

}  // namespace wss::sim
