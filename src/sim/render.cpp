#include "sim/render.hpp"

#include <stdexcept>

#include "util/strings.hpp"

namespace wss::sim {

namespace {

constexpr std::string_view kPaths[] = {
    "/usr/src/gm/libgm", "/var/spool/pbs/mom_priv", "/etc/sysconfig",
    "/bgl/ciod/maps",    "/scratch/run42",
};

/// Lowercase severity token for the syslog priority field.
std::string_view priority_name(parse::Severity s) {
  switch (s) {
    case parse::Severity::kDebug:
      return "debug";
    case parse::Severity::kInfo:
      return "info";
    case parse::Severity::kNotice:
      return "notice";
    case parse::Severity::kWarning:
      return "warning";
    case parse::Severity::kError:
      return "err";
    case parse::Severity::kCrit:
      return "crit";
    case parse::Severity::kAlert:
      return "alert";
    case parse::Severity::kEmerg:
      return "emerg";
    default:
      return "info";
  }
}

}  // namespace

Renderer::Renderer(const SystemSpec& spec, const SourceNamer& namer,
                   CorruptionConfig corruption, std::uint64_t seed)
    : spec_(&spec),
      namer_(&namer),
      categories_(tag::categories_of(spec.id)),
      injector_(corruption, seed ^ 0xc0ffee),
      seed_(seed) {}

tag::LogPath Renderer::path_of(const SimEvent& e) const {
  if (e.is_alert()) {
    return categories_.at(static_cast<std::size_t>(e.category))->path;
  }
  return chatter_templates(spec_->id).at(e.chatter_kind).path;
}

std::string Renderer::expand(std::string_view tmpl, const SimEvent& e,
                             util::Rng& rng) const {
  std::string out;
  out.reserve(tmpl.size() + 16);
  for (std::size_t i = 0; i < tmpl.size();) {
    if (tmpl[i] != '{') {
      out.push_back(tmpl[i]);
      ++i;
      continue;
    }
    const std::size_t close = tmpl.find('}', i);
    if (close == std::string_view::npos) {
      out.append(tmpl.substr(i));
      break;
    }
    const std::string_view key = tmpl.substr(i + 1, close - i - 1);
    if (key == "n") {
      out.append(std::to_string(rng.uniform_i64(1, 9999)));
    } else if (key == "ip") {
      out.append(util::format("10.%d.%d.%d",
                              static_cast<int>(rng.uniform_i64(0, 3)),
                              static_cast<int>(rng.uniform_i64(0, 255)),
                              static_cast<int>(rng.uniform_i64(1, 254))));
    } else if (key == "hex") {
      out.append(util::format("%016llx",
                              static_cast<unsigned long long>(rng())));
    } else if (key == "path") {
      out.append(kPaths[rng.uniform_u64(std::size(kPaths))]);
    } else if (key == "node") {
      out.append(namer_->name(e.source));
    } else if (key == "time") {
      out.append(util::format_iso(e.time));
    } else {
      out.append(tmpl.substr(i, close - i + 1));  // unknown: literal
    }
    i = close + 1;
  }
  return out;
}

std::string Renderer::base_line(const SimEvent& e,
                                std::uint64_t event_index) const {
  util::Rng rng(seed_ ^ (event_index * 0x2545f4914f6cdd1dull));

  std::string_view program;
  std::string_view body_tmpl;
  tag::LogPath path;
  if (e.is_alert()) {
    const tag::CategoryInfo& c =
        *categories_.at(static_cast<std::size_t>(e.category));
    program = c.program;
    body_tmpl = c.body_template;
    path = c.path;
  } else {
    const ChatterTemplate& t = chatter_templates(spec_->id).at(e.chatter_kind);
    program = t.program;
    body_tmpl = t.body;
    path = t.path;
  }
  const std::string body = expand(body_tmpl, e, rng);
  const std::string host = namer_->name(e.source);

  switch (path) {
    case tag::LogPath::kSyslog: {
      std::string line = util::format_syslog(e.time);
      line.push_back(' ');
      line.append(host);
      line.push_back(' ');
      if (!program.empty()) {
        line.append(program);
        // Daemons log with a pid; the kernel does not.
        if (program != "kernel" && program != "check-disks") {
          line.append(util::format("[%d]",
                                   static_cast<int>(rng.uniform_i64(200,
                                                                    32000))));
        }
        line.append(": ");
      }
      line.append(body);
      return line;
    }
    case tag::LogPath::kBglRas: {
      const auto epoch = e.time / util::kUsPerSec;
      const util::CivilTime ct = util::to_civil(e.time);
      std::string line = util::format(
          "%lld %04d.%02d.%02d ", static_cast<long long>(epoch), ct.year,
          ct.month, ct.day);
      line.append(host);
      line.push_back(' ');
      line.append(util::format_bgl(e.time));
      line.push_back(' ');
      line.append(host);
      line.append(" RAS ");
      line.append(program.empty() ? "KERNEL" : program);
      line.push_back(' ');
      line.append(parse::severity_bgl_name(e.severity));
      line.push_back(' ');
      line.append(body);
      return line;
    }
    case tag::LogPath::kRsSyslog:
    case tag::LogPath::kRsDdn: {
      std::string line = util::format_syslog(e.time);
      line.push_back(' ');
      line.append(host);
      line.push_back(' ');
      const bool kern = program == "kernel";
      line.append(path == tag::LogPath::kRsDdn ? "local0"
                                               : (kern ? "kern" : "daemon"));
      line.push_back('.');
      line.append(priority_name(e.severity));
      line.push_back(' ');
      if (!program.empty()) {
        line.append(program);
        line.append(": ");
      }
      line.append(body);
      return line;
    }
    case tag::LogPath::kRsEventRouter: {
      std::string line = util::format_iso(e.time);
      line.push_back(' ');
      line.append(program.empty() ? "ec_event" : program);
      line.append(" src:::");
      line.append(host);
      line.append(" svc:::");
      line.append(host);
      line.push_back(' ');
      line.append(body);
      return line;
    }
  }
  throw std::logic_error("Renderer: unknown log path");
}

std::string Renderer::render(const SimEvent& e,
                             std::uint64_t event_index) const {
  return injector_.apply(base_line(e, event_index), event_index, path_of(e),
                         e.is_alert());
}

std::string Renderer::render_clean(const SimEvent& e,
                                   std::uint64_t event_index) const {
  return base_line(e, event_index);
}

}  // namespace wss::sim
