#include "sim/chatter.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

namespace wss::sim {

namespace {

using parse::Severity;
using parse::SystemId;
using tag::LogPath;

// -------------------------------------------------------------------
// Templates. None of these bodies may match any rule pattern of their
// system (tests/test_sim_chatter.cpp verifies that invariant).
// -------------------------------------------------------------------

const std::vector<ChatterTemplate>& bgl_templates() {
  static const std::vector<ChatterTemplate> t = {
      {"KERNEL", "generating core.{n}", LogPath::kBglRas, Severity::kInfo},
      {"KERNEL", "CE sym {n}, at 0x{hex}, mask 0x{n}", LogPath::kBglRas,
       Severity::kInfo},
      {"KERNEL", "{n} L3 EDRAM error(s) (dcr 0x{hex}) detected and corrected "
                 "over {n} seconds",
       LogPath::kBglRas, Severity::kInfo},
      {"APP", "ciod: Message code {n} is not 3 or 4103", LogPath::kBglRas,
       Severity::kInfo},
      {"DISCOVERY", "Node card VPD check: missing serial number",
       LogPath::kBglRas, Severity::kInfo},
      {"MMCS", "idoproxydb has been started: $Name: V1R2M1 $",
       LogPath::kBglRas, Severity::kInfo},
      {"KERNEL", "ciod: Missing or invalid fields on line {n} of node map "
                 "file",
       LogPath::kBglRas, Severity::kWarning},
      {"MONITOR", "found invalid node ecid in processor card slot {n}",
       LogPath::kBglRas, Severity::kWarning},
      {"KERNEL", "ido packet timeout", LogPath::kBglRas, Severity::kError},
      {"MMCS", "BglIdoChip table has {n} IDOs with the same IP address",
       LogPath::kBglRas, Severity::kError},
      {"KERNEL", "Link PGOOD error latched on link card", LogPath::kBglRas,
       Severity::kSevere},
      {"MMCS", "PrepareForService shutting down Node card", LogPath::kBglRas,
       Severity::kSevere},
      // High-severity NON-alerts: the reason severity-field tagging has
      // a 59% false-positive rate on BG/L (Table 5).
      {"KERNEL", "rts tree/torus link training failed: wanted: X+ X- Y+ Y- "
                 "Z+ Z-",
       LogPath::kBglRas, Severity::kFatal},
      {"MMCS", "Error getting detailed hardware info for node card",
       LogPath::kBglRas, Severity::kFatal},
      {"KERNEL", "shutdown complete", LogPath::kBglRas, Severity::kFatal},
      // The operational-context example of Section 3.2.1: FAILURE
      // severity, innocuous during maintenance.
      {"MASTER", "BGLMASTER FAILURE ciodb exited normally with exit code 0",
       LogPath::kBglRas, Severity::kFailure},
      {"MASTER", "BGLMASTER FAILURE mmcs_server exited normally with exit "
                 "code 13",
       LogPath::kBglRas, Severity::kFailure},
  };
  return t;
}

const std::vector<ChatterTemplate>& syslog_templates() {
  static const std::vector<ChatterTemplate> t = {
      {"sshd", "session opened for user root by (uid=0)", LogPath::kSyslog,
       Severity::kNone},
      {"sshd", "Accepted publickey for root from {ip} port {n} ssh2",
       LogPath::kSyslog, Severity::kNone},
      {"crond", "(root) CMD (run-parts /etc/cron.hourly)", LogPath::kSyslog,
       Severity::kNone},
      {"ntpd", "synchronized to {ip}, stratum 2", LogPath::kSyslog,
       Severity::kNone},
      {"kernel", "e1000: eth0: e1000_watchdog: NIC Link is Up 1000 Mbps",
       LogPath::kSyslog, Severity::kNone},
      {"pbs_mom", "scan_for_terminated: job {n} task 1 terminated",
       LogPath::kSyslog, Severity::kNone},
      {"pbs_server", "Job Queued at request of root@{node}, owner = user{n}",
       LogPath::kSyslog, Severity::kNone},
      {"in.tftpd", "tftp: client does not accept options", LogPath::kSyslog,
       Severity::kNone},
      {"xinetd", "START: tftp pid={n} from={ip}", LogPath::kSyslog,
       Severity::kNone},
      {"gmond", "Incoming message from {ip}", LogPath::kSyslog,
       Severity::kNone},
      {"syslog-ng", "STATS: dropped {n}", LogPath::kSyslog, Severity::kNone},
      {"kernel", "martian source {ip} from {ip}, on dev eth0",
       LogPath::kSyslog, Severity::kNone},
      {"dhcpd", "DHCPREQUEST for {ip} from {hex} via eth1", LogPath::kSyslog,
       Severity::kNone},
  };
  return t;
}

const std::vector<ChatterTemplate>& redstorm_templates() {
  static const std::vector<ChatterTemplate> t = {
      // syslog path (severity recorded; Table 6 strata).
      {"kernel", "drec {n} debug: qlen {n}", LogPath::kRsSyslog,
       Severity::kDebug},
      {"kernel", "Lustre: {n} MDS connections to service mds1",
       LogPath::kRsSyslog, Severity::kInfo},
      {"sshd", "session opened for user root by (uid=0)", LogPath::kRsSyslog,
       Severity::kInfo},
      {"syslog-ng", "STATS: dropped {n}", LogPath::kRsSyslog,
       Severity::kInfo},
      {"crond", "(root) CMD (/usr/local/sbin/hpcstat)", LogPath::kRsSyslog,
       Severity::kNotice},
      {"kernel", "end_request: I/O error, dev sdc, sector {n}",
       LogPath::kRsSyslog, Severity::kWarning},
      {"kernel", "qla2300 0000:02:05.0: LOOP DOWN detected",
       LogPath::kRsSyslog, Severity::kError},
      {"automount", "lookup(program): lookup for user{n} failed",
       LogPath::kRsSyslog, Severity::kError},
      {"kernel", "CPU0: Temperature above threshold", LogPath::kRsSyslog,
       Severity::kCrit},
      {"kernel", "Out of Memory: Killed process {n} (mpiexec)",
       LogPath::kRsSyslog, Severity::kAlert},
      {"syslogd", "system halt requested", LogPath::kRsSyslog,
       Severity::kEmerg},
      // RAS event-router path (no severity analog).
      {"ec_boot_info", "node boot stage {n} complete",
       LogPath::kRsEventRouter, Severity::kNone},
      {"ec_link_status", "seastar link {n} status ok",
       LogPath::kRsEventRouter, Severity::kNone},
      {"ec_power_status", "cabinet power nominal", LogPath::kRsEventRouter,
       Severity::kNone},
      {"ec_console_log", "console output captured to buffer {n}",
       LogPath::kRsEventRouter, Severity::kNone},
  };
  return t;
}

// -------------------------------------------------------------------
// Calibrated strata: paper totals minus tagged alert counts.
// -------------------------------------------------------------------

const std::vector<ChatterClass>& bgl_classes() {
  // Table 5 message counts minus alert counts (348,398 FATAL alerts,
  // 62 FAILURE alerts).
  static const std::vector<ChatterClass> c = {
      {Severity::kInfo, LogPath::kBglRas, 3735823},
      {Severity::kError, LogPath::kBglRas, 112355},
      {Severity::kWarning, LogPath::kBglRas, 23357},
      {Severity::kSevere, LogPath::kBglRas, 19213},
      {Severity::kFatal, LogPath::kBglRas, 507103},
      {Severity::kFailure, LogPath::kBglRas, 1652},
  };
  return c;
}

const std::vector<ChatterClass>& redstorm_classes() {
  // Table 6 minus our per-category severity attribution (DESIGN.md),
  // plus the severity-less event-router stratum:
  // 219,096,168 total - 25,510,188 syslog - 94,970 router alerts.
  static const std::vector<ChatterClass> c = {
      {Severity::kDebug, LogPath::kRsSyslog, 291764},
      {Severity::kInfo, LogPath::kRsSyslog, 15714246},
      {Severity::kNotice, LogPath::kRsSyslog, 3759620},
      {Severity::kWarning, LogPath::kRsSyslog, 2154674},
      {Severity::kError, LogPath::kRsSyslog, 2015814},
      {Severity::kCrit, LogPath::kRsSyslog, 2693},
      {Severity::kAlert, LogPath::kRsSyslog, 600},
      {Severity::kEmerg, LogPath::kRsSyslog, 3},
      {Severity::kNone, LogPath::kRsEventRouter, 193491010},
  };
  return c;
}

}  // namespace

const std::vector<ChatterTemplate>& chatter_templates(parse::SystemId system) {
  switch (system) {
    case SystemId::kBlueGeneL:
      return bgl_templates();
    case SystemId::kRedStorm:
      return redstorm_templates();
    default:
      return syslog_templates();
  }
}

const std::vector<ChatterClass>& chatter_classes(parse::SystemId system) {
  // Non-alert totals: Table 2 messages minus Table 4 alert sums.
  static const std::vector<ChatterClass> tbird = {
      {Severity::kNone, LogPath::kSyslog, 207963953}};
  static const std::vector<ChatterClass> spirit = {
      {Severity::kNone, LogPath::kSyslog, 99482406}};
  static const std::vector<ChatterClass> liberty = {
      {Severity::kNone, LogPath::kSyslog, 265566779}};
  switch (system) {
    case SystemId::kBlueGeneL:
      return bgl_classes();
    case SystemId::kRedStorm:
      return redstorm_classes();
    case SystemId::kThunderbird:
      return tbird;
    case SystemId::kSpirit:
      return spirit;
    case SystemId::kLiberty:
      return liberty;
  }
  throw std::invalid_argument("chatter_classes: bad SystemId");
}

std::uint64_t chatter_total(parse::SystemId system) {
  std::uint64_t t = 0;
  for (const auto& c : chatter_classes(system)) t += c.paper_count;
  return t;
}

const std::vector<std::pair<double, double>>& rate_profile(
    parse::SystemId system) {
  // Liberty: "the first major shift (end of first quarter, 2005)
  // corresponded to an upgrade in the operating system"; the causes of
  // the other shifts "are not well understood" (Figure 2(a)).
  static const std::vector<std::pair<double, double>> liberty = {
      {0.00, 0.55}, {0.35, 1.00}, {0.65, 1.45}, {0.82, 0.90}};
  // Spirit's volume follows its disk storms; chatter itself drifts.
  static const std::vector<std::pair<double, double>> spirit = {
      {0.00, 0.90}, {0.50, 1.10}};
  static const std::vector<std::pair<double, double>> flat = {{0.00, 1.00}};
  switch (system) {
    case SystemId::kLiberty:
      return liberty;
    case SystemId::kSpirit:
      return spirit;
    default:
      return flat;
  }
}

std::vector<SimEvent> generate_chatter(const SystemSpec& spec,
                                       const SimOptions& opts,
                                       const SourceNamer& namer,
                                       util::Rng& rng) {
  const auto& classes = chatter_classes(spec.id);
  const auto& templates = chatter_templates(spec.id);
  const std::uint64_t paper_total = chatter_total(spec.id);
  if (paper_total == 0 || opts.chatter_events == 0) return {};

  // Per-(path, severity) template index.
  const auto templates_for = [&](const ChatterClass& cls) {
    std::vector<std::uint32_t> out;
    for (std::uint32_t i = 0; i < templates.size(); ++i) {
      if (templates[i].path == cls.path &&
          templates[i].severity == cls.severity) {
        out.push_back(i);
      }
    }
    if (out.empty()) {
      throw std::logic_error("chatter: no template for a stratum");
    }
    return out;
  };

  // Deterministic largest-remainder allocation of generated events to
  // strata, so weighted severity marginals are exact.
  const std::uint64_t n = opts.chatter_events;
  std::vector<std::uint64_t> gen(classes.size(), 0);
  {
    std::vector<std::pair<double, std::size_t>> rem(classes.size());
    std::uint64_t assigned = 0;
    for (std::size_t i = 0; i < classes.size(); ++i) {
      const double exact = static_cast<double>(n) *
                           static_cast<double>(classes[i].paper_count) /
                           static_cast<double>(paper_total);
      gen[i] = static_cast<std::uint64_t>(exact);
      if (gen[i] == 0 && classes[i].paper_count > 0) gen[i] = 1;
      rem[i] = {exact - static_cast<double>(gen[i]), i};
      assigned += gen[i];
    }
    std::sort(rem.begin(), rem.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    for (std::size_t k = 0; assigned < n && k < rem.size(); ++k) {
      ++gen[rem[k].second];
      ++assigned;
    }
  }

  // Rate-profile segments -> cumulative weights for time sampling.
  const auto& profile = rate_profile(spec.id);
  std::vector<double> seg_weight(profile.size());
  std::vector<double> seg_begin(profile.size());
  std::vector<double> seg_len(profile.size());
  for (std::size_t i = 0; i < profile.size(); ++i) {
    seg_begin[i] = profile[i].first;
    const double end = i + 1 < profile.size() ? profile[i + 1].first : 1.0;
    seg_len[i] = end - profile[i].first;
    seg_weight[i] = seg_len[i] * profile[i].second;
  }

  const util::TimeUs lo = spec.start_time();
  const auto window = static_cast<double>(spec.end_time() - lo);
  const util::Zipf admin_zipf(namer.n_admin(), 1.2);
  const std::uint32_t n_compute = namer.size() - namer.n_admin();
  const util::Zipf compute_zipf(n_compute, 1.05);

  std::vector<SimEvent> out;
  out.reserve(n);
  for (std::size_t ci = 0; ci < classes.size(); ++ci) {
    const ChatterClass& cls = classes[ci];
    if (gen[ci] == 0) continue;
    const double weight = static_cast<double>(cls.paper_count) /
                          static_cast<double>(gen[ci]);
    const auto kinds = templates_for(cls);
    for (std::uint64_t k = 0; k < gen[ci]; ++k) {
      SimEvent e;
      const std::size_t seg = rng.weighted_index(seg_weight);
      const double f = seg_begin[seg] + rng.uniform() * seg_len[seg];
      e.time = lo + static_cast<util::TimeUs>(f * window);
      // "The chatty sources tended to be the administrative nodes"
      // (Figure 2(b)): a large share of chatter comes from few nodes.
      if (rng.bernoulli(0.45)) {
        e.source = namer.first_admin() +
                   static_cast<std::uint32_t>(admin_zipf(rng));
      } else {
        e.source = static_cast<std::uint32_t>(compute_zipf(rng));
      }
      e.category = -1;
      e.severity = cls.severity;
      e.chatter_kind = kinds[rng.uniform_u64(kinds.size())];
      e.weight = weight;
      out.push_back(e);
    }
  }
  sort_events(out);
  return out;
}

}  // namespace wss::sim
