// Per-category generation plans: where the paper's Table 4 rows meet
// the incident planner.
//
// build_plans() derives a CategoryGenPlan for every category of a
// system from the tag catalog's (raw, filtered) counts, then applies
// the special structure the paper describes case by case: the
// Thunderbird VAPI storm node, Spirit's sn373 disk storms with the
// shadowed sn325 failure, the Liberty PBS bug's time concentration,
// GM_PAR -> GM_LANAI cascades, the SMP-clock-bug job bursts, the three
// coincident ECC pairs, and the leaky chains that make BG/L's filtered
// interarrivals bimodal.
#pragma once

#include <vector>

#include "sim/process.hpp"
#include "sim/sources.hpp"
#include "sim/spec.hpp"

namespace wss::sim {

/// Global knobs of a simulation run.
struct SimOptions {
  std::uint64_t seed = 42;
  /// Max physical events per alert category; categories above this are
  /// weighted (DESIGN.md "Scaling: weights, not truncation").
  std::uint64_t category_cap = 100000;
  /// Approximate physical chatter (non-alert) events per system.
  std::uint64_t chatter_events = 200000;
  /// Inject message corruption at render time (Section 3.2.1).
  bool inject_corruption = true;
  /// The filtering threshold the burst structure is built around.
  util::TimeUs threshold_us = 5 * util::kUsPerSec;
};

/// Builds the generation plan for every category of `system`, in
/// category-id order (i.e. aligned with tag::categories_of(system)).
std::vector<CategoryGenPlan> build_plans(parse::SystemId system,
                                         const SimOptions& opts,
                                         const SourceNamer& namer);

}  // namespace wss::sim
