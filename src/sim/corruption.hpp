// Message corruption injection (Section 3.2.1, "Corruption").
//
// "Even on supercomputers with highly engineered RAS systems ... log
// entries can be corrupted. We saw messages truncated, partially
// overwritten, and incorrectly timestamped." Plus the misattributed
// sources of Figure 2(b): "the cluster at the bottom is from the set
// of messages whose source field was corrupted, thwarting
// attribution." The injector reproduces all four modes on rendered
// lines, deterministically per (seed, event index) so rendering is a
// pure function.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "tag/rulesets.hpp"

namespace wss::sim {

/// Per-mode corruption probabilities.
struct CorruptionConfig {
  double p_truncate = 0.002;       ///< cut the line short
  double p_overwrite = 0.0005;     ///< splice another message's tail in
  double p_bad_timestamp = 0.0005; ///< garble the timestamp field
  double p_bad_source = 0.002;     ///< garble the source/host field
  /// Leave alert lines intact by default so calibrated counts hold;
  /// the corruption ablation bench flips this.
  bool alerts_exempt = true;

  /// Everything off.
  static CorruptionConfig none() {
    return CorruptionConfig{0.0, 0.0, 0.0, 0.0, true};
  }
};

/// Stateless (per-call) corruption of a rendered log line.
class CorruptionInjector {
 public:
  CorruptionInjector(CorruptionConfig cfg, std::uint64_t seed)
      : cfg_(cfg), seed_(seed) {}

  /// Possibly corrupts `line`. `event_index` makes the decision
  /// deterministic; `path` locates the timestamp/source fields;
  /// `is_alert` honours alerts_exempt.
  std::string apply(std::string line, std::uint64_t event_index,
                    tag::LogPath path, bool is_alert) const;

  const CorruptionConfig& config() const { return cfg_; }

 private:
  CorruptionConfig cfg_;
  std::uint64_t seed_;
};

}  // namespace wss::sim
