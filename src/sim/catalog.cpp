#include "sim/catalog.hpp"

#include <algorithm>
#include <string_view>

#include "tag/rulesets.hpp"

namespace wss::sim {

namespace {

using parse::SystemId;

/// True if this category should be generated as independent events
/// (filtering barely compresses it).
bool poisson_like(const tag::CategoryInfo& c) {
  return c.filtered_count * 5 >= c.raw_count * 4;  // ratio >= 0.8
}

/// Index of a named category within a system's category list.
int index_of(const std::vector<const tag::CategoryInfo*>& cats,
             std::string_view name) {
  for (std::size_t i = 0; i < cats.size(); ++i) {
    if (cats[i]->name == name) return static_cast<int>(i);
  }
  return -1;
}

/// The DDN RAS hosts (Red Storm disk-subsystem log sources).
std::vector<std::uint32_t> ddn_pool(const SourceNamer& namer) {
  std::vector<std::uint32_t> pool;
  for (std::uint32_t r = 4; r < namer.n_admin(); ++r) {
    pool.push_back(namer.first_admin() + r);
  }
  return pool;
}

}  // namespace

std::vector<CategoryGenPlan> build_plans(parse::SystemId system,
                                         const SimOptions& opts,
                                         const SourceNamer& namer) {
  const auto cats = tag::categories_of(system);
  std::vector<CategoryGenPlan> plans;
  plans.reserve(cats.size());

  for (std::size_t i = 0; i < cats.size(); ++i) {
    const tag::CategoryInfo& c = *cats[i];
    CategoryGenPlan p;
    p.info = &c;
    p.category_id = static_cast<std::uint16_t>(i);
    p.gen_events = std::min<std::uint64_t>(
        std::max<std::uint64_t>(c.raw_count, 1), opts.category_cap);
    p.weight = static_cast<double>(c.raw_count) /
               static_cast<double>(p.gen_events);
    p.incidents = std::max<std::uint64_t>(c.filtered_count, 1);

    if (poisson_like(c)) {
      p.mode = SourceMode::kPoisson;
      p.engineered_pairs = c.raw_count > c.filtered_count
                               ? c.raw_count - c.filtered_count
                               : 0;
      // Weighted categories cannot engineer exact pairs; cap sanely.
      p.engineered_pairs = std::min(p.engineered_pairs, p.gen_events / 2);
    } else {
      p.mode = SourceMode::kSingleNodeBursts;
    }

    const std::string_view name = c.name;
    switch (system) {
      case SystemId::kBlueGeneL:
        // Leaky chains give BG/L its bimodal filtered interarrivals
        // (Figure 6(a)): part of the redundancy survives the filter.
        if (name == "KERNRTSP") p.leak_frac = 0.40;
        if (name == "APPSEV") p.leak_frac = 0.25;
        if (name == "KERNMNTF") p.leak_frac = 0.25;
        if (name == "KERNTERM") p.leak_frac = 0.20;
        break;

      case SystemId::kThunderbird:
        if (name == "VAPI") {
          // "A single node was responsible for 643,925 of them, of
          // which filtering removes all but 246." (Section 3.3.1)
          p.mode = SourceMode::kSingleNodeBursts;
          p.has_storm = true;
          p.storm_node = SourceNamer::kThunderbirdVapiNode;
          p.storm_event_frac = 643925.0 / 3229194.0;
          p.storm_incident_frac = 246.0 / 276.0;
        } else if (name == "CPU") {
          // The SMP clock bug: spatially correlated across the node
          // set of communication-heavy jobs (Section 4).
          p.mode = SourceMode::kJobBursts;
        } else if (name == "ECC") {
          // 146 raw -> 143 filtered: three coincident independent
          // failures (Figure 5's "basically independent" alerts).
          p.mode = SourceMode::kPoisson;
          p.engineered_pairs = 3;
        } else if (name == "PBS_CON") {
          p.mode = SourceMode::kMultiNodeBursts;
          p.nodes_per_burst = 2;
        }
        break;

      case SystemId::kRedStorm:
        if (c.path == tag::LogPath::kRsDdn) {
          p.source_pool = ddn_pool(namer);
        }
        if (name == "HBEAT") {
          p.mode = SourceMode::kMultiNodeBursts;
          p.nodes_per_burst = 3;
        } else if (name == "PTL_EXP") {
          p.mode = SourceMode::kMultiNodeBursts;
          p.nodes_per_burst = 2;
        }
        break;

      case SystemId::kSpirit:
        if (name == "EXT_CCISS") {
          // sn373's multi-day storms are the majority of ALL Spirit
          // messages; sn325's independent failure hides inside one.
          p.has_storm = true;
          p.storm_node = SourceNamer::kSpiritStormNode;
          p.storm_event_frac = 89632571.0 / 103818910.0;
          p.storm_incident_frac = 20.0 / 29.0;
          p.shadowed_incident = true;
          p.shadow_node = SourceNamer::kSpiritShadowedNode;
        } else if (name == "EXT_FS") {
          p.has_storm = true;
          p.storm_node = SourceNamer::kSpiritStormNode;
          p.storm_event_frac = 0.7;
          p.storm_incident_frac = 0.5;
        } else if (name == "PBS_CHK" || name == "PBS_CON") {
          p.mode = SourceMode::kMultiNodeBursts;
          p.nodes_per_burst = 2;
        } else if (name == "PBS_BFD") {
          p.mode = SourceMode::kMultiNodeBursts;
          p.nodes_per_burst = 2;
          p.cascade_from = index_of(cats, "PBS_CHK");
          p.cascade_frac = 0.5;
        } else if (name == "GM_LANAI") {
          p.cascade_from = index_of(cats, "GM_PAR");
          p.cascade_frac = 0.6;
        }
        break;

      case SystemId::kLiberty:
        if (name == "PBS_CHK") {
          // The PBS task_check bug: up to 74 reports per killed job,
          // concentrated late in the window (Section 3.3.1, Figure 4).
          p.mode = SourceMode::kMultiNodeBursts;
          p.nodes_per_burst = 2;
          p.concentrate_frac = 0.80;
          p.concentrate_begin_frac = 0.72;
          p.concentrate_len_frac = 0.20;
        } else if (name == "PBS_BFD") {
          p.mode = SourceMode::kMultiNodeBursts;
          p.nodes_per_burst = 2;
          p.concentrate_frac = 0.80;
          p.concentrate_begin_frac = 0.72;
          p.concentrate_len_frac = 0.20;
          p.cascade_from = index_of(cats, "PBS_CHK");
          p.cascade_frac = 0.7;
        } else if (name == "GM_LANAI") {
          // Figure 3: correlated with GM_PAR, but neither always
          // follows the other.
          p.cascade_from = index_of(cats, "GM_PAR");
          p.cascade_frac = 0.7;
        }
        break;
    }
    plans.push_back(std::move(p));
  }
  return plans;
}

}  // namespace wss::sim
