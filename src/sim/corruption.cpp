#include "sim/corruption.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace wss::sim {

namespace {

/// Fragments used for the "partially overwritten" mode, modelled on
/// the paper's Thunderbird examples ("...VAPI_EAGSys/mosal_iobuf.c
/// [126]: dump iobuf at 0000010188ee7880:").
constexpr std::string_view kSpliceFragments[] = {
    "Sys/mosal_iobuf.c [126]: dump iobuf at 0000010188ee7880:",
    "ure = no",
    "_qp_destroy: qp handle",
    "0x0000000000000000 0x00000000",
};

/// Returns the [begin, end) byte range of the source/host field for a
/// given line shape.
std::pair<std::size_t, std::size_t> source_span(std::string_view line,
                                                tag::LogPath path) {
  switch (path) {
    case tag::LogPath::kSyslog:
    case tag::LogPath::kRsSyslog:
    case tag::LogPath::kRsDdn: {
      // "Mon dd HH:MM:SS host ..."
      if (line.size() <= 16) return {0, 0};
      const std::size_t b = 16;
      const std::size_t e = line.find(' ', b);
      return {b, e == std::string_view::npos ? line.size() : e};
    }
    case tag::LogPath::kBglRas: {
      // "<epoch> <date> <loc> ..." -- third field.
      std::size_t pos = 0;
      for (int f = 0; f < 2; ++f) {
        pos = line.find(' ', pos);
        if (pos == std::string_view::npos) return {0, 0};
        ++pos;
      }
      const std::size_t e = line.find(' ', pos);
      return {pos, e == std::string_view::npos ? line.size() : e};
    }
    case tag::LogPath::kRsEventRouter: {
      // "... src:::<node> ..."
      const std::size_t tag_pos = line.find("src:::");
      if (tag_pos == std::string_view::npos) return {0, 0};
      const std::size_t b = tag_pos + 6;
      const std::size_t e = line.find(' ', b);
      return {b, e == std::string_view::npos ? line.size() : e};
    }
  }
  return {0, 0};
}

std::size_t timestamp_len(tag::LogPath path) {
  switch (path) {
    case tag::LogPath::kBglRas:
      return 0;  // handled via the epoch field garble below
    case tag::LogPath::kRsEventRouter:
      return 19;  // "YYYY-MM-DD HH:MM:SS"
    default:
      return 15;  // "Mon dd HH:MM:SS"
  }
}

}  // namespace

std::string CorruptionInjector::apply(std::string line,
                                      std::uint64_t event_index,
                                      tag::LogPath path, bool is_alert) const {
  if (is_alert && cfg_.alerts_exempt) return line;
  if (line.empty()) return line;
  util::Rng rng(seed_ ^ (event_index * 0x9e3779b97f4a7c15ull) ^
                0x7f4a7c15ull);

  if (rng.bernoulli(cfg_.p_bad_source)) {
    const auto [b, e] = source_span(line, path);
    for (std::size_t i = b; i < e && i < line.size(); ++i) {
      // Binary garbage rendered as it lands in real logs.
      static constexpr char kJunk[] = "#@~^\x01\x7f?";
      line[i] = kJunk[rng.uniform_u64(sizeof(kJunk) - 1)];
    }
  }
  if (rng.bernoulli(cfg_.p_bad_timestamp)) {
    const std::size_t len = std::min(timestamp_len(path), line.size());
    if (len > 0) {
      const auto i = static_cast<std::size_t>(rng.uniform_u64(len));
      line[i] = static_cast<char>('A' + rng.uniform_u64(26));
    } else if (line.size() > 4) {
      line[rng.uniform_u64(4)] = 'X';  // BG/L epoch field
    }
  }
  if (rng.bernoulli(cfg_.p_truncate)) {
    // Real truncations clip the tail; keep >= 60% so attribution
    // usually still works (matching the paper's examples).
    const auto keep = static_cast<std::size_t>(
        static_cast<double>(line.size()) * rng.uniform(0.6, 0.95));
    line.resize(std::max<std::size_t>(keep, 1));
  }
  if (rng.bernoulli(cfg_.p_overwrite)) {
    const auto keep = static_cast<std::size_t>(
        static_cast<double>(line.size()) * rng.uniform(0.5, 0.9));
    line.resize(std::max<std::size_t>(keep, 1));
    line.append(kSpliceFragments[rng.uniform_u64(
        sizeof(kSpliceFragments) / sizeof(kSpliceFragments[0]))]);
  }
  return line;
}

}  // namespace wss::sim
