// Rendering SimEvents into each system's native log-line format.
//
// The formats follow Section 3.1 and the shapes visible in Table 4 /
// the public corpora:
//   syslog:        "Jun  3 15:42:50 sn373 kernel: <body>"
//   BG/L RAS:      "<epoch> <Y.M.D> <loc> <Y-M-D-H.M.S.micro> <loc>
//                   RAS <FACILITY> <SEVERITY> <body>"
//   RS syslog:     "Mar 19 10:00:00 login1 kern.crit kernel: <body>"
//   RS DDN:        "Mar 19 10:00:00 ddn1 local0.crit <body>"
//   RS evt router: "2006-03-19 10:00:00 ec_heartbeat_stop src:::<node>
//                   svc:::<node> <body>"
//
// Rendering is a pure function of (event, event_index): placeholder
// expansion and corruption decisions are seeded deterministically, so
// a line can be re-rendered at any time without storing it.
#pragma once

#include <string>
#include <vector>

#include "sim/chatter.hpp"
#include "sim/corruption.hpp"
#include "sim/process.hpp"
#include "sim/sources.hpp"
#include "sim/spec.hpp"
#include "tag/rulesets.hpp"

namespace wss::sim {

/// Renders events of one system.
class Renderer {
 public:
  /// `corruption` may be CorruptionConfig::none().
  Renderer(const SystemSpec& spec, const SourceNamer& namer,
           CorruptionConfig corruption, std::uint64_t seed);

  /// Renders one event as a complete log line (no trailing newline).
  std::string render(const SimEvent& e, std::uint64_t event_index) const;

  /// Renders without corruption (ground-truth view, used by tests).
  std::string render_clean(const SimEvent& e, std::uint64_t event_index) const;

  /// The log path an event travels (category's path, or the chatter
  /// template's).
  tag::LogPath path_of(const SimEvent& e) const;

 private:
  std::string expand(std::string_view tmpl, const SimEvent& e,
                     util::Rng& rng) const;
  std::string base_line(const SimEvent& e, std::uint64_t event_index) const;

  const SystemSpec* spec_;
  const SourceNamer* namer_;
  std::vector<const tag::CategoryInfo*> categories_;
  CorruptionInjector injector_;
  std::uint64_t seed_;
};

}  // namespace wss::sim
