// Log-collection transport models (Section 3.1).
//
// Thunderbird/Spirit/Liberty forward syslog over UDP: "As is standard
// syslog practice, the UDP protocol is used for transmission,
// resulting in some messages being lost during network contention."
// Red Storm's RAS network uses reliable TCP; BG/L compute chips are
// polled over JTAG roughly every millisecond. The default calibration
// targets are post-collection counts, so the main pipeline runs
// loss-free; these models feed the transport/corruption ablation
// bench.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "sim/process.hpp"
#include "util/rng.hpp"

namespace wss::sim {

/// UDP loss model: a base loss probability plus a contention term
/// proportional to the instantaneous message rate.
struct UdpConfig {
  double base_loss = 0.001;
  /// Additional drop probability per 1000 msgs observed in the
  /// trailing rate window (caps at 0.9 total).
  double contention_loss_per_k = 0.05;
  util::TimeUs rate_window_us = util::kUsPerSec;
};

/// Delivery statistics.
struct TransportStats {
  std::uint64_t offered = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;

  double loss_rate() const {
    return offered == 0 ? 0.0
                        : static_cast<double>(dropped) /
                              static_cast<double>(offered);
  }
};

/// Incremental form of the UDP loss model: one drop decision per
/// offered message, in time order. apply_udp_loss() is this class run
/// over a vector; `wss generate --sink udp://...` runs it client-side,
/// one datagram at a time, so the generator's delivered/dropped
/// accounting is the exact same model the transport ablation uses.
class UdpLossModel {
 public:
  explicit UdpLossModel(const UdpConfig& cfg) : cfg_(cfg) {}

  /// Decides the fate of a message offered at time `t` (times must be
  /// non-decreasing). Returns true when the message is DROPPED; always
  /// updates the offered/delivered/dropped stats.
  bool offer_drops(util::TimeUs t, util::Rng& rng);

  const TransportStats& stats() const { return stats_; }

 private:
  UdpConfig cfg_;
  TransportStats stats_;
  std::deque<util::TimeUs> window_;  ///< offered times inside rate_window_us
};

/// Applies UDP loss to a time-sorted stream; returns the survivors.
/// Loss is bursty by construction: the contention term makes drops
/// cluster exactly where the log is densest (alert storms).
std::vector<SimEvent> apply_udp_loss(const std::vector<SimEvent>& sorted,
                                     const UdpConfig& cfg, util::Rng& rng,
                                     TransportStats* stats = nullptr);

/// Reliable TCP path: identity delivery (kept for symmetry and the
/// ablation bench's comparison table).
std::vector<SimEvent> apply_tcp(const std::vector<SimEvent>& sorted,
                                TransportStats* stats = nullptr);

/// JTAG-mailbox polling (BG/L): events are *collected* at the next
/// poll tick, which batches arrivals; their logged timestamps remain
/// the event times (the RAS database stores event time at microsecond
/// granularity). Returns the collection order, i.e. events grouped by
/// poll tick; within a tick, original order is preserved.
std::vector<SimEvent> apply_jtag_polling(const std::vector<SimEvent>& sorted,
                                         util::TimeUs poll_interval_us,
                                         TransportStats* stats = nullptr);

}  // namespace wss::sim
