#include "sim/generator.hpp"

#include <algorithm>

#include "sim/incident.hpp"

namespace wss::sim {

Simulator::Simulator(parse::SystemId system, SimOptions opts)
    : spec_(&system_spec(system)),
      opts_(opts),
      namer_(system, spec_->n_sources) {
  util::Rng rng(opts_.seed ^ (static_cast<std::uint64_t>(system) << 32));

  // Workload context (used by kJobBursts categories and examples).
  util::Rng jobs_rng = rng.fork();
  jobs_ = generate_jobs(*spec_, jobs_rng,
                        /*count=*/200 + 20 * static_cast<std::size_t>(
                                            spec_->days));

  util::Rng op_rng = rng.fork();
  op_context_ = std::make_unique<OpContextTimeline>(
      OpContextTimeline::generate(*spec_, op_rng));

  // Per-category alert generation; cascade sources first.
  auto plans = build_plans(system, opts_, namer_);
  IncidentContext ctx;
  ctx.spec = spec_;
  ctx.jobs = &jobs_;
  ctx.threshold_us = opts_.threshold_us;

  std::vector<std::vector<util::TimeUs>> starts(plans.size());
  std::vector<bool> done(plans.size(), false);
  std::vector<std::vector<SimEvent>> streams;

  const auto generate_one = [&](std::size_t i) {
    util::Rng cat_rng(opts_.seed ^ 0x5eed ^
                      (static_cast<std::uint64_t>(system) << 40) ^
                      (static_cast<std::uint64_t>(i) << 8));
    const std::vector<util::TimeUs>* anchors = nullptr;
    if (plans[i].cascade_from >= 0) {
      anchors = &starts[static_cast<std::size_t>(plans[i].cascade_from)];
    }
    streams.push_back(
        generate_category(plans[i], ctx, cat_rng, anchors, &starts[i]));
    done[i] = true;
  };

  // First pass: categories no one cascades from OR that others depend
  // on -- simply generate anything without an unmet dependency, twice
  // (the cascade graph is one level deep).
  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t i = 0; i < plans.size(); ++i) {
      if (done[i]) continue;
      const int dep = plans[i].cascade_from;
      if (dep >= 0 && !done[static_cast<std::size_t>(dep)]) continue;
      generate_one(i);
    }
  }
  // Any remaining cycle (should not happen): generate without anchors.
  for (std::size_t i = 0; i < plans.size(); ++i) {
    if (!done[i]) {
      plans[i].cascade_from = -1;
      generate_one(i);
    }
  }
  total_failures_ = ctx.next_failure_id - 1;

  // Chatter.
  util::Rng chatter_rng(opts_.seed ^ 0xc4a77e12ull ^
                        (static_cast<std::uint64_t>(system) << 16));
  streams.push_back(generate_chatter(*spec_, opts_, namer_, chatter_rng));

  events_ = merge_streams(std::move(streams));

  renderer_ = std::make_unique<Renderer>(
      *spec_, namer_,
      opts_.inject_corruption ? CorruptionConfig{} : CorruptionConfig::none(),
      opts_.seed);
}

std::string Simulator::line(std::size_t i) const {
  return renderer_->render(events_.at(i), i);
}

void Simulator::for_each_line(
    const std::function<void(std::string_view)>& fn) const {
  for_each_line_in(0, events_.size(), fn);
}

std::vector<Simulator::EventRange> Simulator::event_shards(
    std::size_t chunk_events) const {
  const std::size_t chunk = std::max<std::size_t>(chunk_events, 1);
  std::vector<EventRange> shards;
  shards.reserve(events_.size() / chunk + 1);
  for (std::size_t begin = 0; begin < events_.size(); begin += chunk) {
    shards.push_back({begin, std::min(begin + chunk, events_.size())});
  }
  return shards;
}

void Simulator::for_each_line_in(
    std::size_t begin, std::size_t end,
    const std::function<void(std::string_view)>& fn) const {
  end = std::min(end, events_.size());
  for (std::size_t i = begin; i < end; ++i) {
    fn(renderer_->render(events_[i], i));
  }
}

std::vector<filter::Alert> Simulator::ground_truth_alerts() const {
  const auto cats = tag::categories_of(spec_->id);
  std::vector<filter::Alert> out;
  for (const SimEvent& e : events_) {
    if (!e.is_alert()) continue;
    filter::Alert a;
    a.time = e.time;
    a.source = e.source;
    a.category = static_cast<std::uint16_t>(e.category);
    a.type = cats.at(static_cast<std::size_t>(e.category))->type;
    a.failure_id = e.failure_id;
    a.weight = e.weight;
    out.push_back(a);
  }
  return out;  // events_ is sorted, so the alert stream is too
}

std::vector<double> Simulator::weighted_alert_counts() const {
  const auto cats = tag::categories_of(spec_->id);
  std::vector<double> out(cats.size(), 0.0);
  for (const SimEvent& e : events_) {
    if (e.is_alert()) out[static_cast<std::size_t>(e.category)] += e.weight;
  }
  return out;
}

double Simulator::weighted_message_total() const {
  double t = 0.0;
  for (const SimEvent& e : events_) t += e.weight;
  return t;
}

}  // namespace wss::sim
