#include "sim/process.hpp"

#include <algorithm>
#include <queue>

namespace wss::sim {

void sort_events(std::vector<SimEvent>& events) {
  std::sort(events.begin(), events.end(),
            [](const SimEvent& a, const SimEvent& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.source < b.source;
            });
}

std::vector<SimEvent> merge_streams(
    std::vector<std::vector<SimEvent>> streams) {
  std::size_t total = 0;
  for (const auto& s : streams) total += s.size();
  std::vector<SimEvent> out;
  out.reserve(total);

  // (time, stream index, element index) min-heap.
  using Head = std::tuple<util::TimeUs, std::size_t, std::size_t>;
  std::priority_queue<Head, std::vector<Head>, std::greater<>> heap;
  for (std::size_t i = 0; i < streams.size(); ++i) {
    if (!streams[i].empty()) heap.emplace(streams[i][0].time, i, 0);
  }
  while (!heap.empty()) {
    const auto [t, si, ei] = heap.top();
    heap.pop();
    out.push_back(streams[si][ei]);
    if (ei + 1 < streams[si].size()) {
      heap.emplace(streams[si][ei + 1].time, si, ei + 1);
    }
  }
  return out;
}

}  // namespace wss::sim
