#include "compress/codec.hpp"

#include <cstdint>
#include <stdexcept>

#include "compress/huffman.hpp"
#include "compress/lzss.hpp"

namespace wss::compress {

namespace {
constexpr std::string_view kMagic = "WSC1";
}  // namespace

std::string compress(std::string_view input) {
  std::string out(kMagic);
  const std::uint64_t n = input.size();
  for (int b = 0; b < 8; ++b) {
    out.push_back(static_cast<char>((n >> (8 * b)) & 0xff));
  }
  out.append(huffman_encode(lzss_compress(input)));
  return out;
}

std::string decompress(std::string_view compressed) {
  if (compressed.size() < kMagic.size() + 8 ||
      compressed.substr(0, kMagic.size()) != kMagic) {
    throw std::runtime_error("codec: bad magic");
  }
  std::uint64_t n = 0;
  for (int b = 0; b < 8; ++b) {
    n |= static_cast<std::uint64_t>(static_cast<unsigned char>(
             compressed[kMagic.size() + static_cast<std::size_t>(b)]))
         << (8 * b);
  }
  std::string out =
      lzss_decompress(huffman_decode(compressed.substr(kMagic.size() + 8)));
  if (out.size() != n) {
    throw std::runtime_error("codec: size mismatch after decompression");
  }
  return out;
}

double compression_fraction(std::string_view input) {
  if (input.empty()) return 1.0;
  return static_cast<double>(compress(input).size()) /
         static_cast<double>(input.size());
}

}  // namespace wss::compress
