// The combined wss codec: LZSS dictionary stage + Huffman entropy
// stage, with a small container header. This is the compressor used
// to regenerate Table 2's "Compressed" column.
#pragma once

#include <string>
#include <string_view>

namespace wss::compress {

/// Container format: "WSC1" magic, u64 LE raw size, then
/// huffman_encode(lzss_compress(input)).
std::string compress(std::string_view input);

/// Inverse of compress(). Throws std::runtime_error on malformed data.
std::string decompress(std::string_view compressed);

/// Convenience: compressed_size / raw_size for `input` (1.0 for empty
/// input). The paper's Table 2 reports the inverse convention
/// (compressed GB next to raw GB); report_ratio keeps that shape.
double compression_fraction(std::string_view input);

}  // namespace wss::compress
