#include "compress/huffman.hpp"

#include <algorithm>
#include <cstdint>
#include <queue>
#include <stdexcept>
#include <vector>

namespace wss::compress {

namespace {

constexpr unsigned char kFormatRaw = 0;
constexpr unsigned char kFormatHuffman = 1;

struct TreeNode {
  std::uint64_t freq = 0;
  int symbol = -1;  // -1 for internal
  int left = -1;
  int right = -1;
};

/// Computes code lengths for symbols with nonzero freq; returns true
/// if all lengths fit in kMaxCodeLen.
bool compute_lengths(const std::vector<std::uint64_t>& freq,
                     std::vector<int>& len) {
  len.assign(256, 0);
  std::vector<TreeNode> nodes;
  using Entry = std::pair<std::uint64_t, int>;  // (freq, node index)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
  for (int s = 0; s < 256; ++s) {
    if (freq[static_cast<std::size_t>(s)] > 0) {
      nodes.push_back(TreeNode{freq[static_cast<std::size_t>(s)], s, -1, -1});
      pq.emplace(nodes.back().freq, static_cast<int>(nodes.size() - 1));
    }
  }
  if (nodes.empty()) return true;
  if (nodes.size() == 1) {
    len[static_cast<std::size_t>(nodes[0].symbol)] = 1;
    return true;
  }
  while (pq.size() > 1) {
    const auto [fa, a] = pq.top();
    pq.pop();
    const auto [fb, b] = pq.top();
    pq.pop();
    nodes.push_back(TreeNode{fa + fb, -1, a, b});
    pq.emplace(fa + fb, static_cast<int>(nodes.size() - 1));
  }
  // Depth-first depth assignment.
  const int root = pq.top().second;
  bool ok = true;
  std::vector<std::pair<int, int>> stack = {{root, 0}};
  while (!stack.empty()) {
    const auto [idx, depth] = stack.back();
    stack.pop_back();
    const TreeNode& node = nodes[static_cast<std::size_t>(idx)];
    if (node.symbol >= 0) {
      len[static_cast<std::size_t>(node.symbol)] = std::max(depth, 1);
      if (depth > kMaxCodeLen) ok = false;
    } else {
      stack.emplace_back(node.left, depth + 1);
      stack.emplace_back(node.right, depth + 1);
    }
  }
  return ok;
}

/// Canonical codes from lengths (shorter codes first, then by symbol).
void canonical_codes(const std::vector<int>& len,
                     std::vector<std::uint32_t>& code) {
  code.assign(256, 0);
  std::vector<int> order;
  for (int s = 0; s < 256; ++s) {
    if (len[static_cast<std::size_t>(s)] > 0) order.push_back(s);
  }
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const int la = len[static_cast<std::size_t>(a)];
    const int lb = len[static_cast<std::size_t>(b)];
    return la != lb ? la < lb : a < b;
  });
  std::uint32_t next = 0;
  int prev_len = 0;
  for (const int s : order) {
    const int l = len[static_cast<std::size_t>(s)];
    next <<= (l - prev_len);
    code[static_cast<std::size_t>(s)] = next;
    ++next;
    prev_len = l;
  }
}

class BitWriter {
 public:
  explicit BitWriter(std::string& out) : out_(out) {}

  void write(std::uint32_t bits, int n) {
    for (int i = n - 1; i >= 0; --i) {
      acc_ = static_cast<unsigned char>((acc_ << 1) | ((bits >> i) & 1));
      if (++count_ == 8) {
        out_.push_back(static_cast<char>(acc_));
        acc_ = 0;
        count_ = 0;
      }
    }
  }

  void flush() {
    if (count_ > 0) {
      acc_ = static_cast<unsigned char>(acc_ << (8 - count_));
      out_.push_back(static_cast<char>(acc_));
      acc_ = 0;
      count_ = 0;
    }
  }

 private:
  std::string& out_;
  unsigned char acc_ = 0;
  int count_ = 0;
};

class BitReader {
 public:
  explicit BitReader(std::string_view data) : data_(data) {}

  int read_bit() {
    if (pos_ >= data_.size()) return -1;
    const int bit =
        (static_cast<unsigned char>(data_[pos_]) >> (7 - count_)) & 1;
    if (++count_ == 8) {
      count_ = 0;
      ++pos_;
    }
    return bit;
  }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
  int count_ = 0;
};

}  // namespace

std::string huffman_encode(std::string_view input) {
  std::vector<std::uint64_t> freq(256, 0);
  for (const char c : input) ++freq[static_cast<unsigned char>(c)];

  std::vector<int> len;
  // Length-limit by halving frequencies until the tree fits.
  std::vector<std::uint64_t> f = freq;
  while (!compute_lengths(f, len)) {
    for (auto& x : f) {
      if (x > 0) x = x / 2 + 1;
    }
  }

  std::vector<std::uint32_t> code;
  canonical_codes(len, code);

  std::string out;
  out.push_back(static_cast<char>(kFormatHuffman));
  for (int s = 0; s < 256; ++s) {
    out.push_back(static_cast<char>(len[static_cast<std::size_t>(s)]));
  }
  const std::uint64_t n = input.size();
  for (int b = 0; b < 8; ++b) {
    out.push_back(static_cast<char>((n >> (8 * b)) & 0xff));
  }
  BitWriter bw(out);
  for (const char c : input) {
    const auto s = static_cast<unsigned char>(c);
    bw.write(code[s], len[s]);
  }
  bw.flush();

  if (out.size() >= input.size() + 1) {
    std::string raw;
    raw.reserve(input.size() + 1);
    raw.push_back(static_cast<char>(kFormatRaw));
    raw.append(input);
    return raw;
  }
  return out;
}

std::string huffman_decode(std::string_view encoded) {
  if (encoded.empty()) throw std::runtime_error("huffman: empty input");
  const auto fmt = static_cast<unsigned char>(encoded[0]);
  if (fmt == kFormatRaw) return std::string(encoded.substr(1));
  if (fmt != kFormatHuffman) throw std::runtime_error("huffman: bad marker");
  if (encoded.size() < 1 + 256 + 8) {
    throw std::runtime_error("huffman: truncated header");
  }

  std::vector<int> len(256);
  for (int s = 0; s < 256; ++s) {
    len[static_cast<std::size_t>(s)] =
        static_cast<unsigned char>(encoded[1 + static_cast<std::size_t>(s)]);
    if (len[static_cast<std::size_t>(s)] > kMaxCodeLen) {
      throw std::runtime_error("huffman: code length out of range");
    }
  }
  std::uint64_t n = 0;
  for (int b = 0; b < 8; ++b) {
    n |= static_cast<std::uint64_t>(
             static_cast<unsigned char>(encoded[257 + static_cast<std::size_t>(b)]))
         << (8 * b);
  }

  // Canonical decoding tables: for each length, the first code value
  // and the index of its first symbol in the sorted symbol list.
  std::vector<int> order;
  for (int s = 0; s < 256; ++s) {
    if (len[static_cast<std::size_t>(s)] > 0) order.push_back(s);
  }
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const int la = len[static_cast<std::size_t>(a)];
    const int lb = len[static_cast<std::size_t>(b)];
    return la != lb ? la < lb : a < b;
  });
  if (order.empty() && n > 0) throw std::runtime_error("huffman: no codes");

  std::uint32_t first_code[kMaxCodeLen + 2] = {0};
  int first_index[kMaxCodeLen + 2] = {0};
  int count_per_len[kMaxCodeLen + 2] = {0};
  for (const int s : order) ++count_per_len[len[static_cast<std::size_t>(s)]];
  std::uint32_t c = 0;
  int idx = 0;
  for (int l = 1; l <= kMaxCodeLen; ++l) {
    first_code[l] = c;
    first_index[l] = idx;
    c = (c + static_cast<std::uint32_t>(count_per_len[l])) << 1;
    idx += count_per_len[l];
  }

  BitReader br(encoded.substr(265));
  std::string out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    std::uint32_t acc = 0;
    int l = 0;
    for (;;) {
      const int bit = br.read_bit();
      if (bit < 0) throw std::runtime_error("huffman: truncated bitstream");
      acc = (acc << 1) | static_cast<std::uint32_t>(bit);
      ++l;
      if (l > kMaxCodeLen) throw std::runtime_error("huffman: bad code");
      if (count_per_len[l] > 0 &&
          acc < first_code[l] + static_cast<std::uint32_t>(count_per_len[l]) &&
          acc >= first_code[l]) {
        const int sym_idx =
            first_index[l] + static_cast<int>(acc - first_code[l]);
        out.push_back(
            static_cast<char>(order[static_cast<std::size_t>(sym_idx)]));
        break;
      }
    }
  }
  return out;
}

}  // namespace wss::compress
