// Order-0 canonical Huffman coding over bytes.
//
// Second stage of the wss codec (see lzss.hpp). The encoded stream is:
//   [u8 max_code_len == 0 ? raw marker : 255 entries ...]
// Concretely:
//   byte 0: format marker (0 = raw passthrough, 1 = huffman)
//   raw:     the input bytes verbatim
//   huffman: 256 bytes of code lengths (canonical), u64 LE symbol
//            count, then the MSB-first bitstream.
// Raw passthrough is used when coding would expand the input (e.g.
// already-compressed or tiny inputs).
#pragma once

#include <string>
#include <string_view>

namespace wss::compress {

/// Maximum canonical code length; lengths are rebalanced to fit.
inline constexpr int kMaxCodeLen = 15;

/// Encodes `input`; never expands by more than the 1-byte marker plus,
/// in huffman mode, the fixed 265-byte header.
std::string huffman_encode(std::string_view input);

/// Decodes; throws std::runtime_error on malformed input.
std::string huffman_decode(std::string_view encoded);

}  // namespace wss::compress
