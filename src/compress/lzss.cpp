#include "compress/lzss.hpp"

#include <algorithm>
#include <stdexcept>

namespace wss::compress {

namespace {

constexpr std::size_t kHashBits = 15;
constexpr std::size_t kHashSize = 1u << kHashBits;
constexpr std::size_t kMaxChainLength = 64;

std::uint32_t hash4(const unsigned char* p) {
  const std::uint32_t v = static_cast<std::uint32_t>(p[0]) |
                          (static_cast<std::uint32_t>(p[1]) << 8) |
                          (static_cast<std::uint32_t>(p[2]) << 16) |
                          (static_cast<std::uint32_t>(p[3]) << 24);
  return (v * 2654435761u) >> (32 - kHashBits);
}

}  // namespace

std::string lzss_compress(std::string_view input) {
  const auto* data = reinterpret_cast<const unsigned char*>(input.data());
  const std::size_t n = input.size();

  // head[h]: most recent position with hash h; prev[i % window]: chain.
  std::vector<std::int64_t> head(kHashSize, -1);
  std::vector<std::int64_t> prev(kWindowSize, -1);

  std::string out;
  out.reserve(n / 2 + 16);

  std::size_t flag_pos = 0;  // index of the current flag byte in `out`
  int items_in_group = 8;    // forces a new flag byte on first item
  unsigned char flags = 0;

  const auto begin_item = [&](bool is_match) {
    if (items_in_group == 8) {
      flag_pos = out.size();
      out.push_back('\0');
      flags = 0;
      items_in_group = 0;
    }
    if (is_match) flags |= static_cast<unsigned char>(1u << items_in_group);
    out[flag_pos] = static_cast<char>(flags);
    ++items_in_group;
  };

  const auto insert_pos = [&](std::size_t i) {
    if (i + kMinMatch > n) return;
    const std::uint32_t h = hash4(data + i);
    prev[i % kWindowSize] = head[h];
    head[h] = static_cast<std::int64_t>(i);
  };

  std::size_t i = 0;
  while (i < n) {
    std::size_t best_len = 0;
    std::size_t best_dist = 0;
    if (i + kMinMatch <= n) {
      const std::uint32_t h = hash4(data + i);
      std::int64_t cand = head[h];
      const std::size_t limit = std::min(kMaxMatch, n - i);
      std::size_t chain = 0;
      while (cand >= 0 && chain < kMaxChainLength) {
        const auto c = static_cast<std::size_t>(cand);
        // Distances are encoded in 16 bits, so the largest usable
        // distance is kWindowSize - 1 (65536 would wrap to 0).
        if (i - c >= kWindowSize) break;
        std::size_t len = 0;
        while (len < limit && data[c + len] == data[i + len]) ++len;
        if (len > best_len) {
          best_len = len;
          best_dist = i - c;
          if (len == limit) break;
        }
        const std::int64_t next = prev[c % kWindowSize];
        if (next >= cand) break;  // chain entry overwritten; stop
        cand = next;
        ++chain;
      }
    }

    if (best_len >= kMinMatch) {
      begin_item(/*is_match=*/true);
      out.push_back(static_cast<char>(best_dist & 0xff));
      out.push_back(static_cast<char>((best_dist >> 8) & 0xff));
      out.push_back(static_cast<char>(best_len - kMinMatch));
      for (std::size_t k = 0; k < best_len; ++k) insert_pos(i + k);
      i += best_len;
    } else {
      begin_item(/*is_match=*/false);
      out.push_back(static_cast<char>(data[i]));
      insert_pos(i);
      ++i;
    }
  }
  return out;
}

std::string lzss_decompress(std::string_view tokens) {
  std::string out;
  std::size_t i = 0;
  while (i < tokens.size()) {
    const auto flags = static_cast<unsigned char>(tokens[i++]);
    for (int bit = 0; bit < 8 && i < tokens.size(); ++bit) {
      if (flags & (1u << bit)) {
        if (i + 3 > tokens.size()) {
          throw std::runtime_error("lzss: truncated match token");
        }
        const std::size_t dist =
            static_cast<unsigned char>(tokens[i]) |
            (static_cast<std::size_t>(static_cast<unsigned char>(tokens[i + 1]))
             << 8);
        const std::size_t len =
            static_cast<unsigned char>(tokens[i + 2]) + kMinMatch;
        i += 3;
        if (dist == 0 || dist > out.size()) {
          throw std::runtime_error("lzss: bad match offset");
        }
        const std::size_t start = out.size() - dist;
        for (std::size_t k = 0; k < len; ++k) {
          out.push_back(out[start + k]);  // may overlap; copy byte-wise
        }
      } else {
        out.push_back(tokens[i++]);
      }
    }
  }
  return out;
}

}  // namespace wss::compress
