// LZSS dictionary compression.
//
// Table 2 of the paper reports gzip-compressed log sizes; the striking
// feature is the spread (Thunderbird ~4.8x vs Liberty ~36.7x), which
// reflects how repetitive each system's log is. We reproduce that
// column with our own dictionary coder: LZSS with a hash-chain match
// finder over a 64 KiB window, followed by an order-0 Huffman stage
// (huffman.hpp) -- the same two ideas DEFLATE combines.
//
// Token stream format (before the Huffman stage):
//   groups of 8 items, preceded by one flag byte (LSB first);
//   flag bit 0 -> literal: 1 byte
//   flag bit 1 -> match:   2-byte little-endian offset (1-based distance),
//                          1 byte (length - kMinMatch)
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace wss::compress {

inline constexpr std::size_t kWindowSize = 1u << 16;
inline constexpr std::size_t kMinMatch = 4;
inline constexpr std::size_t kMaxMatch = 258;

/// Compresses `input` into the LZSS token stream.
std::string lzss_compress(std::string_view input);

/// Decompresses an LZSS token stream. Throws std::runtime_error on a
/// malformed stream (bad offset, truncation).
std::string lzss_decompress(std::string_view tokens);

}  // namespace wss::compress
