// Reproduces Table 2: log characteristics. Message and alert counts
// are weighted sums (calibrated to the paper); sizes/rates depend on
// our rendered line lengths, so the paper value is printed alongside;
// the compression column uses the wss LZSS+Huffman codec in place of
// gzip (the *ordering* across systems is the reproduced claim).
#include "bench_common.hpp"

#include "util/csv.hpp"
#include "util/strings.hpp"

int main() {
  using namespace wss;
  bench::header("Table 2", "log characteristics");
  core::Study study(bench::standard_options());
  std::cout << core::render_table2(study) << "\n";

  // The compressibility ordering claim: Thunderbird compresses worst.
  double tbird_fraction = 0.0;
  double best_other = 1.0;
  bench::begin_csv("table2");
  util::CsvWriter csv(std::cout);
  csv.row({"system", "days", "gb_measured", "gb_paper", "compressed_fraction",
           "rate_measured", "rate_paper", "messages", "alerts",
           "categories"});
  for (const auto id : parse::kAllSystems) {
    const auto row = core::table2_row(study, id);
    const auto& s = sim::system_spec(id);
    if (id == parse::SystemId::kThunderbird) {
      tbird_fraction = row.compressed_fraction;
    } else {
      best_other = std::min(best_other, row.compressed_fraction);
    }
    csv.row({std::string(parse::system_name(id)), std::to_string(row.days),
             util::format("%.3f", row.measured_gb),
             util::format("%.3f", s.size_gb),
             util::format("%.4f", row.compressed_fraction),
             util::format("%.1f", row.rate_bytes_per_sec),
             util::format("%.1f", s.rate_bytes_per_sec),
             util::format("%.0f", row.messages),
             util::format("%.0f", row.alerts),
             std::to_string(row.categories)});
  }
  bench::end_csv("table2");
  std::cout << util::format(
      "\nCompressibility ordering (paper: Thunderbird worst at 4.8x): "
      "tbird fraction %.3f vs best other %.3f -> %s\n",
      tbird_fraction, best_other,
      tbird_fraction > best_other ? "REPRODUCED" : "NOT reproduced");
  return 0;
}
