// Reproduces Table 3: alert type distribution (H/S/I), raw vs
// filtered. The paper's headline: hardware is 98.04% of raw alerts but
// software dominates after filtering (64.01%) -- "filtering
// dramatically changes the distribution of alert types."
#include "bench_common.hpp"

#include "util/csv.hpp"
#include "util/strings.hpp"

int main() {
  using namespace wss;
  bench::header("Table 3", "alert type distribution, raw vs filtered");
  core::Study study(bench::standard_options());
  std::cout << core::render_table3(study) << "\n";

  const auto d = core::table3(study);
  bench::begin_csv("table3");
  util::CsvWriter csv(std::cout);
  csv.row({"type", "raw_measured", "filtered_measured", "raw_paper",
           "filtered_paper"});
  const double paper_raw[3] = {174586516, 144899, 3350044};
  const std::uint64_t paper_filtered[3] = {1999, 6814, 1832};
  for (int i = 0; i < 3; ++i) {
    csv.row({std::string(filter::alert_type_name(
                 static_cast<filter::AlertType>(i))),
             util::format("%.0f", d.raw[i]),
             std::to_string(d.filtered[i]),
             util::format("%.0f", paper_raw[i]),
             std::to_string(paper_filtered[i])});
  }
  bench::end_csv("table3");

  const double raw_total = d.raw[0] + d.raw[1] + d.raw[2];
  const double filt_total = static_cast<double>(d.filtered[0] + d.filtered[1] +
                                                d.filtered[2]);
  std::cout << util::format(
      "\nHeadline: hardware %.2f%% of raw (paper 98.04%%); software %.2f%% "
      "of filtered (paper 64.01%%)\n",
      100.0 * d.raw[0] / raw_total,
      100.0 * static_cast<double>(d.filtered[1]) / filt_total);
  return 0;
}
