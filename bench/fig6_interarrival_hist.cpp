// Reproduces Figure 6: the log distribution of interarrival times
// after filtering -- bimodal on BG/L (a), unimodal on Spirit (b).
// "One of the modes (the first peak) is attributed to unfiltered
// redundancy": chains spaced just over the T=5s threshold survive.
#include "bench_common.hpp"

#include "util/strings.hpp"

#include "util/chart.hpp"
#include "util/csv.hpp"

namespace {

void show(wss::core::Study& study, wss::parse::SystemId id,
          const char* label, std::size_t expected_modes) {
  using namespace wss;
  const auto d = core::fig6(study, id);
  std::cout << label << " filtered interarrival histogram "
            << "(log10 seconds, 4 bins/decade):\n"
            << util::column_chart(d.hist.bins(), 10) << "\n";
  std::cout << util::format(
      "modes detected: %zu (paper: %zu) -> %s\n\n", d.modes.size(),
      expected_modes,
      d.modes.size() == expected_modes ? "REPRODUCED" : "NOT reproduced");

  bench::begin_csv(std::string("fig6_") +
                   std::string(parse::system_short_name(id)));
  util::CsvWriter csv(std::cout);
  csv.row({"bin_lo_seconds", "count"});
  for (std::size_t i = 0; i < d.hist.bins().size(); ++i) {
    csv.row_numeric({d.hist.bin_lo(i), d.hist.bins()[i]});
  }
  bench::end_csv(std::string("fig6_") +
                 std::string(parse::system_short_name(id)));
}

}  // namespace

int main() {
  using namespace wss;
  bench::header("Figure 6", "filtered interarrival distributions");
  core::Study study(bench::standard_options());
  show(study, parse::SystemId::kBlueGeneL, "(a) BG/L", 2);
  show(study, parse::SystemId::kSpirit, "(b) Spirit", 1);
  std::cout << "The BG/L first peak is unfiltered redundancy (chains spaced "
               "just above T); Spirit's distribution is unimodal after "
               "filtering.\n";
  return 0;
}
