// Reproduces Table 6: Red Storm syslog severity distribution.
// Headline: "these syslog alerts were dominated by disk failure
// messages with CRIT severity. Except for this failure case, these
// data suggest that syslog severity is not a reliable failure
// indicator."
#include "bench_common.hpp"

#include "util/csv.hpp"
#include "util/strings.hpp"

int main() {
  using namespace wss;
  bench::header("Table 6", "Red Storm syslog severity distribution");
  core::Study study(bench::standard_options());
  std::cout << core::render_table6(study) << "\n";

  bench::begin_csv("table6");
  util::CsvWriter csv(std::cout);
  csv.row({"severity", "messages", "alerts"});
  double crit_alerts = 0;
  double alerts_total = 0;
  for (const auto& r :
       core::severity_distribution(study, parse::SystemId::kRedStorm)) {
    if (r.severity == parse::Severity::kCrit) crit_alerts = r.alerts;
    alerts_total += r.alerts;
    csv.row({std::string(parse::severity_syslog_name(r.severity)),
             util::format("%.0f", r.messages),
             util::format("%.0f", r.alerts)});
  }
  bench::end_csv("table6");
  std::cout << util::format(
      "\nHeadline: CRIT carries %.2f%% of syslog-path alerts "
      "(paper 98.69%%).\n",
      100.0 * crit_alerts / alerts_total);
  return 0;
}
