// Reproduces Figure 5: critical ECC memory alerts on Thunderbird.
// "the distribution appears exponential and is roughly log normal with
// a heavy left tail ... we conclude that these low-level failures are
// basically independent." Views (a) and (b) are the same data: the
// interarrival histogram with fits, and the gaps over time.
#include "bench_common.hpp"

#include "util/strings.hpp"

#include <cmath>

#include "stats/histogram.hpp"
#include "util/chart.hpp"
#include "util/csv.hpp"

int main() {
  using namespace wss;
  bench::header("Figure 5", "Thunderbird ECC interarrival distribution");
  core::Study study(bench::standard_options());
  const auto d = core::fig5(study);

  // View (a): log-histogram of the interarrival gaps.
  stats::LogHistogram h(1.0, 7.0, 4);
  for (const double g : d.gaps_seconds) h.add(g);
  std::cout << "(a) interarrival gaps, log10(seconds) bins:\n"
            << util::column_chart(h.bins(), 10) << "\n";

  std::cout << util::format(
      "gaps: %zu (paper: 143 filtered alerts)\n"
      "exponential fit: rate %.3g /s (mean gap %.2f h); KS D=%.3f p=%.3f\n"
      "lognormal fit: mu %.2f sigma %.2f; KS D=%.3f p=%.3f\n"
      "-> exponential plausibly fits (p > 0.01): %s\n",
      d.gaps_seconds.size(), d.exponential.rate,
      1.0 / d.exponential.rate / 3600.0, d.ks_exponential.statistic,
      d.ks_exponential.p_value, d.lognormal.mu, d.lognormal.sigma,
      d.ks_lognormal.statistic, d.ks_lognormal.p_value,
      d.ks_exponential.p_value > 0.01 ? "REPRODUCED" : "NOT reproduced");

  // View (b): same data over time (gap index vs log gap).
  std::vector<double> xs;
  std::vector<double> ys;
  for (std::size_t i = 0; i < d.gaps_seconds.size(); ++i) {
    xs.push_back(static_cast<double>(i));
    ys.push_back(std::log10(std::max(1.0, d.gaps_seconds[i])));
  }
  std::cout << "\n(b) log10 gap by occurrence index (no temporal trend = "
               "independence):\n"
            << util::scatter(xs, ys, 72, 14) << "\n";

  bench::begin_csv("fig5");
  util::CsvWriter csv(std::cout);
  csv.row({"gap_index", "gap_seconds"});
  for (std::size_t i = 0; i < d.gaps_seconds.size(); ++i) {
    csv.row_numeric({static_cast<double>(i), d.gaps_seconds[i]});
  }
  bench::end_csv("fig5");
  return 0;
}
