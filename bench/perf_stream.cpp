// Streaming engine performance: sustained single-thread ingest
// throughput and per-event latency quantiles.
//
// Two measurements over one simulated Liberty stream:
//   1. throughput -- unpaced ingest of the full (event, line) stream
//      through StreamPipeline, events/sec, best of reps;
//   2. latency -- per-ingest wall time sampled across a full pass,
//      reported as p50/p99/p999.
//
// Appends one JSON-lines record to BENCH_stream.json (the streaming
// counterpart of BENCH_pipeline.json) so the perf trajectory across
// PRs is machine-readable. The repo's floor is 100k events/sec
// single-thread; the bench prints a PASS/FAIL line against it.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <vector>

#include "obs/export.hpp"
#include "sim/generator.hpp"
#include "stream/pipeline.hpp"
#include "util/strings.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double quantile_ns(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

int main() {
  using namespace wss;

  std::cout << "==== perf_stream: online pipeline ingest ====\n";

  sim::SimOptions opts;
  opts.category_cap = 20000;
  opts.chatter_events = 120000;
  const sim::Simulator simulator(parse::SystemId::kLiberty, opts);
  const auto& events = simulator.events();
  const auto n = events.size();

  // Pre-render so the measurement is the engine, not the renderer --
  // a live deployment receives lines, it does not synthesize them.
  std::vector<std::string> lines;
  lines.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    lines.push_back(simulator.renderer().render(events[i], i));
  }

  constexpr int kReps = 3;
  double best_s = 1e300;
  std::uint64_t admitted = 0;
  for (int r = 0; r < kReps; ++r) {
    stream::StreamPipeline pipeline(parse::SystemId::kLiberty);
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < n; ++i) {
      pipeline.ingest(events[i], lines[i]);
    }
    pipeline.finish();
    const auto t1 = Clock::now();
    const auto snap = pipeline.snapshot();
    if (snap.events != n) std::abort();  // keep the compiler honest
    admitted = snap.alerts_admitted;
    best_s = std::min(best_s, std::chrono::duration<double>(t1 - t0).count());
  }
  const double events_per_sec = static_cast<double>(n) / best_s;

  // Latency pass: per-ingest wall time. Timed individually, so this
  // pass is slower than the throughput pass by the clock overhead;
  // the quantiles are what matter.
  std::vector<double> lat_ns;
  lat_ns.reserve(n);
  {
    stream::StreamPipeline pipeline(parse::SystemId::kLiberty);
    for (std::size_t i = 0; i < n; ++i) {
      const auto t0 = Clock::now();
      pipeline.ingest(events[i], lines[i]);
      const auto t1 = Clock::now();
      lat_ns.push_back(
          std::chrono::duration<double, std::nano>(t1 - t0).count());
    }
    pipeline.finish();
  }
  std::sort(lat_ns.begin(), lat_ns.end());
  const double p50 = quantile_ns(lat_ns, 0.50);
  const double p99 = quantile_ns(lat_ns, 0.99);
  const double p999 = quantile_ns(lat_ns, 0.999);

  std::cout << util::format(
      "  workload        liberty cap=20000 chatter=120000 (%zu events)\n", n);
  std::cout << util::format("  throughput      %10.0f events/sec (best of %d)\n",
                            events_per_sec, kReps);
  std::cout << util::format("  admitted        %llu alerts\n",
                            static_cast<unsigned long long>(admitted));
  std::cout << util::format("  ingest latency  p50 %.0f ns   p99 %.0f ns   p999 %.0f ns\n",
                            p50, p99, p999);

  constexpr double kFloorEventsPerSec = 100000.0;
  const bool pass = events_per_sec >= kFloorEventsPerSec;
  std::cout << util::format("  floor           %.0f events/sec single-thread: %s\n",
                            kFloorEventsPerSec, pass ? "PASS" : "FAIL");

  const std::string json = util::format(
      "{\"bench\":\"perf_stream\",\"workload\":\"liberty cap=20000 "
      "chatter=120000\",\"events\":%zu,\"events_per_sec\":%.1f,"
      "\"latency_ns\":{\"p50\":%.1f,\"p99\":%.1f,\"p999\":%.1f},"
      "\"floor_events_per_sec\":%.0f,\"pass\":%s}",
      n, events_per_sec, p50, p99, p999, kFloorEventsPerSec,
      pass ? "true" : "false");
  std::ofstream os("BENCH_stream.json", std::ios::app);
  if (os) os << json << "\n";
  std::cout << "(appended to BENCH_stream.json)\n";

  // Obs registry snapshot (stream/pipeline/filter/tag counters and the
  // ingest-latency histogram across all passes above).
  obs::write_metrics_file("BENCH_stream_metrics.json");
  std::cout << "(wrote BENCH_stream_metrics.json)\n";

  return pass ? 0 : 1;
}
