// Network ingest server performance: aggregate delivered events/sec
// through `wss serve`'s epoll loop at 1, 2, and 4 concurrent TCP
// connections (one tenant per connection, loopback).
//
// The blasters pre-render their lines and write them in large batched
// segments, so the measurement is the server -- accept, frame
// decoding, tenant routing, ring hand-off, and the per-tenant stream
// engines -- not the clients. Throughput counts events the engines
// actually ingested (lossless path: delivered == ingested is asserted).
//
// Appends one JSON-lines record per connection count to
// BENCH_serve.json. The repo's long-term target is the single-stream
// figure (~2.9M ev/s, ROADMAP); the bench floor is a conservative
// 200k aggregate ev/s so CI flags real regressions without flaking on
// loaded runners.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "net/server.hpp"
#include "sim/generator.hpp"
#include "util/strings.hpp"

namespace {

using Clock = std::chrono::steady_clock;

struct RunResult {
  double events_per_sec = 0.0;
  std::uint64_t delivered = 0;
};

RunResult run_once(const std::vector<std::string>& lines, int conns) {
  using namespace wss;

  net::ServeOptions opts;
  opts.tcp.push_back({0, ""});  // ephemeral, handshake-routed
  for (int c = 0; c < conns; ++c) {
    net::TenantConfig cfg;
    cfg.name = util::format("bench%d", c);
    cfg.system = parse::SystemId::kLiberty;
    cfg.queue_capacity = 65536;
    opts.tenants.push_back(cfg);
  }
  net::Server server(std::move(opts));
  server.bind();
  const std::uint16_t port = server.tcp_port(0);

  std::thread serving([&server] { server.run(); });

  const auto t0 = Clock::now();
  std::vector<std::thread> blasters;
  for (int c = 0; c < conns; ++c) {
    blasters.emplace_back([&lines, port, c] {
      net::SinkOptions sopts;
      sopts.endpoint = {net::Transport::kTcp, "127.0.0.1", port};
      sopts.tenant = util::format("bench%d", c);
      sopts.system_short = "liberty";
      net::SinkClient client(sopts);
      for (const std::string& line : lines) client.send(0, line);
      client.close();
    });
  }
  for (auto& b : blasters) b.join();
  server.request_stop();
  serving.join();

  const double secs = std::chrono::duration<double>(Clock::now() - t0).count();
  const std::uint64_t total =
      static_cast<std::uint64_t>(lines.size()) *
      static_cast<std::uint64_t>(conns);
  // TCP into a sized ring is the lossless path; a shortfall means the
  // server lost frames and the number would be meaningless.
  const std::string status = server.status_json();
  if (status.find("\"dropped\":0") == std::string::npos) std::abort();
  RunResult r;
  r.delivered = total;
  r.events_per_sec = static_cast<double>(total) / secs;
  return r;
}

}  // namespace

int main() {
  using namespace wss;

  std::cout << "==== perf_serve: network ingest throughput ====\n";

  sim::SimOptions sopts;
  sopts.category_cap = 20000;
  sopts.chatter_events = 120000;
  const sim::Simulator simulator(parse::SystemId::kLiberty, sopts);
  const auto& events = simulator.events();
  std::vector<std::string> lines;
  lines.reserve(events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    lines.push_back(simulator.renderer().render(events[i], i));
  }
  std::cout << util::format(
      "  workload        liberty cap=20000 chatter=120000 (%zu lines/conn)\n",
      lines.size());

  constexpr double kFloorEventsPerSec = 200000.0;
  constexpr double kTargetEventsPerSec = 2900000.0;
  constexpr int kReps = 3;
  bool all_pass = true;

  std::ofstream os("BENCH_serve.json", std::ios::app);
  for (const int conns : {1, 2, 4}) {
    RunResult best;
    for (int r = 0; r < kReps; ++r) {
      const RunResult run = run_once(lines, conns);
      best.events_per_sec = std::max(best.events_per_sec, run.events_per_sec);
      best.delivered = run.delivered;
    }
    const bool pass = best.events_per_sec >= kFloorEventsPerSec;
    all_pass = all_pass && pass;
    std::cout << util::format(
        "  %d conn(s)       %10.0f events/sec aggregate (best of %d): %s\n",
        conns, best.events_per_sec, kReps, pass ? "PASS" : "FAIL");
    if (os) {
      os << util::format(
                "{\"bench\":\"perf_serve\",\"connections\":%d,"
                "\"events\":%llu,\"events_per_sec\":%.1f,"
                "\"floor_events_per_sec\":%.0f,"
                "\"target_events_per_sec\":%.0f,\"pass\":%s}",
                conns, static_cast<unsigned long long>(best.delivered),
                best.events_per_sec, kFloorEventsPerSec, kTargetEventsPerSec,
                pass ? "true" : "false")
         << "\n";
    }
  }
  std::cout << util::format("  floor           %.0f events/sec aggregate\n",
                            kFloorEventsPerSec);
  std::cout << "(appended to BENCH_serve.json)\n";
  return all_pass ? 0 : 1;
}
