// Network ingest server performance: aggregate delivered events/sec
// through `wss serve`'s sharded event loop, swept over loop-shard
// counts {1, 4} and concurrent TCP connections {1, 2, 4} (one tenant
// per connection, loopback), plus ingest-latency percentiles.
//
// The blasters pre-render their lines and write them in large batched
// segments, so the measurement is the server -- accept, frame
// decoding, tenant routing, batched ring hand-off, and the per-tenant
// stream engines -- not the clients. Throughput counts events the
// engines actually ingested (lossless path: delivered == ingested is
// asserted). Every client stamps its lines (`stamp=us`), so the
// tenants' wss_net_ingest_latency_seconds histograms capture
// client-send -> engine-consume latency; p50/p99/p999 are
// interpolated from the bucket deltas each configuration produced.
//
// Appends one JSON-lines record per configuration to
// BENCH_serve.json. The PR 6 single-loop baseline on the CI box was
// ~690k ev/s aggregate ("baseline_events_per_sec"); the scale-out
// target is >=2x that at 4 shards, and the long-term ceiling is the
// in-process single-stream figure (~2.9M ev/s, ROADMAP). The bench
// floor stays a conservative 200k aggregate ev/s so CI flags real
// regressions without flaking on loaded runners.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "net/server.hpp"
#include "obs/metrics.hpp"
#include "sim/generator.hpp"
#include "util/strings.hpp"

namespace {

using Clock = std::chrono::steady_clock;

struct RunResult {
  double events_per_sec = 0.0;
  std::uint64_t delivered = 0;
};

struct Percentiles {
  double p50 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
  std::uint64_t samples = 0;
};

/// Cumulative per-bucket counts of every bench tenant's ingest-latency
/// histogram (they are process-global and only grow; callers diff two
/// snapshots to isolate one configuration's samples).
std::vector<std::uint64_t> latency_snapshot(int conns) {
  using namespace wss;
  std::vector<std::uint64_t> total;
  for (int c = 0; c < conns; ++c) {
    // Find-or-create with the canonical bounds: idempotent, and the
    // tenants register with the same bounds before observing anything.
    const obs::Histogram& h = obs::registry().histogram(
        util::format("wss_net_ingest_latency_seconds{tenant=\"bench%d\"}", c),
        obs::latency_bounds_seconds());
    const std::vector<std::uint64_t> counts = h.bucket_counts();
    if (total.size() < counts.size()) total.resize(counts.size(), 0);
    for (std::size_t b = 0; b < counts.size(); ++b) total[b] += counts[b];
  }
  return total;
}

/// Linear interpolation inside the winning bucket; the +Inf bucket
/// reports its lower bound (the histogram cannot resolve beyond it).
Percentiles percentiles_from_delta(const std::vector<std::uint64_t>& before,
                                   const std::vector<std::uint64_t>& after) {
  const std::vector<double>& bounds = wss::obs::latency_bounds_seconds();
  std::vector<std::uint64_t> delta(after.size(), 0);
  Percentiles out;
  for (std::size_t b = 0; b < after.size(); ++b) {
    delta[b] = after[b] - (b < before.size() ? before[b] : 0);
    out.samples += delta[b];
  }
  if (out.samples == 0) return out;
  const auto quantile = [&](double q) {
    const double rank = q * static_cast<double>(out.samples);
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < delta.size(); ++b) {
      if (delta[b] == 0) continue;
      const double lo = b == 0 ? 0.0 : bounds[b - 1];
      if (b >= bounds.size()) return lo;  // +Inf bucket
      const double hi = bounds[b];
      if (static_cast<double>(seen + delta[b]) >= rank) {
        const double frac =
            (rank - static_cast<double>(seen)) / static_cast<double>(delta[b]);
        return lo + (hi - lo) * std::min(1.0, std::max(0.0, frac));
      }
      seen += delta[b];
    }
    return bounds.back();
  };
  out.p50 = quantile(0.50);
  out.p99 = quantile(0.99);
  out.p999 = quantile(0.999);
  return out;
}

RunResult run_once(const std::vector<std::string>& lines, int conns,
                   int shards) {
  using namespace wss;

  net::ServeOptions opts;
  opts.loop_shards = shards;
  opts.tcp.push_back({0, ""});  // ephemeral, handshake-routed
  for (int c = 0; c < conns; ++c) {
    net::TenantConfig cfg;
    cfg.name = util::format("bench%d", c);
    cfg.system = parse::SystemId::kLiberty;
    cfg.queue_capacity = 65536;
    opts.tenants.push_back(cfg);
  }
  net::Server server(std::move(opts));
  server.bind();
  const std::uint16_t port = server.tcp_port(0);

  std::thread serving([&server] { server.run(); });

  const auto t0 = Clock::now();
  std::vector<std::thread> blasters;
  for (int c = 0; c < conns; ++c) {
    blasters.emplace_back([&lines, port, c] {
      net::SinkOptions sopts;
      sopts.endpoint = {net::Transport::kTcp, "127.0.0.1", port};
      sopts.tenant = util::format("bench%d", c);
      sopts.system_short = "liberty";
      // WSS_PERF_SERVE_STAMP=0 measures the unstamped wire format (no
      // latency columns) -- the isolation knob for stamp overhead.
      const char* stamp_env = std::getenv("WSS_PERF_SERVE_STAMP");
      sopts.stamp_latency = stamp_env == nullptr || stamp_env[0] != '0';
      // Coalesced writes: one syscall per ~64KB instead of per line,
      // so the measurement is the server, not the blaster's syscalls.
      sopts.send_batch_bytes = 64 * 1024;
      net::SinkClient client(sopts);
      for (const std::string& line : lines) client.send(0, line);
      client.close();
    });
  }
  for (auto& b : blasters) b.join();
  server.request_stop();
  serving.join();

  const double secs = std::chrono::duration<double>(Clock::now() - t0).count();
  const std::uint64_t total =
      static_cast<std::uint64_t>(lines.size()) *
      static_cast<std::uint64_t>(conns);
  // TCP into a sized ring is the lossless path; a shortfall means the
  // server lost frames and the number would be meaningless.
  const std::string status = server.status_json();
  if (status.find("\"dropped\":0") == std::string::npos) std::abort();
  RunResult r;
  r.delivered = total;
  r.events_per_sec = static_cast<double>(total) / secs;
  return r;
}

}  // namespace

int main() {
  using namespace wss;

  std::cout << "==== perf_serve: sharded network ingest throughput ====\n";

  sim::SimOptions sopts;
  sopts.category_cap = 20000;
  sopts.chatter_events = 120000;
  const sim::Simulator simulator(parse::SystemId::kLiberty, sopts);
  const auto& events = simulator.events();
  std::vector<std::string> lines;
  lines.reserve(events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    lines.push_back(simulator.renderer().render(events[i], i));
  }
  std::cout << util::format(
      "  workload        liberty cap=20000 chatter=120000 (%zu lines/conn)\n",
      lines.size());

  constexpr double kFloorEventsPerSec = 200000.0;
  constexpr double kBaselineEventsPerSec = 690000.0;  // PR 6 single loop
  constexpr double kTargetEventsPerSec = 2900000.0;
  constexpr int kReps = 3;
  bool all_pass = true;
  double best_at_4shards_4conns = 0.0;

  std::ofstream os("BENCH_serve.json", std::ios::app);
  for (const int shards : {1, 4}) {
    for (const int conns : {1, 2, 4}) {
      const std::vector<std::uint64_t> lat_before = latency_snapshot(conns);
      RunResult best;
      for (int r = 0; r < kReps; ++r) {
        const RunResult run = run_once(lines, conns, shards);
        best.events_per_sec =
            std::max(best.events_per_sec, run.events_per_sec);
        best.delivered = run.delivered;
      }
      const Percentiles lat =
          percentiles_from_delta(lat_before, latency_snapshot(conns));
      const bool pass = best.events_per_sec >= kFloorEventsPerSec;
      all_pass = all_pass && pass;
      if (shards == 4 && conns == 4) {
        best_at_4shards_4conns = best.events_per_sec;
      }
      std::cout << util::format(
          "  %d shard(s) %d conn(s)  %10.0f ev/s aggregate (best of %d)  "
          "lat p50=%.1fus p99=%.1fus p999=%.1fus [%llu samples]: %s\n",
          shards, conns, best.events_per_sec, kReps, lat.p50 * 1e6,
          lat.p99 * 1e6, lat.p999 * 1e6,
          static_cast<unsigned long long>(lat.samples),
          pass ? "PASS" : "FAIL");
      if (os) {
        os << util::format(
                  "{\"bench\":\"perf_serve\",\"loop_shards\":%d,"
                  "\"connections\":%d,\"events\":%llu,"
                  "\"events_per_sec\":%.1f,"
                  "\"latency_p50_s\":%.6f,\"latency_p99_s\":%.6f,"
                  "\"latency_p999_s\":%.6f,\"latency_samples\":%llu,"
                  "\"floor_events_per_sec\":%.0f,"
                  "\"baseline_events_per_sec\":%.0f,"
                  "\"target_events_per_sec\":%.0f,\"pass\":%s}",
                  shards, conns,
                  static_cast<unsigned long long>(best.delivered),
                  best.events_per_sec, lat.p50, lat.p99, lat.p999,
                  static_cast<unsigned long long>(lat.samples),
                  kFloorEventsPerSec, kBaselineEventsPerSec,
                  kTargetEventsPerSec, pass ? "true" : "false")
           << "\n";
      }
    }
  }
  std::cout << util::format("  floor           %.0f events/sec aggregate\n",
                            kFloorEventsPerSec);
  std::cout << util::format(
      "  scale-out       %.2fx the %0.fk ev/s single-loop baseline at 4 "
      "shards / 4 conns\n",
      best_at_4shards_4conns / kBaselineEventsPerSec,
      kBaselineEventsPerSec / 1000.0);
  std::cout << "(appended to BENCH_serve.json)\n";
  return all_pass ? 0 : 1;
}
