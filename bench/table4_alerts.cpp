// Reproduces Table 4: per-category raw and filtered alert counts for
// all five systems (77 categories).
#include "bench_common.hpp"

#include "tag/rulesets.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"

int main() {
  using namespace wss;
  bench::header("Table 4", "alert categories, raw and filtered, 5 systems");
  core::Study study(bench::standard_options());
  for (const auto id : parse::kAllSystems) {
    std::cout << core::render_table4(study, id) << "\n";
  }

  bench::begin_csv("table4");
  util::CsvWriter csv(std::cout);
  csv.row({"system", "category", "type", "raw_measured", "raw_paper",
           "filtered_measured", "filtered_paper"});
  std::size_t exact_raw = 0;
  std::size_t close_filtered = 0;
  std::size_t rows = 0;
  for (const auto id : parse::kAllSystems) {
    for (const auto& r : core::table4_rows(study, id)) {
      ++rows;
      if (std::abs(r.raw_weighted - static_cast<double>(r.paper_raw)) <
          0.5 + 1e-6 * r.raw_weighted) {
        ++exact_raw;
      }
      const double tol =
          std::max(2.0, 0.05 * static_cast<double>(r.paper_filtered));
      if (std::abs(static_cast<double>(r.filtered_measured) -
                   static_cast<double>(r.paper_filtered)) <= tol) {
        ++close_filtered;
      }
      csv.row({std::string(parse::system_short_name(id)), r.category,
               std::string(1, filter::alert_type_letter(r.type)),
               util::format("%.0f", r.raw_weighted),
               std::to_string(r.paper_raw),
               std::to_string(r.filtered_measured),
               std::to_string(r.paper_filtered)});
    }
  }
  bench::end_csv("table4");
  std::cout << util::format(
      "\nSummary: %zu/%zu raw counts exact, %zu/%zu filtered counts within "
      "max(2, 5%%) of the paper.\n",
      exact_raw, rows, close_filtered, rows);
  return 0;
}
