// Ablation: event tupling (Tsao [26], Buckley & Siewiorek [4]) versus
// the paper's per-category filtering, on ground-truth alert streams.
// Tuples fuse unrelated concurrent failures (collisions); per-category
// filtering keeps one representative per (category, window) and so
// splits multi-category failures instead. The paper's Section 4 asks
// for filters "aware of correlations among messages" precisely because
// neither pure scheme wins.
#include "bench_common.hpp"

#include "filter/score.hpp"
#include "filter/simultaneous.hpp"
#include "filter/tuple.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace wss;
  bench::header("Ablation: tupling vs filtering",
                "Tsao tuples against Algorithm 3.1");
  core::Study study(bench::standard_options());

  util::Table t({"System", "Failures", "Filter kept", "Tuples",
                 "Collided tuples", "Split failures"});
  bench::begin_csv("tupling");
  util::CsvWriter csv(std::cout);
  csv.row({"system", "failures", "filter_kept", "tuples", "collided",
           "split"});
  for (const auto id : parse::kAllSystems) {
    const auto alerts = study.simulator(id).ground_truth_alerts();
    filter::SimultaneousFilter f(study.threshold());
    const auto fscore = filter::score_filter(f, alerts);
    const auto tuples = filter::build_tuples(alerts, study.threshold());
    const auto tscore = filter::score_tuples(tuples);
    t.add_row({std::string(parse::system_name(id)),
               std::to_string(fscore.failures_total),
               std::to_string(fscore.kept_alerts),
               std::to_string(tscore.tuples),
               std::to_string(tscore.collided_tuples),
               std::to_string(tscore.split_failures)});
    csv.row({std::string(parse::system_short_name(id)),
             std::to_string(fscore.failures_total),
             std::to_string(fscore.kept_alerts),
             std::to_string(tscore.tuples),
             std::to_string(tscore.collided_tuples),
             std::to_string(tscore.split_failures)});
  }
  bench::end_csv("tupling");
  std::cout << "\n" << t.render();
  std::cout
      << "\nReading: tuples approach the failure count too, but collided\n"
      << "tuples hide distinct failures inside one object (the cost of\n"
      << "ignoring categories), while the per-category filter reports\n"
      << "correlated multi-category failures more than once (Figure 4's\n"
      << "PBS_CHK/PBS_BFD). Hence the paper's call for correlation-aware\n"
      << "filtering.\n";
  return 0;
}
