// Reproduces Figure 2(a): Liberty's messages per hour over the
// collection window, with the dramatic regime shifts -- the first
// corresponds to the post-production OS upgrade. Change points are
// detected with the CUSUM binary-segmentation detector.
#include "bench_common.hpp"

#include "util/strings.hpp"

#include "util/chart.hpp"
#include "util/csv.hpp"

int main() {
  using namespace wss;
  bench::header("Figure 2(a)", "Liberty messages per hour + regime shifts");
  core::Study study(bench::standard_options());
  const auto d = core::fig2a(study);

  // Render at daily resolution for the ASCII view.
  const auto& hourly = d.series.buckets();
  std::vector<double> daily;
  for (std::size_t i = 0; i + 24 <= hourly.size(); i += 24) {
    double s = 0;
    for (std::size_t k = 0; k < 24; ++k) s += hourly[i + k];
    daily.push_back(s / 24.0);
  }
  std::cout << "Mean hourly message volume by day (weighted):\n"
            << util::column_chart(daily, 14) << "\n";

  std::cout << "Detected change points (hour index, fraction of window):\n";
  for (const auto cp : d.changepoints) {
    std::cout << util::format(
        "  hour %6zu  (%.2f of window)\n", cp,
        static_cast<double>(cp) / static_cast<double>(hourly.size()));
  }
  std::cout << "Paper: first major shift at the end of Q1 2005 (~0.35 of "
               "the window) was the OS upgrade; later shifts are not well "
               "understood.\n";

  bench::begin_csv("fig2a");
  util::CsvWriter csv(std::cout);
  csv.row({"hour_index", "weighted_messages"});
  for (std::size_t i = 0; i < hourly.size(); i += 24) {  // daily rows
    csv.row_numeric({static_cast<double>(i), hourly[i]});
  }
  bench::end_csv("fig2a");
  return 0;
}
