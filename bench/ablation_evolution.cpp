// Ablation (Section 3.2.1, "System Evolution"): epoch segmentation
// and model drift. "Learned patterns and behaviors may not be
// applicable for very long" -- quantified here as the change in each
// epoch's message-mix fingerprint across the detected phase shifts.
#include "bench_common.hpp"

#include "core/evolution.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"

int main() {
  using namespace wss;
  bench::header("Ablation: system evolution", "epochs and model drift");
  core::Study study(bench::standard_options());

  bench::begin_csv("evolution");
  util::CsvWriter csv(std::cout);
  csv.row({"system", "epoch", "begin", "end", "msgs_per_hour",
           "alert_fraction"});
  double liberty_drift = 0.0;
  double flattest_drift = 1e9;
  for (const auto id : parse::kAllSystems) {
    const auto a = core::analyze_evolution(study, id);
    std::cout << "--- " << parse::system_name(id) << " ---\n"
              << core::render_evolution(a) << "\n";
    for (std::size_t i = 0; i < a.epochs.size(); ++i) {
      const auto& e = a.epochs[i];
      csv.row({std::string(parse::system_short_name(id)), std::to_string(i),
               util::format_iso(e.begin), util::format_iso(e.end),
               util::format("%.1f", e.mean_hourly_messages),
               util::format("%.6f", e.alert_fraction)});
    }
    if (id == parse::SystemId::kLiberty) {
      liberty_drift = a.max_drift();
    } else {
      flattest_drift = std::min(flattest_drift, a.max_drift());
    }
  }
  bench::end_csv("evolution");

  std::cout << util::format(
      "Liberty max fingerprint drift %.3f vs flattest other system %.3f -> "
      "the OS-upgrade machine evolves the most: %s\n",
      liberty_drift, flattest_drift,
      liberty_drift > flattest_drift ? "REPRODUCED" : "NOT reproduced");
  std::cout << "A model trained before a drift of this size (an L1 shift of "
               "the message mix) is stale after it -- the paper's argument "
               "for phase-shift detection as a relearning trigger.\n";
  return 0;
}
