// Ablation X4: the Section 4 SMP-clock-bug analysis. "We were
// surprised to observe clear spatial correlations ... whenever a set
// of nodes was running a communication-intensive job, they would
// collectively be more prone to encountering this bug." Compares the
// spatial spread of CPU clock alerts (job-driven) against ECC alerts
// (physics-driven, independent).
#include "bench_common.hpp"

#include "util/strings.hpp"

#include "stats/correlation.hpp"
#include "tag/rulesets.hpp"
#include "util/csv.hpp"

int main() {
  using namespace wss;
  bench::header("Ablation: spatial correlation", "CPU clock bug vs ECC");
  core::Study study(bench::standard_options());
  const auto& sim = study.simulator(parse::SystemId::kThunderbird);
  const auto cats = tag::categories_of(parse::SystemId::kThunderbird);

  bench::begin_csv("cpu_spatial");
  util::CsvWriter csv(std::cout);
  csv.row({"category", "alerts", "spatial_spread"});
  double cpu_spread = 0.0;
  double ecc_spread = 0.0;
  for (std::size_t c = 0; c < cats.size(); ++c) {
    std::vector<util::TimeUs> times;
    std::vector<std::uint32_t> sources;
    for (const auto& a : sim.ground_truth_alerts()) {
      if (a.category == c) {
        times.push_back(a.time);
        sources.push_back(a.source);
      }
    }
    const double spread =
        stats::spatial_spread(times, sources, 10 * util::kUsPerMin);
    if (cats[c]->name == "CPU") cpu_spread = spread;
    if (cats[c]->name == "ECC") ecc_spread = spread;
    csv.row({cats[c]->name, std::to_string(times.size()),
             util::format("%.4f", spread)});
    std::cout << util::format("  %-8s alerts %7zu   spatial spread %.3f\n",
                              cats[c]->name.c_str(), times.size(), spread);
  }
  bench::end_csv("cpu_spatial");

  std::cout << util::format(
      "\nCPU (job-driven) spread %.3f >> ECC (independent) spread %.3f: "
      "%s\n"
      "This is the signal that led the authors to the Linux SMP kernel "
      "clock bug.\n",
      cpu_spread, ecc_spread,
      cpu_spread > ecc_spread + 0.3 ? "REPRODUCED" : "NOT reproduced");
  return 0;
}
