// Perf X1: filtering algorithm comparison (google-benchmark).
//
// Section 3.3.2: performing temporal and spatial filtering
// simultaneously "reduces computational costs (16% faster on the
// Spirit logs), and increases conceptual simplicity." This bench runs
// the serial baseline and Algorithm 3.1 (with and without the
// clear(X) optimization) over a Spirit-scale ground-truth alert
// stream and prints the measured speedup.
#include <benchmark/benchmark.h>

#include <chrono>
#include <iostream>

#include "bench_common.hpp"
#include "core/study.hpp"
#include "filter/serial.hpp"
#include "filter/simultaneous.hpp"
#include "sim/generator.hpp"
#include "util/strings.hpp"

namespace {

using namespace wss;

const std::vector<filter::Alert>& spirit_alerts() {
  static const std::vector<filter::Alert> alerts = [] {
    sim::SimOptions opts;
    opts.category_cap = 200000;
    opts.chatter_events = 0;
    const sim::Simulator simulator(parse::SystemId::kSpirit, opts);
    return simulator.ground_truth_alerts();
  }();
  return alerts;
}

template <typename Filter>
void run_filter(benchmark::State& state, Filter& f) {
  const auto& alerts = spirit_alerts();
  for (auto _ : state) {
    f.reset();
    std::size_t kept = 0;
    for (const auto& a : alerts) kept += f.admit(a) ? 1 : 0;
    benchmark::DoNotOptimize(kept);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(alerts.size()));
}

void BM_SerialFilter(benchmark::State& state) {
  filter::SerialFilter f(5 * util::kUsPerSec);
  run_filter(state, f);
}
BENCHMARK(BM_SerialFilter);

void BM_SimultaneousFilter(benchmark::State& state) {
  filter::SimultaneousFilter f(5 * util::kUsPerSec);
  run_filter(state, f);
}
BENCHMARK(BM_SimultaneousFilter);

void BM_SimultaneousNoClear(benchmark::State& state) {
  filter::SimultaneousFilter f(5 * util::kUsPerSec,
                               /*use_clear_optimization=*/false);
  run_filter(state, f);
}
BENCHMARK(BM_SimultaneousNoClear);

void BM_TemporalOnly(benchmark::State& state) {
  filter::TemporalFilter f(5 * util::kUsPerSec);
  run_filter(state, f);
}
BENCHMARK(BM_TemporalOnly);

/// Wall-clock comparison over several repetitions, for the printed
/// speedup claim.
template <typename Filter>
double time_filter(Filter& f, int reps) {
  const auto& alerts = spirit_alerts();
  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    f.reset();
    const auto t0 = std::chrono::steady_clock::now();
    std::size_t kept = 0;
    for (const auto& a : alerts) kept += f.admit(a) ? 1 : 0;
    benchmark::DoNotOptimize(kept);
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  std::cout << "==== Perf X1: serial vs simultaneous filtering ====\n"
            << "Spirit-scale ground-truth alert stream ("
            << spirit_alerts().size() << " physical alerts)\n\n";
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  filter::SerialFilter serial(5 * util::kUsPerSec);
  filter::SimultaneousFilter simultaneous(5 * util::kUsPerSec);
  const double t_serial = time_filter(serial, 7);
  const double t_simul = time_filter(simultaneous, 7);
  const double speedup = (t_serial - t_simul) / t_serial * 100.0;
  std::cout << util::format(
      "\nBest-of-7 wall clock: serial %.3f ms, simultaneous %.3f ms -> "
      "simultaneous is %.1f%% faster (paper: 16%% on the Spirit logs).\n",
      t_serial * 1e3, t_simul * 1e3, speedup);
  wss::bench::emit_pipeline_threads_sweep("perf_filter");
  return 0;
}
