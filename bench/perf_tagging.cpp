// Perf: tag-engine throughput, with and without the required-literal
// pre-filter (DESIGN.md ablation 5). Tagging must keep up with
// hundreds of millions of messages, so the miss path (chatter) is what
// matters.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "sim/generator.hpp"
#include "tag/engine.hpp"
#include "tag/rulesets.hpp"

namespace {

using namespace wss;

struct Corpus {
  std::vector<std::string> lines;
  tag::RuleSet rules;
};

const Corpus& corpus() {
  static const Corpus c = [] {
    sim::SimOptions opts;
    opts.category_cap = 2000;
    opts.chatter_events = 30000;
    opts.inject_corruption = false;
    const sim::Simulator simulator(parse::SystemId::kBlueGeneL, opts);
    Corpus out{{}, tag::build_ruleset(parse::SystemId::kBlueGeneL)};
    for (std::size_t i = 0; i < simulator.events().size(); ++i) {
      out.lines.push_back(simulator.line(i));
    }
    return out;
  }();
  return c;
}

void tag_all(benchmark::State& state, bool use_prefilter) {
  const auto& c = corpus();
  // Measures the dominant cost: every rule's primary whole-line regex
  // probed against every line (the miss path is what scales to 10^9
  // messages).
  for (auto _ : state) {
    std::size_t hits = 0;
    for (const auto& line : c.lines) {
      for (const auto& rule : c.rules.rules()) {
        if (rule.predicate.terms().front().re->search(line, use_prefilter)) {
          ++hits;
          break;
        }
      }
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(c.lines.size()));
}

void BM_TagWithPrefilter(benchmark::State& state) { tag_all(state, true); }
BENCHMARK(BM_TagWithPrefilter);

void BM_TagWithoutPrefilter(benchmark::State& state) { tag_all(state, false); }
BENCHMARK(BM_TagWithoutPrefilter);

void BM_TagEngineEndToEnd(benchmark::State& state) {
  const auto& c = corpus();
  const tag::TagEngine engine(tag::build_ruleset(parse::SystemId::kBlueGeneL));
  for (auto _ : state) {
    std::size_t hits = 0;
    for (const auto& line : c.lines) {
      hits += engine.tag_line(line).has_value() ? 1 : 0;
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(c.lines.size()));
}
BENCHMARK(BM_TagEngineEndToEnd);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "==== Perf: tagging throughput (41 BG/L rules, "
            << corpus().lines.size() << " lines) ====\n\n";
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  wss::bench::emit_pipeline_threads_sweep("perf_tagging");
  return 0;
}
