// Perf: tag-engine throughput, as a three-way ablation of the real
// TagEngine::tag_line path (DESIGN.md section 5d):
//
//   naive      -- per-rule predicate loop, first match wins;
//   prefilter  -- one Aho-Corasick pass gates the per-rule loop;
//   multi      -- prefilter + one lazy-DFA set-matching pass.
//
// Tagging must keep up with hundreds of millions of messages, so the
// miss path (chatter lines that match no rule) is what matters; the
// corpus below is chatter-heavy by construction. All three modes are
// bit-identical by contract -- the bench aborts if their tag counts
// disagree.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "bench_common.hpp"
#include "match/scratch.hpp"
#include "obs/export.hpp"
#include "sim/generator.hpp"
#include "simd/dispatch.hpp"
#include "tag/engine.hpp"
#include "tag/metrics.hpp"
#include "tag/rulesets.hpp"

namespace {

using namespace wss;

struct Corpus {
  std::vector<std::string> lines;
  std::size_t bytes = 0;
};

/// Mixed corpus: alerts and chatter in simulator proportions.
const Corpus& mixed_corpus() {
  static const Corpus c = [] {
    sim::SimOptions opts;
    opts.category_cap = 2000;
    opts.chatter_events = 30000;
    opts.inject_corruption = false;
    const sim::Simulator simulator(parse::SystemId::kBlueGeneL, opts);
    Corpus out;
    for (std::size_t i = 0; i < simulator.events().size(); ++i) {
      out.lines.push_back(simulator.line(i));
      out.bytes += out.lines.back().size();
    }
    return out;
  }();
  return c;
}

/// Miss-path corpus: the mixed corpus minus every line any engine
/// tags. This is the case that scales to 10^9 messages -- the paper's
/// logs are overwhelmingly chatter -- and the one the set matcher is
/// built for.
const Corpus& miss_corpus() {
  static const Corpus c = [] {
    const tag::TagEngine naive(tag::build_ruleset(parse::SystemId::kBlueGeneL),
                               tag::TagEngineMode::kNaive);
    match::MatchScratch scratch;
    Corpus out;
    for (const auto& line : mixed_corpus().lines) {
      if (!naive.tag_line(line, scratch)) {
        out.lines.push_back(line);
        out.bytes += line.size();
      }
    }
    return out;
  }();
  return c;
}

const tag::TagEngine& engine_for(tag::TagEngineMode mode) {
  static const tag::TagEngine naive(
      tag::build_ruleset(parse::SystemId::kBlueGeneL),
      tag::TagEngineMode::kNaive);
  static const tag::TagEngine prefilter(
      tag::build_ruleset(parse::SystemId::kBlueGeneL),
      tag::TagEngineMode::kPrefilter);
  static const tag::TagEngine multi(
      tag::build_ruleset(parse::SystemId::kBlueGeneL),
      tag::TagEngineMode::kMulti);
  switch (mode) {
    case tag::TagEngineMode::kNaive:
      return naive;
    case tag::TagEngineMode::kPrefilter:
      return prefilter;
    default:
      return multi;
  }
}

std::size_t tag_pass(const Corpus& c, const tag::TagEngine& engine,
                     match::MatchScratch& scratch) {
  std::size_t hits = 0;
  for (const auto& line : c.lines) {
    hits += engine.tag_line(line, scratch).has_value() ? 1 : 0;
  }
  return hits;
}

void tag_mode(benchmark::State& state, const Corpus& c,
              tag::TagEngineMode mode) {
  const tag::TagEngine& engine = engine_for(mode);
  match::MatchScratch scratch;  // reused: the steady-state contract
  for (auto _ : state) {
    const std::size_t hits = tag_pass(c, engine, scratch);
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(c.lines.size()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(c.bytes));
}

void BM_TagNaive(benchmark::State& state) {
  tag_mode(state, mixed_corpus(), tag::TagEngineMode::kNaive);
}
BENCHMARK(BM_TagNaive);

void BM_TagPrefilter(benchmark::State& state) {
  tag_mode(state, mixed_corpus(), tag::TagEngineMode::kPrefilter);
}
BENCHMARK(BM_TagPrefilter);

void BM_TagMulti(benchmark::State& state) {
  tag_mode(state, mixed_corpus(), tag::TagEngineMode::kMulti);
}
BENCHMARK(BM_TagMulti);

void BM_TagNaiveMiss(benchmark::State& state) {
  tag_mode(state, miss_corpus(), tag::TagEngineMode::kNaive);
}
BENCHMARK(BM_TagNaiveMiss);

void BM_TagMultiMiss(benchmark::State& state) {
  tag_mode(state, miss_corpus(), tag::TagEngineMode::kMulti);
}
BENCHMARK(BM_TagMultiMiss);

/// The machine-readable record: one timed pass per mode (best of
/// `reps`), tag counts cross-checked, appended as one JSON-lines
/// object per workload to BENCH_tagging.json.
void emit_tagging_ablation(const char* workload, const Corpus& c,
                           int reps = 3) {
  const auto lines = static_cast<double>(c.lines.size());

  struct Row {
    const char* name;
    tag::TagEngineMode mode;
    double lines_per_sec = 0.0;
    std::size_t hits = 0;
  };
  Row rows[] = {
      {"naive", tag::TagEngineMode::kNaive},
      {"prefilter", tag::TagEngineMode::kPrefilter},
      {"multi", tag::TagEngineMode::kMulti},
  };

  std::cout << "\n==== Tagging ablation (BG/L " << workload << ", "
            << c.lines.size() << " lines) ====\n";
  for (Row& row : rows) {
    const tag::TagEngine& engine = engine_for(row.mode);
    match::MatchScratch scratch;
    tag::TagMetricsFlusher flusher;
    row.hits = tag_pass(c, engine, scratch);  // warm-up (DFA cache, scratch)
    double best_s = 1e300;
    for (int r = 0; r < reps; ++r) {
      const auto t0 = std::chrono::steady_clock::now();
      const std::size_t hits = tag_pass(c, engine, scratch);
      const auto t1 = std::chrono::steady_clock::now();
      if (hits != row.hits) std::abort();  // modes must agree with themselves
      best_s =
          std::min(best_s, std::chrono::duration<double>(t1 - t0).count());
    }
    flusher.flush(scratch);  // publish tallies so the snapshot sees them
    row.lines_per_sec = lines / best_s;
  }
  if (rows[0].hits != rows[1].hits || rows[0].hits != rows[2].hits) {
    std::cerr << "FATAL: ablation modes disagree on tag counts: naive="
              << rows[0].hits << " prefilter=" << rows[1].hits
              << " multi=" << rows[2].hits << "\n";
    std::abort();
  }

  const double naive_lps = rows[0].lines_per_sec;
  std::string json = util::format(
      "{\"bench\":\"perf_tagging\",\"workload\":\"%s\",\"lines\":%zu,"
      "\"tagged\":%zu,\"ablation\":[",
      workload, c.lines.size(), rows[0].hits);
  for (std::size_t i = 0; i < 3; ++i) {
    const Row& row = rows[i];
    const double speedup = naive_lps > 0 ? row.lines_per_sec / naive_lps : 1.0;
    std::cout << util::format("  %-9s  %10.0f lines/sec  (%.2fx naive)\n",
                              row.name, row.lines_per_sec, speedup);
    json += util::format(
        "%s{\"mode\":\"%s\",\"lines_per_sec\":%.1f,\"speedup\":%.3f}",
        i == 0 ? "" : ",", row.name, row.lines_per_sec, speedup);
  }
  json += "]}";
  std::ofstream os("BENCH_tagging.json", std::ios::app);
  if (os) os << json << "\n";
  std::cout << "(appended to BENCH_tagging.json)\n";
}

/// SIMD-level ablation of the tagging hot path: the same multi-mode
/// engine, timed once per supported WSS_SIMD level (the vector block
/// skip in LiteralScanner and the vectorized delimiter scans react to
/// simd::set_level at runtime). Tag counts are cross-checked across
/// levels -- a disagreement is a correctness bug, not a perf result --
/// and each row records its speedup over the scalar baseline. Appended
/// as JSON-lines to BENCH_simd.json.
void emit_simd_ablation(const char* workload, const Corpus& c, int reps = 3) {
  const simd::Level restore = simd::active_level();
  const auto lines = static_cast<double>(c.lines.size());
  const tag::TagEngine& engine = engine_for(tag::TagEngineMode::kMulti);

  struct Row {
    simd::Level level;
    double lines_per_sec = 0.0;
    std::size_t hits = 0;
  };
  std::vector<Row> rows;
  for (const simd::Level level : simd::supported_levels()) {
    rows.push_back({level});
  }

  std::cout << "\n==== SIMD ablation (multi engine, " << workload << ", "
            << c.lines.size() << " lines) ====\n";
  for (Row& row : rows) {
    simd::set_level(row.level);
    match::MatchScratch scratch;
    row.hits = tag_pass(c, engine, scratch);  // warm-up at this level
    double best_s = 1e300;
    for (int r = 0; r < reps; ++r) {
      const auto t0 = std::chrono::steady_clock::now();
      const std::size_t hits = tag_pass(c, engine, scratch);
      const auto t1 = std::chrono::steady_clock::now();
      if (hits != row.hits) std::abort();
      best_s =
          std::min(best_s, std::chrono::duration<double>(t1 - t0).count());
    }
    row.lines_per_sec = lines / best_s;
    if (row.hits != rows[0].hits) {
      std::cerr << "FATAL: level " << simd::level_name(row.level)
                << " tags " << row.hits << " lines, scalar tags "
                << rows[0].hits << "\n";
      std::abort();
    }
  }
  simd::set_level(restore);

  const double scalar_lps = rows[0].lines_per_sec;
  std::string json = util::format(
      "{\"bench\":\"perf_tagging\",\"layer\":\"tagging\",\"workload\":\"%s\","
      "\"lines\":%zu,\"tagged\":%zu,\"levels\":[",
      workload, c.lines.size(), rows[0].hits);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    const double speedup =
        scalar_lps > 0 ? row.lines_per_sec / scalar_lps : 1.0;
    std::cout << util::format("  %-7s  %10.0f lines/sec  (%.2fx scalar)\n",
                              simd::level_name(row.level), row.lines_per_sec,
                              speedup);
    json += util::format(
        "%s{\"level\":\"%s\",\"lines_per_sec\":%.1f,"
        "\"speedup_vs_scalar\":%.3f}",
        i == 0 ? "" : ",", simd::level_name(row.level), row.lines_per_sec,
        speedup);
  }
  json += "]}";
  std::ofstream os("BENCH_simd.json", std::ios::app);
  if (os) os << json << "\n";
  std::cout << "(appended to BENCH_simd.json)\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::cout << "==== Perf: tagging throughput (BG/L rules, "
            << mixed_corpus().lines.size() << " mixed / "
            << miss_corpus().lines.size() << " miss-only lines) ====\n\n";
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  emit_tagging_ablation("bgl mixed cap=2000 chatter=30000", mixed_corpus());
  emit_tagging_ablation("bgl miss-path (untagged lines only)", miss_corpus());
  emit_simd_ablation("bgl miss-path (untagged lines only)", miss_corpus());
  emit_simd_ablation("bgl mixed cap=2000 chatter=30000", mixed_corpus());
  // Attach the obs registry snapshot (wss_tag_* totals across every
  // ablation pass) as a machine-readable sibling of BENCH_tagging.json.
  obs::write_metrics_file("BENCH_tagging_metrics.json");
  std::cout << "(wrote BENCH_tagging_metrics.json)\n";
  return 0;
}
