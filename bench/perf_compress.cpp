// Perf: codec throughput and stage contributions on rendered log text
// (the Table 2 compression substrate).
#include <benchmark/benchmark.h>

#include <iostream>

#include "compress/codec.hpp"
#include "compress/huffman.hpp"
#include "compress/lzss.hpp"
#include "sim/generator.hpp"
#include "util/strings.hpp"

namespace {

using namespace wss;

const std::string& sample_log() {
  static const std::string text = [] {
    sim::SimOptions opts;
    opts.category_cap = 5000;
    opts.chatter_events = 20000;
    const sim::Simulator simulator(parse::SystemId::kSpirit, opts);
    std::string out;
    for (std::size_t i = 0; i < simulator.events().size(); ++i) {
      out.append(simulator.line(i));
      out.push_back('\n');
    }
    return out;
  }();
  return text;
}

void BM_LzssOnly(benchmark::State& state) {
  const auto& text = sample_log();
  for (auto _ : state) {
    benchmark::DoNotOptimize(compress::lzss_compress(text));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_LzssOnly);

void BM_FullCodec(benchmark::State& state) {
  const auto& text = sample_log();
  for (auto _ : state) {
    benchmark::DoNotOptimize(compress::compress(text));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_FullCodec);

void BM_Decompress(benchmark::State& state) {
  const std::string packed = compress::compress(sample_log());
  for (auto _ : state) {
    benchmark::DoNotOptimize(compress::decompress(packed));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sample_log().size()));
}
BENCHMARK(BM_Decompress);

}  // namespace

int main(int argc, char** argv) {
  const auto& text = sample_log();
  const std::string lzss = compress::lzss_compress(text);
  const std::string full = compress::compress(text);
  std::cout << "==== Perf: wss codec on rendered Spirit log text ====\n"
            << util::format(
                   "raw %zu B -> lzss %zu B (%.3f) -> +huffman %zu B "
                   "(%.3f)\n\n",
                   text.size(), lzss.size(),
                   static_cast<double>(lzss.size()) /
                       static_cast<double>(text.size()),
                   full.size(),
                   static_cast<double>(full.size()) /
                       static_cast<double>(text.size()));
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
