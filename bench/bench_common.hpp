// Shared setup for the reproduction benches.
//
// Every table/figure bench prints three things:
//   1. the reproduced artifact (aligned table or ASCII figure),
//   2. the paper's reference values alongside the measured ones,
//   3. a machine-readable CSV block bracketed by BEGIN/END markers.
#pragma once

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "core/experiments.hpp"
#include "core/parallel.hpp"
#include "core/report.hpp"
#include "core/study.hpp"
#include "util/strings.hpp"

namespace wss::bench {

/// Standard volume for the bench suite: large enough that every
/// calibrated number lands, small enough that the full suite runs in
/// well under a minute.
inline core::StudyOptions standard_options() {
  core::StudyOptions o;
  o.sim.category_cap = 100000;
  o.sim.chatter_events = 150000;
  return o;
}

/// Prints the standard bench header.
inline void header(const std::string& id, const std::string& what) {
  std::cout << "==== " << id << ": " << what << " ====\n"
            << "(What Supercomputers Say, DSN 2007 -- wss reproduction)\n\n";
}

inline void begin_csv(const std::string& id) {
  std::cout << "BEGIN CSV " << id << "\n";
}

inline void end_csv(const std::string& id) {
  std::cout << "END CSV " << id << "\n";
}

/// Threads sweep of the parallel pipeline on perf_parse's default
/// workload (Spirit, category_cap 3000 / chatter 20000): wall-clock
/// lines/sec at 1, 2, 4, and 8 threads, best of `reps`. Prints a
/// summary table and appends one JSON record per call to
/// BENCH_pipeline.json (JSON-lines: one self-contained object per
/// line, keyed by `bench`), so the perf trajectory across PRs is
/// machine-readable.
inline void emit_pipeline_threads_sweep(const std::string& bench_id,
                                        int reps = 3) {
  sim::SimOptions opts;
  opts.category_cap = 3000;
  opts.chatter_events = 20000;
  const sim::Simulator simulator(parse::SystemId::kSpirit, opts);
  const auto lines = static_cast<double>(simulator.events().size());

  std::cout << "\n==== Pipeline threads sweep (" << bench_id << ") ====\n";
  std::string json = util::format(
      "{\"bench\":\"%s\",\"workload\":\"spirit cap=3000 chatter=20000\","
      "\"lines\":%zu,\"sweep\":[",
      bench_id.c_str(), simulator.events().size());
  double serial_lps = 0.0;
  for (const int threads : {1, 2, 4, 8}) {
    core::PipelineOptions popts;
    popts.num_threads = threads;
    const core::ParallelPipeline pipeline(popts);
    double best_s = 1e300;
    for (int r = 0; r < reps; ++r) {
      const auto t0 = std::chrono::steady_clock::now();
      const auto result = pipeline.run(simulator);
      const auto t1 = std::chrono::steady_clock::now();
      // Keep the compiler honest: consume a result field.
      if (result.physical_messages == 0) std::abort();
      best_s = std::min(best_s,
                        std::chrono::duration<double>(t1 - t0).count());
    }
    const double lps = lines / best_s;
    if (threads == 1) serial_lps = lps;
    std::cout << util::format(
        "  threads=%d  %10.0f lines/sec  (%.3f s, speedup %.2fx)\n", threads,
        lps, best_s, serial_lps > 0 ? lps / serial_lps : 1.0);
    json += util::format("%s{\"threads\":%d,\"lines_per_sec\":%.1f}",
                         threads == 1 ? "" : ",", threads, lps);
  }
  json += "]}";
  std::ofstream os("BENCH_pipeline.json", std::ios::app);
  if (os) os << json << "\n";
  std::cout << "(appended to BENCH_pipeline.json)\n";
}

}  // namespace wss::bench
