// Shared setup for the reproduction benches.
//
// Every table/figure bench prints three things:
//   1. the reproduced artifact (aligned table or ASCII figure),
//   2. the paper's reference values alongside the measured ones,
//   3. a machine-readable CSV block bracketed by BEGIN/END markers.
#pragma once

#include <iostream>
#include <string>

#include "core/experiments.hpp"
#include "core/report.hpp"
#include "core/study.hpp"

namespace wss::bench {

/// Standard volume for the bench suite: large enough that every
/// calibrated number lands, small enough that the full suite runs in
/// well under a minute.
inline core::StudyOptions standard_options() {
  core::StudyOptions o;
  o.sim.category_cap = 100000;
  o.sim.chatter_events = 150000;
  return o;
}

/// Prints the standard bench header.
inline void header(const std::string& id, const std::string& what) {
  std::cout << "==== " << id << ": " << what << " ====\n"
            << "(What Supercomputers Say, DSN 2007 -- wss reproduction)\n\n";
}

inline void begin_csv(const std::string& id) {
  std::cout << "BEGIN CSV " << id << "\n";
}

inline void end_csv(const std::string& id) {
  std::cout << "END CSV " << id << "\n";
}

}  // namespace wss::bench
