// Reproduces Figure 4: categorized filtered alerts on Liberty over
// time. "The horizontal clusters of PBS_CHK and PBS_BFD messages are
// not evidence of poor filtering; they are actually instances of
// individual failures" -- the PBS task_check bug of Section 3.3.1.
#include "bench_common.hpp"

#include "tag/rulesets.hpp"
#include "util/chart.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"

int main() {
  using namespace wss;
  bench::header("Figure 4", "categorized filtered alerts on Liberty");
  core::Study study(bench::standard_options());
  const auto points = core::fig4(study);
  const auto cats = tag::categories_of(parse::SystemId::kLiberty);

  std::vector<double> times;
  std::vector<std::size_t> rows;
  std::vector<std::string> labels;
  for (const auto* c : cats) labels.push_back(c->name);
  const auto start = sim::system_spec(parse::SystemId::kLiberty).start_time();
  for (const auto& p : points) {
    times.push_back(static_cast<double>(p.time - start) / 86400e6);
    rows.push_back(p.category);
  }
  std::cout << util::strip_plot(times, rows, labels, 72)
            << "(x axis: days since collection start)\n\n";

  std::vector<std::size_t> per_cat(cats.size(), 0);
  for (const auto& p : points) ++per_cat[p.category];
  std::cout << "Filtered alerts per category (paper values in Table 4):\n";
  for (std::size_t c = 0; c < cats.size(); ++c) {
    std::cout << util::format("  %-10s %5zu (paper %llu)\n",
                              cats[c]->name.c_str(), per_cat[c],
                              static_cast<unsigned long long>(
                                  cats[c]->filtered_count));
  }
  std::cout << "Note the PBS_CHK/PBS_BFD concentration late in the window: "
               "the PBS bug that killed an estimated 1336 jobs.\n";

  bench::begin_csv("fig4");
  util::CsvWriter csv(std::cout);
  csv.row({"time", "category"});
  for (const auto& p : points) {
    csv.row({util::format_iso(p.time), cats[p.category]->name});
  }
  bench::end_csv("fig4");
  return 0;
}
