// Ablation (related work [27]/[23]): unsupervised template mining
// versus the expert catalog. An administrator of a new machine has no
// rule set; SLCT-style mining recovers the message shapes from the
// raw log. We mine a simulated Liberty log and check how well the
// mined templates align with the known catalog (6 alert categories +
// 13 chatter shapes).
#include "bench_common.hpp"

#include "mine/templates.hpp"
#include "tag/engine.hpp"
#include "tag/rulesets.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"

int main() {
  using namespace wss;
  bench::header("Ablation: template mining", "unsupervised vs expert rules");

  sim::SimOptions sopts;
  sopts.category_cap = 20000;
  sopts.chatter_events = 60000;
  sopts.inject_corruption = false;
  const sim::Simulator simulator(parse::SystemId::kLiberty, sopts);

  mine::MinerOptions opts;
  opts.min_support = 50;
  opts.min_template_count = 50;
  opts.skip_positions = 4;  // syslog "Mon dd HH:MM:SS host" header
  mine::TemplateMiner miner(opts);
  std::vector<std::string> lines;
  lines.reserve(simulator.events().size());
  for (std::size_t i = 0; i < simulator.events().size(); ++i) {
    lines.push_back(simulator.line(i));
    miner.learn(lines.back());
  }
  miner.freeze();
  for (const auto& line : lines) miner.digest(line);
  const auto templates = miner.templates();

  // How many mined templates correspond to expert alert rules?
  const tag::TagEngine engine(tag::build_ruleset(parse::SystemId::kLiberty));
  std::size_t alert_templates = 0;
  std::size_t covered = 0;
  std::cout << "Top mined templates:\n";
  bench::begin_csv("mining");
  util::CsvWriter csv(std::cout);
  csv.row({"count", "is_alert_shape", "template"});
  for (std::size_t i = 0; i < templates.size(); ++i) {
    const auto& t = templates[i];
    covered += t.count;
    const bool is_alert = engine.tag_line(t.pattern).has_value();
    alert_templates += is_alert ? 1 : 0;
    csv.row({std::to_string(t.count), is_alert ? "yes" : "no", t.pattern});
    if (i < 12) {
      std::cout << util::format("  %7zu %s %s\n", t.count,
                                is_alert ? "[ALERT]" : "       ",
                                t.pattern.c_str());
    }
  }
  bench::end_csv("mining");

  std::cout << util::format(
      "\n%zu templates mined from %zu lines (%.1f%% coverage); %zu of them "
      "still match an expert alert rule.\n",
      templates.size(), lines.size(),
      100.0 * static_cast<double>(covered) /
          static_cast<double>(lines.size()),
      alert_templates);
  std::cout << "Reading: mining recovers the message vocabulary without "
               "expert help, but cannot decide which shapes *matter* -- "
               "that judgment (Section 3.2's tagging) still needs the "
               "administrators.\n";
  return 0;
}
