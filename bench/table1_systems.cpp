// Reproduces Table 1: system characteristics at the time of
// collection (static data quoted from the paper / Top500 June 2006).
#include "bench_common.hpp"

#include "sim/spec.hpp"
#include "util/csv.hpp"

int main() {
  using namespace wss;
  bench::header("Table 1", "system characteristics");
  std::cout << core::render_table1() << "\n";

  bench::begin_csv("table1");
  util::CsvWriter csv(std::cout);
  csv.row({"system", "owner", "vendor", "rank", "procs", "memory_gb",
           "interconnect"});
  for (const auto id : parse::kAllSystems) {
    const auto& s = sim::system_spec(id);
    csv.row({std::string(parse::system_name(id)), std::string(s.owner),
             std::string(s.vendor), std::to_string(s.top500_rank),
             std::to_string(s.procs), std::to_string(s.memory_gb),
             std::string(s.interconnect)});
  }
  bench::end_csv("table1");
  return 0;
}
