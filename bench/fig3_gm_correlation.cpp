// Reproduces Figure 3: the two related Liberty alert classes GM_PAR
// and GM_LANAI. "Notice that GM_LANAI messages do not always follow
// GM_PAR messages, nor vice versa. However, the correlation is clear."
#include "bench_common.hpp"

#include "util/strings.hpp"

#include "util/chart.hpp"
#include "util/csv.hpp"

int main() {
  using namespace wss;
  bench::header("Figure 3", "correlated GM_PAR / GM_LANAI alerts on Liberty");
  core::Study study(bench::standard_options());
  const auto d = core::fig3(study);

  // Strip plot over the collection window.
  std::vector<double> times;
  std::vector<std::size_t> rows;
  for (const auto t : d.gm_par) {
    times.push_back(static_cast<double>(t) / 86400e6);
    rows.push_back(0);
  }
  for (const auto t : d.gm_lanai) {
    times.push_back(static_cast<double>(t) / 86400e6);
    rows.push_back(1);
  }
  std::cout << util::strip_plot(times, rows, {"GM_PAR", "GM_LANAI"}, 72)
            << "\n";

  std::cout << util::format(
      "GM_PAR events: %zu (paper: 44)   GM_LANAI events: %zu (paper: 13)\n"
      "P(LANAI within 10 min of a PAR)  = %.2f\n"
      "P(PAR within 10 min of a LANAI)  = %.2f\n"
      "peak binned cross-correlation    = %.2f\n"
      "-> correlated (both directions > 0.3) but asymmetric "
      "(neither = 1.0): %s\n",
      d.gm_par.size(), d.gm_lanai.size(), d.cooccur_lanai_to_par,
      d.cooccur_par_to_lanai, d.peak_cross_correlation,
      (d.cooccur_lanai_to_par > 0.3 && d.cooccur_par_to_lanai < 1.0)
          ? "REPRODUCED"
          : "NOT reproduced");

  bench::begin_csv("fig3");
  util::CsvWriter csv(std::cout);
  csv.row({"category", "time"});
  for (const auto t : d.gm_par) {
    csv.row({"GM_PAR", util::format_iso(t)});
  }
  for (const auto t : d.gm_lanai) {
    csv.row({"GM_LANAI", util::format_iso(t)});
  }
  bench::end_csv("fig3");
  return 0;
}
