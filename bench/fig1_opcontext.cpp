// Reproduces Figure 1: the operational-context state machine that the
// paper proposes logging ("it may be sufficient to record only a few
// bytes of data: the time and cause of system state changes"), the
// RAS metrics it underpins, and the Section 3.2.1 disambiguation
// example.
#include "bench_common.hpp"

#include "util/strings.hpp"

#include "sim/opcontext.hpp"
#include "util/csv.hpp"

int main() {
  using namespace wss;
  bench::header("Figure 1", "operational context and RAS metrics");

  const auto& spec = sim::system_spec(parse::SystemId::kRedStorm);
  util::Rng rng(42);
  const auto tl = sim::OpContextTimeline::generate(spec, rng);

  std::cout << "State diagram (Figure 1):\n"
            << "  production <-> scheduled downtime (PM, upgrades)\n"
            << "  production  -> unscheduled downtime (failures) -> "
               "production\n"
            << "  production <-> engineering (dedicated system test)\n\n";

  std::cout << "First 12 logged transitions (time, new state, cause):\n";
  std::size_t shown = 0;
  for (const auto& tr : tl.transitions()) {
    if (shown++ >= 12) break;
    std::cout << "  " << util::format_iso(tr.time) << "  ->  "
              << sim::op_state_name(tr.to) << "  (" << tr.cause << ")\n";
  }

  const auto m = tl.metrics();
  std::cout << util::format(
      "\nRAS metrics over %d days:\n"
      "  production          %6.2f%%\n"
      "  scheduled downtime  %6.2f%%\n"
      "  unscheduled downtime%6.2f%%\n"
      "  engineering         %6.2f%%\n"
      "  availability        %6.3f\n"
      "  unscheduled outages %zu (MTBF %.1f h)\n",
      spec.days, 100 * m.production_fraction, 100 * m.scheduled_fraction,
      100 * m.unscheduled_fraction, 100 * m.engineering_fraction,
      m.availability, m.unscheduled_outages, m.mtbf_hours);

  // The Section 3.2.1 disambiguation example.
  const util::TimeUs pm = tl.transitions().front().time + util::kUsPerHour;
  const util::TimeUs prod = tl.start() + util::kUsPerHour;
  std::cout
      << "\nDisambiguation example (Section 3.2.1):\n"
      << "  message: 'BGLMASTER FAILURE ciodb exited normally with exit "
         "code 0'\n"
      << "  at " << util::format_iso(pm) << " (state: "
      << sim::op_state_name(tl.state_at(pm))
      << ") -> harmless artifact of maintenance\n"
      << "  at " << util::format_iso(prod) << " (state: "
      << sim::op_state_name(tl.state_at(prod))
      << ") -> all running jobs were killed\n";

  bench::begin_csv("fig1");
  util::CsvWriter csv(std::cout);
  csv.row({"time", "state", "cause"});
  for (const auto& tr : tl.transitions()) {
    csv.row({util::format_iso(tr.time),
             std::string(sim::op_state_name(tr.to)), tr.cause});
  }
  bench::end_csv("fig1");
  return 0;
}
