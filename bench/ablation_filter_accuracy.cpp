// Ablation X2: accuracy of serial vs simultaneous filtering against
// ground truth on all five systems. Reproduces the Section 3.3.2
// claim: "At most one true positive was removed on any single machine,
// whereas sometimes dozens of false positives were removed by using
// our filter instead of the serial algorithm."
#include "bench_common.hpp"

#include "util/strings.hpp"

#include "filter/score.hpp"
#include "filter/serial.hpp"
#include "filter/simultaneous.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main() {
  using namespace wss;
  bench::header("Ablation: filter accuracy", "serial vs simultaneous");
  core::Study study(bench::standard_options());

  util::Table t({"System", "Failures", "Serial kept", "Serial FP",
                 "Serial TP lost", "Simul kept", "Simul FP",
                 "Simul TP lost"});
  bool claim_tp = true;
  bool claim_fp = false;

  bench::begin_csv("filter_accuracy");
  util::CsvWriter csv(std::cout);
  csv.row({"system", "failures", "serial_kept", "serial_fp", "serial_tp_lost",
           "simul_kept", "simul_fp", "simul_tp_lost"});
  for (const auto id : parse::kAllSystems) {
    const auto alerts = study.simulator(id).ground_truth_alerts();
    filter::SerialFilter serial(study.threshold());
    filter::SimultaneousFilter simultaneous(study.threshold());
    const auto s = filter::score_filter(serial, alerts);
    const auto x = filter::score_filter(simultaneous, alerts);
    if (x.true_positives_lost > s.true_positives_lost + 1) claim_tp = false;
    if (s.false_positives_kept >= x.false_positives_kept + 12) {
      claim_fp = true;
    }
    t.add_row({std::string(parse::system_name(id)),
               std::to_string(s.failures_total),
               std::to_string(s.kept_alerts),
               std::to_string(s.false_positives_kept),
               std::to_string(s.true_positives_lost),
               std::to_string(x.kept_alerts),
               std::to_string(x.false_positives_kept),
               std::to_string(x.true_positives_lost)});
    csv.row({std::string(parse::system_short_name(id)),
             std::to_string(s.failures_total), std::to_string(s.kept_alerts),
             std::to_string(s.false_positives_kept),
             std::to_string(s.true_positives_lost),
             std::to_string(x.kept_alerts),
             std::to_string(x.false_positives_kept),
             std::to_string(x.true_positives_lost)});
  }
  bench::end_csv("filter_accuracy");
  std::cout << "\n" << t.render();
  std::cout << util::format(
      "\nClaims: <=1 extra TP lost per machine: %s; dozens fewer FPs on "
      "some machine: %s\n",
      claim_tp ? "REPRODUCED" : "NOT reproduced",
      claim_fp ? "REPRODUCED" : "NOT reproduced");
  return 0;
}
