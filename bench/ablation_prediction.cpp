// Ablation (Section 5, "Predict Failures"): single-feature predictors
// vs the per-category ensemble. "Prediction efforts must account for
// significant shifts in system behavior ... predictors should
// specialize in sets of failures with similar predictive behaviors."
//
// Protocol: per system, train on the first 60% of the collection
// window (fit precursor pairs, periodicity, and the ensemble routing),
// evaluate on the remaining 40% against ground-truth failure onsets.
#include "bench_common.hpp"

#include "predict/ensemble.hpp"
#include "predict/periodic.hpp"
#include "predict/precursor.hpp"
#include "predict/rate_burst.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace wss;
  bench::header("Ablation: failure prediction",
                "single-feature predictors vs per-category ensemble");
  core::Study study(bench::standard_options());

  util::Table t({"System", "Predictor", "Predictions", "Precision",
                 "Recall", "F1"});
  bench::begin_csv("prediction");
  util::CsvWriter csv(std::cout);
  csv.row({"system", "predictor", "predictions", "precision", "recall",
           "f1"});

  bool ensemble_dominates = true;
  for (const auto id : parse::kAllSystems) {
    const auto& spec = sim::system_spec(id);
    const auto all = study.simulator(id).ground_truth_alerts();
    const util::TimeUs split =
        spec.start_time() + (spec.end_time() - spec.start_time()) * 6 / 10;
    std::vector<filter::Alert> train;
    std::vector<filter::Alert> test;
    for (const auto& a : all) (a.time < split ? train : test).push_back(a);
    const auto incidents = predict::ground_truth_incidents(test);
    if (incidents.empty() || train.empty()) continue;

    auto rate = std::make_unique<predict::RateBurstPredictor>();
    auto precursor = std::make_unique<predict::PrecursorPredictor>();
    precursor->fit(train);
    auto periodic = std::make_unique<predict::PeriodicPredictor>();
    periodic->fit(train);

    double best_single = 0.0;
    const auto report = [&](const char* name, predict::Predictor& p,
                            bool single) {
      const auto score = predict::score_predictions(
          predict::run_predictor(p, test), incidents);
      if (single) best_single = std::max(best_single, score.f1());
      t.add_row({std::string(parse::system_name(id)), name,
                 std::to_string(score.predictions),
                 util::format("%.2f", score.precision()),
                 util::format("%.2f", score.recall()),
                 util::format("%.2f", score.f1())});
      csv.row({std::string(parse::system_short_name(id)), name,
               std::to_string(score.predictions),
               util::format("%.4f", score.precision()),
               util::format("%.4f", score.recall()),
               util::format("%.4f", score.f1())});
      return score.f1();
    };
    report("rate-burst", *rate, true);
    report("precursor", *precursor, true);
    report("periodic", *periodic, true);

    std::vector<std::unique_ptr<predict::Predictor>> members;
    members.push_back(std::move(rate));
    members.push_back(std::move(precursor));
    members.push_back(std::move(periodic));
    predict::EnsemblePredictor ensemble(std::move(members));
    ensemble.fit_routing(train);
    const double f1 = report("ensemble", ensemble, false);
    // The comparison is against the best member chosen WITH HINDSIGHT;
    // the ensemble must get close to it without knowing which feature
    // works on this machine. Below the noise floor, everything ties.
    if (best_single >= 0.05 && f1 < 0.85 * best_single) {
      ensemble_dominates = false;
    }
    t.add_separator();
  }
  bench::end_csv("prediction");
  std::cout << "\n" << t.render();
  std::cout << util::format(
      "\nEnsemble within 15%% of the best hindsight-chosen single\n"
      "predictor on every system, without knowing which feature works\n"
      "where: %s\n"
      "(Low absolute recall matches the paper: many failure categories\n"
      "carry no predictive signature at all, and no single feature\n"
      "covers every machine -- hence the ensemble recommendation.)\n",
      ensemble_dominates ? "REPRODUCED" : "NOT reproduced");
  return 0;
}
