// Ablation (Section 5, "Predict Failures"): single-feature predictors
// vs the per-category ensemble. "Prediction efforts must account for
// significant shifts in system behavior ... predictors should
// specialize in sets of failures with similar predictive behaviors."
//
// Protocol: per system, train on the first 60% of the collection
// window (fit precursor pairs, periodicity, and the ensemble routing),
// evaluate on the remaining 40% against ground-truth failure onsets.
//
// A second, online section replays the same protocol through
// stream::StreamPipeline with the prediction stage enabled (the
// `wss stream --predict` path): train_alerts is sized by a pre-pass so
// the stage fits at the same 60% time boundary, and per-system
// precision / recall / median lead time land in BENCH_prediction.json
// (JSON-lines, like BENCH_stream.json) for the cross-PR trajectory.
#include "bench_common.hpp"

#include "obs/metrics.hpp"
#include "predict/ensemble.hpp"
#include "predict/periodic.hpp"
#include "predict/precursor.hpp"
#include "predict/rate_burst.hpp"
#include "stream/pipeline.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

/// Median of a fixed-bucket histogram delta, linearly interpolated
/// inside the median bucket (+Inf bucket reports the last bound --
/// lead times above 4h saturate the operational scale anyway).
double bucket_median(const std::vector<double>& bounds,
                     const std::vector<std::uint64_t>& counts) {
  std::uint64_t total = 0;
  for (const auto c : counts) total += c;
  if (total == 0) return 0.0;
  const double target = static_cast<double>(total) / 2.0;
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    cum += counts[i];
    if (static_cast<double>(cum) >= target) {
      const double lo = i == 0 ? 0.0 : bounds[i - 1];
      const double hi = i < bounds.size() ? bounds[i] : bounds.back();
      const double frac =
          (target - static_cast<double>(cum - counts[i])) /
          static_cast<double>(counts[i]);
      return lo + (hi - lo) * frac;
    }
  }
  return bounds.back();
}

}  // namespace

int main() {
  using namespace wss;
  bench::header("Ablation: failure prediction",
                "single-feature predictors vs per-category ensemble");
  core::Study study(bench::standard_options());

  util::Table t({"System", "Predictor", "Predictions", "Precision",
                 "Recall", "F1"});
  bench::begin_csv("prediction");
  util::CsvWriter csv(std::cout);
  csv.row({"system", "predictor", "predictions", "precision", "recall",
           "f1"});

  bool ensemble_dominates = true;
  for (const auto id : parse::kAllSystems) {
    const auto& spec = sim::system_spec(id);
    const auto all = study.simulator(id).ground_truth_alerts();
    const util::TimeUs split =
        spec.start_time() + (spec.end_time() - spec.start_time()) * 6 / 10;
    std::vector<filter::Alert> train;
    std::vector<filter::Alert> test;
    for (const auto& a : all) (a.time < split ? train : test).push_back(a);
    const auto incidents = predict::ground_truth_incidents(test);
    if (incidents.empty() || train.empty()) continue;

    auto rate = std::make_unique<predict::RateBurstPredictor>();
    auto precursor = std::make_unique<predict::PrecursorPredictor>();
    precursor->fit(train);
    auto periodic = std::make_unique<predict::PeriodicPredictor>();
    periodic->fit(train);

    double best_single = 0.0;
    const auto report = [&](const char* name, predict::Predictor& p,
                            bool single) {
      const auto score = predict::score_predictions(
          predict::run_predictor(p, test), incidents);
      if (single) best_single = std::max(best_single, score.f1());
      t.add_row({std::string(parse::system_name(id)), name,
                 std::to_string(score.predictions),
                 util::format("%.2f", score.precision()),
                 util::format("%.2f", score.recall()),
                 util::format("%.2f", score.f1())});
      csv.row({std::string(parse::system_short_name(id)), name,
               std::to_string(score.predictions),
               util::format("%.4f", score.precision()),
               util::format("%.4f", score.recall()),
               util::format("%.4f", score.f1())});
      return score.f1();
    };
    report("rate-burst", *rate, true);
    report("precursor", *precursor, true);
    report("periodic", *periodic, true);

    std::vector<std::unique_ptr<predict::Predictor>> members;
    members.push_back(std::move(rate));
    members.push_back(std::move(precursor));
    members.push_back(std::move(periodic));
    predict::EnsemblePredictor ensemble(std::move(members));
    ensemble.fit_routing(train);
    const double f1 = report("ensemble", ensemble, false);
    // The comparison is against the best member chosen WITH HINDSIGHT;
    // the ensemble must get close to it without knowing which feature
    // works on this machine. Below the noise floor, everything ties.
    if (best_single >= 0.05 && f1 < 0.85 * best_single) {
      ensemble_dominates = false;
    }
    t.add_separator();
  }
  bench::end_csv("prediction");
  std::cout << "\n" << t.render();

  // ---- Online section: the same protocol through the streaming
  // prediction stage (`wss stream --predict`). ----
#ifndef WSS_PREDICT_OFF
  std::cout << "\n==== Online: StreamPipeline --predict ====\n";
  util::Table ot({"System", "Issued", "Precision", "Recall(test)",
                  "MedLead(s)", "Rules", "Incidents"});
  obs::Histogram& lead_hist = obs::registry().histogram(
      "wss_predict_lead_time_seconds", obs::lead_time_bounds_seconds());
  std::string json = util::format(
      "{\"bench\":\"ablation_prediction\",\"mode\":\"online\","
      "\"workload\":\"cap=%zu chatter=%zu\",\"systems\":[",
      bench::standard_options().sim.category_cap,
      bench::standard_options().sim.chatter_events);
  bool json_first = true;
  for (const auto id : parse::kAllSystems) {
    const auto& simulator = study.simulator(id);
    const auto& events = simulator.events();
    if (events.empty()) continue;
    const auto& spec = sim::system_spec(id);
    const util::TimeUs split =
        spec.start_time() + (spec.end_time() - spec.start_time()) * 6 / 10;

    // Pre-pass: how many raw alerts does the pipeline itself offer
    // before the 60% boundary? That count, as train_alerts, makes the
    // online stage fit at the batch protocol's train/test cut.
    std::uint64_t train_alerts = 0;
    {
      stream::StreamPipeline pre(id);
      for (std::size_t i = 0; i < events.size(); ++i) {
        if (events[i].time >= split) break;
        pre.ingest(events[i], simulator.line(i));
      }
      pre.finish();
      train_alerts = pre.snapshot().alerts_offered;
    }
    if (train_alerts == 0) continue;

    const auto lead_before = lead_hist.bucket_counts();
    stream::StreamPipelineOptions popts;
    popts.predict.enabled = true;
    popts.predict.train_alerts = train_alerts;
    stream::StreamPipeline pipeline(id, popts);
    std::uint64_t incidents_at_fit = 0;
    bool seen_fit = false;
    for (std::size_t i = 0; i < events.size(); ++i) {
      pipeline.ingest(events[i], simulator.line(i));
      if (!seen_fit && pipeline.predict_stage()->fitted()) {
        seen_fit = true;
        incidents_at_fit = pipeline.predict_stage()->stats().incidents;
      }
    }
    pipeline.finish();
    const auto snap = pipeline.snapshot();
    const auto lead_after = lead_hist.bucket_counts();
    std::vector<std::uint64_t> lead_delta(lead_after.size(), 0);
    for (std::size_t i = 0; i < lead_after.size(); ++i) {
      lead_delta[i] = lead_after[i] - lead_before[i];
    }
    const double median_lead =
        bucket_median(lead_hist.bounds(), lead_delta);

    // Pre-fit incidents are unpredictable by construction (the stage
    // is still training), so test recall excludes them; precision is
    // over issued predictions, all of which are post-fit.
    const std::uint64_t issued = snap.predict_issued;
    const std::uint64_t test_incidents =
        snap.predict_incidents - incidents_at_fit;
    const double precision =
        issued == 0 ? 0.0
                    : static_cast<double>(issued - snap.predict_false_alarms) /
                          static_cast<double>(issued);
    const double recall =
        test_incidents == 0
            ? 0.0
            : static_cast<double>(snap.predict_hits) /
                  static_cast<double>(test_incidents);

    ot.add_row({std::string(parse::system_name(id)), std::to_string(issued),
                util::format("%.2f", precision), util::format("%.2f", recall),
                util::format("%.0f", median_lead),
                std::to_string(snap.predict_rules),
                std::to_string(snap.predict_incidents)});
    json += util::format(
        "%s{\"system\":\"%s\",\"train_alerts\":%llu,\"issued\":%llu,"
        "\"hits\":%llu,\"misses\":%llu,\"false_alarms\":%llu,"
        "\"incidents\":%llu,\"test_incidents\":%llu,\"rules\":%zu,"
        "\"precision\":%.4f,\"recall\":%.4f,\"lead_time_median_s\":%.1f}",
        json_first ? "" : ",",
        std::string(parse::system_short_name(id)).c_str(),
        static_cast<unsigned long long>(train_alerts),
        static_cast<unsigned long long>(issued),
        static_cast<unsigned long long>(snap.predict_hits),
        static_cast<unsigned long long>(snap.predict_misses),
        static_cast<unsigned long long>(snap.predict_false_alarms),
        static_cast<unsigned long long>(snap.predict_incidents),
        static_cast<unsigned long long>(test_incidents), snap.predict_rules,
        precision, recall, median_lead);
    json_first = false;
  }
  json += "]}";
  std::cout << ot.render();
  {
    std::ofstream os("BENCH_prediction.json", std::ios::app);
    if (os) os << json << "\n";
  }
  std::cout << "(appended to BENCH_prediction.json)\n";
#else
  std::cout << "\n(online section skipped: WSS_PREDICT_OFF build)\n";
#endif
  std::cout << util::format(
      "\nEnsemble within 15%% of the best hindsight-chosen single\n"
      "predictor on every system, without knowing which feature works\n"
      "where: %s\n"
      "(Low absolute recall matches the paper: many failure categories\n"
      "carry no predictive signature at all, and no single feature\n"
      "covers every machine -- hence the ensemble recommendation.)\n",
      ensemble_dominates ? "REPRODUCED" : "NOT reproduced");
  return 0;
}
