// Ablation X5: corruption and transport-loss sensitivity. Section
// 3.2.1 documents truncated, partially overwritten, and incorrectly
// timestamped messages; syslog's UDP transport drops messages under
// contention. This bench sweeps corruption rates and measures what an
// automated tagger loses.
#include "bench_common.hpp"

#include "util/strings.hpp"

#include "parse/dispatch.hpp"
#include "sim/transport.hpp"
#include "tag/engine.hpp"
#include "tag/evaluate.hpp"
#include "tag/rulesets.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main() {
  using namespace wss;
  bench::header("Ablation: corruption & transport", "tagging under damage");

  sim::SimOptions opts;
  opts.category_cap = 20000;
  opts.chatter_events = 40000;
  opts.inject_corruption = false;  // we corrupt explicitly below
  const sim::Simulator simulator(parse::SystemId::kThunderbird, opts);
  const tag::TagEngine engine(
      tag::build_ruleset(parse::SystemId::kThunderbird));

  util::Table t({"Corruption rate", "FN rate %", "FP rate %",
                 "Unattributable %", "Bad timestamp %"});
  bench::begin_csv("corruption_sweep");
  util::CsvWriter csv(std::cout);
  csv.row({"rate", "fn_rate", "fp_rate", "unattributable", "bad_timestamp"});

  for (const double rate : {0.0, 0.001, 0.01, 0.05, 0.2}) {
    sim::CorruptionConfig cfg;
    cfg.p_truncate = rate;
    cfg.p_overwrite = rate / 4;
    cfg.p_bad_timestamp = rate / 4;
    cfg.p_bad_source = rate;
    cfg.alerts_exempt = false;  // corrupt everything, alerts included
    const sim::CorruptionInjector injector(cfg, 99);

    tag::TaggerEvaluation eval;
    std::uint64_t unattributable = 0;
    std::uint64_t bad_ts = 0;
    const auto& events = simulator.events();
    for (std::size_t i = 0; i < events.size(); ++i) {
      const auto& e = events[i];
      const std::string line = injector.apply(
          simulator.renderer().render_clean(e, i), i,
          simulator.renderer().path_of(e), e.is_alert());
      const auto rec =
          parse::parse_line(parse::SystemId::kThunderbird, line,
                            util::to_civil(e.time).year);
      if (rec.source_corrupted) ++unattributable;
      if (!rec.timestamp_valid) ++bad_ts;
      eval.add(engine.tag(rec).has_value(), e.is_alert());
    }
    const double n = static_cast<double>(events.size());
    t.add_row({util::format("%.3f", rate),
               util::format("%.3f", 100 * eval.false_negative_rate()),
               util::format("%.3f", 100 * eval.false_positive_rate()),
               util::format("%.3f", 100 * static_cast<double>(unattributable) / n),
               util::format("%.3f", 100 * static_cast<double>(bad_ts) / n)});
    csv.row_numeric({rate, eval.false_negative_rate(),
                     eval.false_positive_rate(),
                     static_cast<double>(unattributable) / n,
                     static_cast<double>(bad_ts) / n});
  }
  bench::end_csv("corruption_sweep");
  std::cout << "\n" << t.render();
  std::cout << "\nParsing never crashes; corruption converts alerts into "
               "silent misses (FN) roughly in proportion to the truncation "
               "rate -- the automated-tagging hazard of Section 3.2.1.\n\n";

  // UDP transport loss under contention.
  sim::UdpConfig udp;
  util::Rng rng(7);
  sim::TransportStats stats;
  (void)sim::apply_udp_loss(simulator.events(), udp, rng, &stats);
  std::cout << util::format(
      "UDP path loss at default contention model: %.3f%% of %llu offered "
      "messages (clusters in alert storms; the TCP RAS path loses none).\n",
      100 * stats.loss_rate(),
      static_cast<unsigned long long>(stats.offered));
  return 0;
}
