// Ablation X3: "a filtering threshold must be selected in advance and
// is then applied across all kinds of alerts. In reality, each alert
// category may require a different threshold." Sweeps the global T and
// compares against data-driven per-category thresholds.
#include "bench_common.hpp"

#include "util/strings.hpp"

#include "filter/adaptive.hpp"
#include "filter/score.hpp"
#include "filter/simultaneous.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main() {
  using namespace wss;
  bench::header("Ablation: threshold sweep", "global T vs per-category T");
  core::Study study(bench::standard_options());
  const auto alerts =
      study.simulator(parse::SystemId::kBlueGeneL).ground_truth_alerts();

  util::Table t({"T (s)", "Kept", "Failures repr.", "TP lost", "FP kept"});
  bench::begin_csv("threshold_sweep");
  util::CsvWriter csv(std::cout);
  csv.row({"threshold_s", "kept", "failures_represented", "tp_lost",
           "fp_kept"});
  for (const double seconds : {0.5, 1.0, 2.0, 5.0, 10.0, 30.0, 60.0, 300.0}) {
    filter::SimultaneousFilter f(
        static_cast<util::TimeUs>(seconds * 1e6));
    const auto s = filter::score_filter(f, alerts);
    t.add_row({util::format("%.1f", seconds), std::to_string(s.kept_alerts),
               std::to_string(s.failures_represented),
               std::to_string(s.true_positives_lost),
               std::to_string(s.false_positives_kept)});
    csv.row_numeric({seconds, static_cast<double>(s.kept_alerts),
                     static_cast<double>(s.failures_represented),
                     static_cast<double>(s.true_positives_lost),
                     static_cast<double>(s.false_positives_kept)});
  }
  bench::end_csv("threshold_sweep");
  std::cout << "\nGlobal threshold sweep (BG/L ground-truth alerts):\n"
            << t.render();

  // Per-category adaptive thresholds.
  const auto thresholds = filter::suggest_thresholds(alerts);
  filter::AdaptiveFilter adaptive(thresholds, study.threshold());
  const auto a = filter::score_filter(adaptive, alerts);
  filter::SimultaneousFilter fixed(study.threshold());
  const auto fx = filter::score_filter(fixed, alerts);
  std::cout << util::format(
      "\nPer-category adaptive thresholds (%zu categories tuned):\n"
      "  fixed T=5s : kept %zu, TP lost %zu, FP kept %zu\n"
      "  adaptive   : kept %zu, TP lost %zu, FP kept %zu\n"
      "-> adaptive removes the leaky-chain redundancy the fixed threshold "
      "misses: %s\n",
      thresholds.size(), fx.kept_alerts, fx.true_positives_lost,
      fx.false_positives_kept, a.kept_alerts, a.true_positives_lost,
      a.false_positives_kept,
      a.false_positives_kept < fx.false_positives_kept ? "REPRODUCED"
                                                       : "NOT reproduced");
  return 0;
}
