// Reproduces Figure 2(b): Liberty's message count by source, sorted by
// decreasing quantity. "The most prolific sources were administrative
// nodes or those with significant problems. The cluster at the bottom
// is from the set of messages whose source field was corrupted,
// thwarting attribution."
#include "bench_common.hpp"

#include <cmath>

#include "util/chart.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"

int main() {
  using namespace wss;
  bench::header("Figure 2(b)", "Liberty messages by source (sorted)");
  core::Study study(bench::standard_options());
  const auto d = core::fig2b(study);

  std::cout << "Top 10 sources (weighted message counts):\n";
  for (std::size_t i = 0; i < std::min<std::size_t>(10, d.sources.size());
       ++i) {
    std::cout << util::format("  %-12s %14s\n", d.sources[i].first.c_str(),
                              util::with_commas(static_cast<std::int64_t>(
                                  d.sources[i].second)).c_str());
  }
  std::cout << util::format(
      "  %-12s %14s   <- the corrupted-source cluster\n", "(corrupted)",
      util::with_commas(static_cast<std::int64_t>(d.corrupted_weight))
          .c_str());

  // Log-scale rank plot.
  std::vector<double> xs;
  std::vector<double> ys;
  for (std::size_t i = 0; i < d.sources.size(); ++i) {
    xs.push_back(static_cast<double>(i));
    ys.push_back(std::log10(std::max(1.0, d.sources[i].second)));
  }
  std::cout << "\nlog10(messages) by source rank:\n"
            << util::scatter(xs, ys, 72, 16) << "\n";

  bench::begin_csv("fig2b");
  util::CsvWriter csv(std::cout);
  csv.row({"rank", "source", "weighted_messages"});
  for (std::size_t i = 0; i < d.sources.size(); ++i) {
    csv.row({std::to_string(i), d.sources[i].first,
             util::format("%.1f", d.sources[i].second)});
  }
  csv.row({std::to_string(d.sources.size()), "(corrupted)",
           util::format("%.1f", d.corrupted_weight)});
  bench::end_csv("fig2b");
  return 0;
}
