// Distributed study performance: split + workers + merge wall time
// versus a single-process study at the same (golden) configuration.
//
// Three timed phases over one full five-system study:
//   1. baseline -- one in-process Study renders every artifact;
//   2. plan     -- plan_split + write_manifest (the coordinator cost);
//   3. execute  -- N sequential workers, then merge (worst case: a
//      single machine paying the full protocol overhead with zero
//      parallel speedup, so overhead_x is an upper bound).
//
// The merged artifacts are byte-compared against the baseline's: the
// bench double-checks the equivalence contract while timing it, and
// FAILs on any divergence. Appends one JSON-lines record to
// BENCH_dist.json so the overhead trajectory across PRs is
// machine-readable.
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/golden.hpp"
#include "dist/manifest.hpp"
#include "dist/merge.hpp"
#include "dist/split.hpp"
#include "dist/worker.hpp"
#include "util/strings.hpp"

namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::string read_file(const fs::path& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream ss;
  ss << is.rdbuf();
  return std::move(ss).str();
}

}  // namespace

int main() {
  using namespace wss;

  std::cout << "==== perf_dist: split/worker/merge vs single-process ====\n";

  constexpr std::uint32_t kSplits = 4;
  const auto golden_opts = core::golden_study_options();

  const fs::path root =
      fs::temp_directory_path() /
      ("wss_perf_dist_" + std::to_string(::getpid()));
  const fs::path baseline_dir = root / "baseline";
  const fs::path manifest_dir = root / "manifest";
  fs::remove_all(root);
  fs::create_directories(root);

  // Phase 1: single-process baseline (simulate + pipeline + render).
  const auto t_base = Clock::now();
  core::Study baseline(golden_opts);
  const std::size_t baseline_artifacts = core::write_artifacts(
      baseline, baseline_dir.string(), [](const core::GoldenArtifact&) {
        return true;
      });
  const double baseline_s = seconds_since(t_base);

  // Phase 2: plan. Category routing is the most expensive axis (it
  // reads every chunk's ground truth), so it is the one worth timing.
  const auto t_plan = Clock::now();
  dist::SplitOptions split;
  split.axis = dist::SplitAxis::kCategory;
  split.num_splits = kSplits;
  split.study = golden_opts;
  const dist::StudyManifest planned = dist::plan_split(split);
  dist::write_manifest(planned, manifest_dir.string());
  const double plan_s = seconds_since(t_plan);

  // Phase 3: N workers back-to-back, then merge. Workers re-simulate
  // their systems from the manifest options, exactly as separate
  // machines would.
  const dist::StudyManifest manifest =
      dist::load_manifest(manifest_dir.string());
  const auto t_exec = Clock::now();
  std::uint64_t worker_events = 0;
  for (std::uint32_t id = 0; id < kSplits; ++id) {
    dist::WorkerOptions wopts;
    wopts.manifest_dir = manifest_dir.string();
    wopts.worker_id = id;
    wopts.threads = 2;
    const auto report = dist::run_worker(manifest, wopts);
    if (report.outcome != dist::WorkerOutcome::kCompleted) std::abort();
    worker_events += report.events;
  }
  const double workers_s = seconds_since(t_exec);

  const auto t_merge = Clock::now();
  dist::MergeOptions mopts;
  mopts.manifest_dir = manifest_dir.string();
  const auto merged = dist::run_merge(manifest, mopts);
  const double merge_s = seconds_since(t_merge);
  if (!merged.ok()) {
    std::cerr << merged.describe_failure() << "\n";
    return 1;
  }

  // Equivalence check rides along: merged bytes must equal baseline's.
  std::size_t diverged = 0;
  for (const auto& artifact : core::golden_artifacts()) {
    const std::string got = read_file(fs::path(merged.out_dir) / artifact.file);
    const std::string want = read_file(baseline_dir / artifact.file);
    if (got.empty() || got != want) {
      std::cerr << "  DIVERGED: " << artifact.file << "\n";
      ++diverged;
    }
  }
  const bool pass = diverged == 0 && merged.artifacts == baseline_artifacts;

  const double dist_total_s = plan_s + workers_s + merge_s;
  const double overhead_x = dist_total_s / baseline_s;

  std::cout << util::format(
      "  workload        5 systems, golden opts, %llu events, %llu chunks\n",
      static_cast<unsigned long long>(worker_events),
      static_cast<unsigned long long>(merged.chunks));
  std::cout << util::format("  baseline        %8.3f s (single process)\n",
                            baseline_s);
  std::cout << util::format("  plan            %8.3f s (category axis, N=%u)\n",
                            plan_s, kSplits);
  std::cout << util::format("  workers         %8.3f s (%u sequential)\n",
                            workers_s, kSplits);
  std::cout << util::format("  merge           %8.3f s (%zu artifacts)\n",
                            merge_s, merged.artifacts);
  std::cout << util::format(
      "  overhead        %.2fx of baseline (sequential worst case)\n",
      overhead_x);
  std::cout << util::format("  equivalence     %s\n",
                            pass ? "PASS (bit-identical)" : "FAIL");

  const std::string json = util::format(
      "{\"bench\":\"perf_dist\",\"axis\":\"category\",\"num_splits\":%u,"
      "\"events\":%llu,\"chunks\":%llu,\"baseline_s\":%.4f,\"plan_s\":%.4f,"
      "\"workers_s\":%.4f,\"merge_s\":%.4f,\"overhead_x\":%.3f,"
      "\"artifacts\":%zu,\"pass\":%s}",
      kSplits, static_cast<unsigned long long>(worker_events),
      static_cast<unsigned long long>(merged.chunks), baseline_s, plan_s,
      workers_s, merge_s, overhead_x, merged.artifacts,
      pass ? "true" : "false");
  std::ofstream os("BENCH_dist.json", std::ios::app);
  if (os) os << json << "\n";
  std::cout << "(appended to BENCH_dist.json)\n";

  fs::remove_all(root);
  return pass ? 0 : 1;
}
