// Reproduces Table 5: the BG/L severity distribution among all
// messages and among expert-tagged alerts, plus the headline result
// that tagging FATAL/FAILURE as alerts has a 59.34% false-positive
// rate (0% false negatives).
#include "bench_common.hpp"

#include "util/csv.hpp"
#include "util/strings.hpp"

int main() {
  using namespace wss;
  bench::header("Table 5", "BG/L severity distribution + severity tagging");
  core::Study study(bench::standard_options());
  std::cout << core::render_table5(study) << "\n";

  bench::begin_csv("table5");
  util::CsvWriter csv(std::cout);
  csv.row({"severity", "messages", "alerts"});
  for (const auto& r :
       core::severity_distribution(study, parse::SystemId::kBlueGeneL)) {
    csv.row({std::string(parse::severity_bgl_name(r.severity)),
             util::format("%.0f", r.messages),
             util::format("%.0f", r.alerts)});
  }
  bench::end_csv("table5");

  const auto rates = core::bgl_severity_tagging(study);
  std::cout << util::format(
      "\nHeadline: severity tagging FP rate %.2f%% (paper 59.34%%), FN rate "
      "%.2f%% (paper 0%%) -> %s\n",
      100.0 * rates.false_positive_rate, 100.0 * rates.false_negative_rate,
      std::abs(rates.false_positive_rate - 0.5934) < 0.01 ? "REPRODUCED"
                                                          : "NOT reproduced");
  return 0;
}
