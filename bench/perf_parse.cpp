// Perf: parser throughput per log format. The collection servers see
// thousands of messages per second (Table 2's Rate column peaks at
// 3.3 KB/s average with far higher bursts); parsing must be orders of
// magnitude faster than arrival.
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <filesystem>
#include <functional>
#include <iostream>

#include "bench_common.hpp"
#include "logio/input.hpp"
#include "parse/dispatch.hpp"
#include "sim/generator.hpp"
#include "simd/dispatch.hpp"
#include "simd/split.hpp"

namespace {

using namespace wss;

std::vector<std::string> corpus(parse::SystemId id) {
  sim::SimOptions opts;
  opts.category_cap = 3000;
  opts.chatter_events = 20000;
  const sim::Simulator simulator(id, opts);
  std::vector<std::string> lines;
  lines.reserve(simulator.events().size());
  for (std::size_t i = 0; i < simulator.events().size(); ++i) {
    lines.push_back(simulator.line(i));
  }
  return lines;
}

void parse_corpus(benchmark::State& state, parse::SystemId id, int year) {
  static std::map<parse::SystemId, std::vector<std::string>> cache;
  if (!cache.count(id)) cache[id] = corpus(id);
  const auto& lines = cache[id];
  std::size_t bytes = 0;
  for (const auto& l : lines) bytes += l.size();
  for (auto _ : state) {
    std::size_t valid = 0;
    for (const auto& line : lines) {
      const auto rec = parse::parse_line(id, line, year);
      valid += rec.timestamp_valid ? 1 : 0;
    }
    benchmark::DoNotOptimize(valid);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(lines.size()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}

void BM_ParseSyslog(benchmark::State& state) {
  parse_corpus(state, parse::SystemId::kSpirit, 2005);
}
BENCHMARK(BM_ParseSyslog);

void BM_ParseBglRas(benchmark::State& state) {
  parse_corpus(state, parse::SystemId::kBlueGeneL, 2005);
}
BENCHMARK(BM_ParseBglRas);

void BM_ParseRedStorm(benchmark::State& state) {
  parse_corpus(state, parse::SystemId::kRedStorm, 2006);
}
BENCHMARK(BM_ParseRedStorm);

/// Times `pass` (already warmed) and returns the best-of-`reps`
/// duration in seconds.
template <typename F>
double best_of(int reps, F&& pass) {
  double best_s = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    pass();
    const auto t1 = std::chrono::steady_clock::now();
    best_s = std::min(best_s, std::chrono::duration<double>(t1 - t0).count());
  }
  return best_s;
}

void append_simd_row(const std::string& json) {
  std::ofstream os("BENCH_simd.json", std::ios::app);
  if (os) os << json << "\n";
}

/// Layer-by-layer SIMD ablation below the tag engine: the newline
/// splitter, the whitespace field splitter, and the full per-format
/// parse, each timed at every supported WSS_SIMD level on the same
/// Spirit corpus. Results are cross-checked across levels (line and
/// field counts must be bit-identical) and appended as one JSON-lines
/// object per layer to BENCH_simd.json.
void emit_simd_layer_ablation(int reps = 3) {
  const simd::Level restore = simd::active_level();
  const auto& lines = [] {
    static const std::vector<std::string> c = corpus(parse::SystemId::kSpirit);
    return c;
  }();
  std::string text;
  for (const auto& l : lines) {
    text += l;
    text += '\n';
  }
  const double n_lines = static_cast<double>(lines.size());
  const double n_bytes = static_cast<double>(text.size());

  struct Layer {
    const char* name;
    std::function<std::size_t()> pass;  ///< returns a cross-check count
    double per_sec_scale;               ///< lines or bytes per pass
    const char* unit;
  };
  std::vector<std::string_view> fields;
  parse::LogRecord rec;
  parse::ParseScratch scratch;
  const Layer layers[] = {
      {"split",
       [&] {
         std::size_t count = 0;
         simd::for_each_line(text, [&](std::string_view) { ++count; });
         return count;
       },
       n_bytes, "bytes"},
      {"fields",
       [&] {
         std::size_t count = 0;
         for (const auto& l : lines) {
           fields.clear();
           util::split_fields(l, fields);
           count += fields.size();
         }
         return count;
       },
       n_lines, "lines"},
      {"parse",
       [&] {
         std::size_t valid = 0;
         for (const auto& l : lines) {
           parse::parse_line_into(parse::SystemId::kSpirit, l, 2005, rec,
                                  scratch);
           valid += rec.timestamp_valid ? 1 : 0;
         }
         return valid;
       },
       n_lines, "lines"},
  };

  std::cout << "\n==== SIMD layer ablation (spirit, " << lines.size()
            << " lines) ====\n";
  for (const Layer& layer : layers) {
    std::size_t scalar_count = 0;
    double scalar_ps = 0.0;
    std::string json = util::format(
        "{\"bench\":\"perf_parse\",\"layer\":\"%s\",\"workload\":"
        "\"spirit cap=3000 chatter=20000\",\"lines\":%zu,\"levels\":[",
        layer.name, lines.size());
    bool first = true;
    for (const simd::Level level : simd::supported_levels()) {
      simd::set_level(level);
      const std::size_t count = layer.pass();  // warm-up at this level
      if (first) {
        scalar_count = count;
      } else if (count != scalar_count) {
        std::cerr << "FATAL: layer " << layer.name << " at level "
                  << simd::level_name(level) << " counts " << count
                  << ", scalar counts " << scalar_count << "\n";
        std::abort();
      }
      const double best_s = best_of(reps, [&] {
        benchmark::DoNotOptimize(layer.pass());
      });
      const double per_sec = layer.per_sec_scale / best_s;
      if (first) scalar_ps = per_sec;
      const double speedup = scalar_ps > 0 ? per_sec / scalar_ps : 1.0;
      std::cout << util::format("  %-6s  %-7s  %12.0f %s/sec  (%.2fx scalar)\n",
                                layer.name, simd::level_name(level), per_sec,
                                layer.unit, speedup);
      json += util::format(
          "%s{\"level\":\"%s\",\"%s_per_sec\":%.1f,"
          "\"speedup_vs_scalar\":%.3f}",
          first ? "" : ",", simd::level_name(level), layer.unit, per_sec,
          speedup);
      first = false;
    }
    json += "]}";
    append_simd_row(json);
  }
  simd::set_level(restore);
  std::cout << "(appended to BENCH_simd.json)\n";
}

/// Input-route ablation: the same file drained via the mmap'd
/// zero-copy route and the read() fallback, full split included, so
/// the row isolates what the page-cache copy costs. Byte counts are
/// cross-checked; one JSON-lines row goes to BENCH_simd.json.
void emit_input_ablation(int reps = 3) {
  namespace fs = std::filesystem;
  const std::vector<std::string> lines = corpus(parse::SystemId::kSpirit);
  std::string text;
  for (const auto& l : lines) {
    text += l;
    text += '\n';
  }
  const fs::path path =
      fs::temp_directory_path() /
      ("wss_perf_parse_" + std::to_string(::getpid()) + ".log");
  {
    std::ofstream os(path, std::ios::binary);
    os << text;
  }

  const auto drain = [&](bool use_mmap) {
    if (use_mmap) {
      ::unsetenv("WSS_MMAP");
    } else {
      ::setenv("WSS_MMAP", "0", 1);
    }
    const logio::InputBuffer in = logio::InputBuffer::open(path);
    std::size_t bytes = 0;
    simd::for_each_line(in.view(),
                        [&](std::string_view l) { bytes += l.size(); });
    return bytes;
  };

  std::cout << "\n==== Input route ablation (spirit, " << text.size()
            << " bytes) ====\n";
  std::string json = util::format(
      "{\"bench\":\"perf_parse\",\"layer\":\"input\",\"workload\":"
      "\"spirit cap=3000 chatter=20000\",\"bytes\":%zu,\"routes\":[",
      text.size());
  const std::size_t expect = drain(true);  // warm the page cache
  double read_ps = 0.0;
  const struct {
    const char* name;
    bool use_mmap;
  } routes[] = {{"read", false}, {"mmap", true}};
  for (std::size_t i = 0; i < 2; ++i) {
    const double best_s = best_of(reps, [&] {
      if (drain(routes[i].use_mmap) != expect) std::abort();
    });
    const double per_sec = static_cast<double>(text.size()) / best_s;
    if (i == 0) read_ps = per_sec;
    const double speedup = read_ps > 0 ? per_sec / read_ps : 1.0;
    std::cout << util::format("  %-4s  %12.0f bytes/sec  (%.2fx read)\n",
                              routes[i].name, per_sec, speedup);
    json += util::format(
        "%s{\"route\":\"%s\",\"bytes_per_sec\":%.1f,\"speedup_vs_read\":"
        "%.3f}",
        i == 0 ? "" : ",", routes[i].name, per_sec, speedup);
  }
  json += "]}";
  append_simd_row(json);
  ::unsetenv("WSS_MMAP");
  std::error_code ec;
  fs::remove(path, ec);
  std::cout << "(appended to BENCH_simd.json)\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::cout << "==== Perf: parser throughput per log format ====\n\n";
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  wss::bench::emit_pipeline_threads_sweep("perf_parse");
  emit_simd_layer_ablation();
  emit_input_ablation();
  return 0;
}
