// Perf: parser throughput per log format. The collection servers see
// thousands of messages per second (Table 2's Rate column peaks at
// 3.3 KB/s average with far higher bursts); parsing must be orders of
// magnitude faster than arrival.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "parse/dispatch.hpp"
#include "sim/generator.hpp"

namespace {

using namespace wss;

std::vector<std::string> corpus(parse::SystemId id) {
  sim::SimOptions opts;
  opts.category_cap = 3000;
  opts.chatter_events = 20000;
  const sim::Simulator simulator(id, opts);
  std::vector<std::string> lines;
  lines.reserve(simulator.events().size());
  for (std::size_t i = 0; i < simulator.events().size(); ++i) {
    lines.push_back(simulator.line(i));
  }
  return lines;
}

void parse_corpus(benchmark::State& state, parse::SystemId id, int year) {
  static std::map<parse::SystemId, std::vector<std::string>> cache;
  if (!cache.count(id)) cache[id] = corpus(id);
  const auto& lines = cache[id];
  std::size_t bytes = 0;
  for (const auto& l : lines) bytes += l.size();
  for (auto _ : state) {
    std::size_t valid = 0;
    for (const auto& line : lines) {
      const auto rec = parse::parse_line(id, line, year);
      valid += rec.timestamp_valid ? 1 : 0;
    }
    benchmark::DoNotOptimize(valid);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(lines.size()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}

void BM_ParseSyslog(benchmark::State& state) {
  parse_corpus(state, parse::SystemId::kSpirit, 2005);
}
BENCHMARK(BM_ParseSyslog);

void BM_ParseBglRas(benchmark::State& state) {
  parse_corpus(state, parse::SystemId::kBlueGeneL, 2005);
}
BENCHMARK(BM_ParseBglRas);

void BM_ParseRedStorm(benchmark::State& state) {
  parse_corpus(state, parse::SystemId::kRedStorm, 2006);
}
BENCHMARK(BM_ParseRedStorm);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "==== Perf: parser throughput per log format ====\n\n";
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  wss::bench::emit_pipeline_threads_sweep("perf_parse");
  return 0;
}
