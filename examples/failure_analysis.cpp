// Scenario: failure-distribution modeling on Thunderbird -- the
// Section 4 analysis. Fits exponential / lognormal / Weibull models to
// each category's filtered interarrival times, runs goodness-of-fit,
// and reaches the paper's conclusion: ECC is exponential-ish, most
// other categories fit nothing well, so "one size does not fit all".
#include <iostream>

#include "core/experiments.hpp"
#include "core/study.hpp"
#include "stats/descriptive.hpp"
#include "stats/fit.hpp"
#include "stats/gof.hpp"
#include "tag/rulesets.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace wss;
  core::StudyOptions opts;
  opts.sim.category_cap = 30000;
  opts.sim.chatter_events = 10000;
  core::Study study(opts);
  const auto id = parse::SystemId::kThunderbird;
  const auto cats = tag::categories_of(id);
  const auto survivors = core::filtered_alerts(study, id);

  util::Table t({"Category", "Gaps", "CV", "Exp KS p", "Logn KS p",
                 "Weib KS p", "Best (AIC)"});
  t.set_title(
      "Interarrival modeling of filtered Thunderbird alerts (Section 4):");

  for (std::size_t c = 0; c < cats.size(); ++c) {
    std::vector<std::int64_t> times;
    for (const auto& a : survivors) {
      if (a.category == c) times.push_back(a.time);
    }
    const auto gaps = stats::interarrival_seconds(std::move(times));
    if (gaps.size() < 20) continue;

    const auto ex = stats::fit_exponential(gaps);
    const auto ln = stats::fit_lognormal(gaps);
    const auto wb = stats::fit_weibull(gaps);
    const auto ks_ex =
        stats::ks_test(gaps, [&](double x) { return ex.cdf(x); });
    const auto ks_ln =
        stats::ks_test(gaps, [&](double x) { return ln.cdf(x); });
    const auto ks_wb =
        stats::ks_test(gaps, [&](double x) { return wb.cdf(x); });

    const double aic_ex = stats::aic(ex.log_likelihood, 1);
    const double aic_ln = stats::aic(ln.log_likelihood, 2);
    const double aic_wb = stats::aic(wb.log_likelihood, 2);
    const char* best = "exponential";
    if (aic_ln < aic_ex && aic_ln < aic_wb) best = "lognormal";
    if (aic_wb < aic_ex && aic_wb < aic_ln) best = "weibull";

    t.add_row({cats[c]->name, std::to_string(gaps.size()),
               util::format("%.2f", stats::coefficient_of_variation(gaps)),
               util::format("%.3f", ks_ex.p_value),
               util::format("%.3f", ks_ln.p_value),
               util::format("%.3f", ks_wb.p_value), best});
  }
  std::cout << t.render();

  std::cout
      << "\nReading this like the paper does:\n"
      << "  - ECC (independent physics) is the only category an\n"
      << "    exponential model fits comfortably (Figure 5).\n"
      << "  - Correlated categories (EXT_FS, SCSI, CPU, MPT) show CV >> 1\n"
      << "    and reject every family: \"in even the best visual fit\n"
      << "    cases, heavy tails result in very poor statistical\n"
      << "    goodness-of-fit metrics\".\n"
      << "  - Hence the recommendation: model mechanisms, not marginals,\n"
      << "    and build per-category ensembles of predictors.\n";
  return 0;
}
