// Scenario: online failure warning for Liberty, built the way
// Section 5 recommends -- an ensemble of per-category specialists.
// Trains on the first 60% of the log, then replays the rest as a live
// stream and prints warnings as they would have been issued, each
// annotated with whether a real failure followed.
#include <algorithm>
#include <iostream>

#include "core/study.hpp"
#include "predict/ensemble.hpp"
#include "predict/periodic.hpp"
#include "predict/precursor.hpp"
#include "predict/rate_burst.hpp"
#include "tag/rulesets.hpp"
#include "util/strings.hpp"

int main() {
  using namespace wss;
  core::StudyOptions opts;
  opts.sim.category_cap = 30000;
  opts.sim.chatter_events = 5000;
  core::Study study(opts);
  const auto id = parse::SystemId::kLiberty;
  const auto& spec = sim::system_spec(id);
  const auto cats = tag::categories_of(id);
  const auto all = study.simulator(id).ground_truth_alerts();

  const util::TimeUs split =
      spec.start_time() + (spec.end_time() - spec.start_time()) * 6 / 10;
  std::vector<filter::Alert> train;
  std::vector<filter::Alert> test;
  for (const auto& a : all) (a.time < split ? train : test).push_back(a);

  // Build and fit the ensemble.
  auto rate = std::make_unique<predict::RateBurstPredictor>();
  auto precursor = std::make_unique<predict::PrecursorPredictor>();
  precursor->fit(train);
  auto periodic = std::make_unique<predict::PeriodicPredictor>();
  periodic->fit(train);
  std::vector<std::unique_ptr<predict::Predictor>> members;
  members.push_back(std::move(rate));
  members.push_back(std::move(precursor));
  members.push_back(std::move(periodic));
  predict::EnsemblePredictor ensemble(std::move(members));
  const std::size_t routed = ensemble.fit_routing(train);

  std::cout << "Trained on " << train.size() << " alerts; routed " << routed
            << " categories:\n";
  for (const auto& [cat, member] : ensemble.routing()) {
    std::cout << "  " << cats[cat]->name << " -> "
              << ensemble.member(member).name() << "\n";
  }

  // Replay the test stream.
  const auto predictions = predict::run_predictor(ensemble, test);
  const auto incidents = predict::ground_truth_incidents(test);
  const auto score = predict::score_predictions(predictions, incidents);

  std::cout << "\nReplaying the last 40% of the log ("
            << test.size() << " alerts, " << incidents.size()
            << " failures)...\n\n";
  std::size_t shown = 0;
  for (const auto& p : predictions) {
    if (shown++ >= 10) break;
    bool hit = false;
    for (const auto& inc : incidents) {
      if (inc.category == p.category && p.issued_at < inc.time &&
          p.window_begin <= inc.time && inc.time <= p.window_end) {
        hit = true;
        break;
      }
    }
    std::cout << util::format(
        "  %s  WARN %-8s expect failure within %s   [%s]\n",
        util::format_iso(p.issued_at).c_str(),
        cats[p.category]->name.c_str(),
        util::format_duration(p.window_end - p.issued_at).c_str(),
        hit ? "failure followed" : "false alarm");
  }
  if (predictions.size() > shown) {
    std::cout << "  ... " << predictions.size() - shown << " more\n";
  }

  std::cout << "\nOverall: " << score.describe() << "\n"
            << "\nPer the paper, categories without a predictive signature "
               "stay unpredicted;\nthe ensemble's value is routing each "
               "category to the feature that works for it.\n";
  return 0;
}
