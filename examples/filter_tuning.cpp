// Scenario: choosing a filtering strategy for a new machine. Runs the
// whole filter family -- temporal, spatial, serial (Liang et al.),
// simultaneous (Algorithm 3.1), per-category adaptive, and
// correlation-aware -- over the same Liberty alert stream with ground
// truth, and prints the accuracy/compression trade-off of each.
#include <iostream>

#include "core/study.hpp"
#include "filter/adaptive.hpp"
#include "filter/correlation_aware.hpp"
#include "filter/score.hpp"
#include "filter/serial.hpp"
#include "filter/simultaneous.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace wss;
  core::StudyOptions opts;
  opts.sim.category_cap = 30000;
  opts.sim.chatter_events = 5000;
  core::Study study(opts);
  const auto alerts =
      study.simulator(parse::SystemId::kLiberty).ground_truth_alerts();
  const util::TimeUs T = study.threshold();

  util::Table t({"Filter", "Kept", "Failures repr.", "TP lost", "FP kept",
                 "Compression"});
  t.set_title(util::format(
      "Filter family on Liberty (%zu raw alerts, T=5s where applicable):",
      alerts.size()));

  const auto add = [&](const char* name, filter::StreamFilter& f) {
    const auto s = filter::score_filter(f, alerts);
    t.add_row({name, std::to_string(s.kept_alerts),
               util::format("%zu/%zu", s.failures_represented,
                            s.failures_total),
               std::to_string(s.true_positives_lost),
               std::to_string(s.false_positives_kept),
               util::format("%.1fx", s.compression)});
  };

  filter::TemporalFilter temporal(T);
  add("temporal only", temporal);
  filter::SpatialFilter spatial(T);
  add("spatial only", spatial);
  filter::SerialFilter serial(T);
  add("serial (Liang et al.)", serial);
  filter::SimultaneousFilter simultaneous(T);
  add("simultaneous (Alg. 3.1)", simultaneous);

  const auto thresholds = filter::suggest_thresholds(alerts);
  filter::AdaptiveFilter adaptive(thresholds, T);
  add("adaptive per-category", adaptive);

  const auto groups =
      filter::learn_correlation_groups(alerts, 2 * util::kUsPerMin);
  filter::CorrelationAwareFilter correlated(groups, T);
  add("correlation-aware", correlated);

  std::cout << t.render();
  std::cout << util::format(
      "\nLearned %zu per-category thresholds and %zu correlated-category "
      "memberships (PBS_CHK/PBS_BFD style, Figure 4).\n",
      thresholds.size(), groups.size());
  std::cout
      << "\nHow to read this: the simultaneous filter trades at most one\n"
      << "lost failure for markedly fewer redundant survivors than the\n"
      << "serial baseline; the paper's future-work filters push further\n"
      << "by spending structure (per-category thresholds, correlation\n"
      << "groups) the one-size-fits-all threshold cannot express.\n";
  return 0;
}
