// Quickstart: simulate a supercomputer log, parse it, tag alerts with
// the expert rules, filter them with Algorithm 3.1, and print what a
// system administrator would actually look at.
//
//   $ ./quickstart
//
// This walks the whole public API in one page: sim::Simulator ->
// parse::parse_line -> tag::TagEngine -> filter::SimultaneousFilter.
#include <iostream>

#include "filter/simultaneous.hpp"
#include "parse/dispatch.hpp"
#include "sim/generator.hpp"
#include "tag/engine.hpp"
#include "tag/rulesets.hpp"
#include "util/strings.hpp"

int main() {
  using namespace wss;

  // 1. Simulate a small Liberty log (the paper's smallest system).
  sim::SimOptions opts;
  opts.seed = 7;
  opts.category_cap = 3000;
  opts.chatter_events = 20000;
  const sim::Simulator simulator(parse::SystemId::kLiberty, opts);
  std::cout << "Generated " << simulator.events().size()
            << " log messages over " << simulator.spec().days << " days.\n\n"
            << "A few raw lines:\n";
  for (std::size_t i = 0; i < simulator.events().size();
       i += simulator.events().size() / 5) {
    std::cout << "  " << simulator.line(i) << "\n";
  }

  // 2. Parse and tag every line with the Liberty expert rules.
  const tag::RuleSet rules = tag::build_ruleset(parse::SystemId::kLiberty);
  const tag::TagEngine engine(rules);
  std::vector<filter::Alert> alerts;
  std::size_t corrupted = 0;
  for (std::size_t i = 0; i < simulator.events().size(); ++i) {
    const std::string line = simulator.line(i);
    const parse::LogRecord rec =
        parse::parse_line(parse::SystemId::kLiberty, line, 2005);
    if (rec.source_corrupted) ++corrupted;
    if (const auto tagged = engine.tag(rec)) {
      filter::Alert a;
      a.time = rec.timestamp_valid ? rec.time : 0;
      a.source = simulator.events()[i].source;
      a.category = tagged->category;
      a.type = tagged->type;
      alerts.push_back(a);
    }
  }
  filter::sort_alerts(alerts);
  std::cout << "\nTagged " << alerts.size() << " alerts ("
            << corrupted << " lines had corrupted source fields).\n";

  // 3. Filter with the paper's simultaneous spatio-temporal algorithm
  //    (Algorithm 3.1, T = 5 s).
  filter::SimultaneousFilter filter(5 * util::kUsPerSec);
  const auto survivors = filter::apply_filter(filter, alerts);
  std::cout << "After filtering (T=5s): " << survivors.size()
            << " alerts remain -- roughly one per failure.\n\n";

  // 4. The administrator's summary: alerts per category.
  std::vector<std::size_t> raw_per_cat(rules.size(), 0);
  std::vector<std::size_t> filt_per_cat(rules.size(), 0);
  for (const auto& a : alerts) ++raw_per_cat[a.category];
  for (const auto& a : survivors) ++filt_per_cat[a.category];
  std::cout << "Category      raw  filtered\n";
  for (std::uint16_t c = 0; c < rules.size(); ++c) {
    std::cout << util::format("%-12s %5zu %9zu\n",
                              rules.category_name(c).c_str(), raw_per_cat[c],
                              filt_per_cat[c]);
  }
  return 0;
}
