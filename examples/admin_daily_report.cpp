// Scenario: the morning triage report a Spirit administrator would
// want -- exactly the workflow the paper's introduction motivates
// ("the system logs are the first place system administrators go").
//
// Shows: storm-node detection (sn373), per-source hot spots, filtered
// incident counts, and operational-context annotation of each
// incident.
#include <algorithm>
#include <iostream>
#include <map>

#include "core/experiments.hpp"
#include "core/study.hpp"
#include "sim/opcontext.hpp"
#include "tag/rulesets.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace wss;
  core::StudyOptions opts;
  opts.sim.category_cap = 30000;
  opts.sim.chatter_events = 40000;
  core::Study study(opts);
  const auto id = parse::SystemId::kSpirit;
  const auto& simulator = study.simulator(id);
  const auto cats = tag::categories_of(id);

  std::cout << "=== Daily RAS triage: " << parse::system_name(id)
            << " ===\n\n";

  // 1. Filtered incidents by category.
  const auto survivors = core::filtered_alerts(study, id);
  std::map<std::uint16_t, std::size_t> per_cat;
  for (const auto& a : survivors) ++per_cat[a.category];
  util::Table t({"Category", "Type", "Incidents"});
  t.set_title("Open incident classes (after Algorithm 3.1, T=5s):");
  for (const auto& [cat, n] : per_cat) {
    t.add_row({cats[cat]->name,
               std::string(1, filter::alert_type_letter(cats[cat]->type)),
               std::to_string(n)});
  }
  std::cout << t.render() << "\n";

  // 2. Hot nodes: who generated the alerts?
  std::map<std::uint32_t, double> weight_by_source;
  for (const auto& a : simulator.ground_truth_alerts()) {
    weight_by_source[a.source] += a.weight;
  }
  std::vector<std::pair<std::uint32_t, double>> hot(weight_by_source.begin(),
                                                    weight_by_source.end());
  std::sort(hot.begin(), hot.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  std::cout << "Top alert-producing nodes (weighted):\n";
  for (std::size_t i = 0; i < std::min<std::size_t>(5, hot.size()); ++i) {
    std::cout << util::format(
        "  %-8s %16s alerts%s\n",
        simulator.namer().name(hot[i].first).c_str(),
        util::with_commas(static_cast<std::int64_t>(hot[i].second)).c_str(),
        hot[i].first == sim::SourceNamer::kSpiritStormNode
            ? "   <- REPLACE THIS DISK (the paper's sn373)"
            : "");
  }

  // 3. Operational-context annotation: which incidents fall inside
  //    maintenance windows (probably explainable) vs production?
  const auto& opctx = simulator.op_context();
  std::size_t in_production = 0;
  std::size_t in_downtime = 0;
  for (const auto& a : survivors) {
    if (opctx.state_at(a.time) == sim::OpState::kProduction) {
      ++in_production;
    } else {
      ++in_downtime;
    }
  }
  const auto m = opctx.metrics();
  std::cout << util::format(
      "\nOperational context: %zu incidents during production, %zu during "
      "scheduled/engineering windows (deprioritize those).\n"
      "System availability over the window: %.3f (%zu unscheduled "
      "outages).\n",
      in_production, in_downtime, m.availability, m.unscheduled_outages);

  // 4. The punchline the paper warns about: raw counts mislead.
  double raw_total = 0;
  for (const auto& a : simulator.ground_truth_alerts()) raw_total += a.weight;
  std::cout << util::format(
      "\nRaw alert messages: %s; actionable incidents: %zu. \"Filtering is "
      "used to make the ratio of alerts to failures nearly one.\"\n",
      util::with_commas(static_cast<std::int64_t>(raw_total)).c_str(),
      survivors.size());
  return 0;
}
